//! Out-of-core training (§6): a Hugewiki-shaped data set staged through a
//! simulated GPU in blocks, with and without §6.2's transfer/compute
//! overlap, on both paper platforms.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use cumf_sgd::core::multi_gpu::{train_partitioned, MultiGpuConfig};
use cumf_sgd::core::Schedule;
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::gpu_sim::{NVLINK, P100_PASCAL, PCIE3_X16, TITAN_X_MAXWELL};

fn main() {
    // Hugewiki's signature shape: m >> n (the paper's is 50M x 40k; this
    // is a 1000:1-ish aspect stand-in).
    let data = generate(&SynthConfig {
        m: 40_000,
        n: 400,
        k_true: 8,
        train_samples: 400_000,
        test_samples: 20_000,
        noise_std: 0.1,
        row_skew: 0.6,
        col_skew: 0.6,
        rating_offset: 1.0,
        seed: 5,
    });
    println!(
        "data: {}x{}, {} samples — staged as a 16x1 grid (paper: 64x1 for Hugewiki)",
        data.train.rows(),
        data.train.cols(),
        data.train.nnz()
    );

    let base = {
        let mut c = MultiGpuConfig::new(10, 16, 1, 1);
        c.workers_per_gpu = 16;
        c.batch = 128;
        c.epochs = 12;
        c.lambda = 0.02;
        c.schedule = Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        };
        c
    };

    println!("\nplatform          overlap  epoch_s   compute_s  transfer_s  final_RMSE");
    let mut results = Vec::new();
    for (name, gpu, link) in [
        ("Maxwell + PCIe", &TITAN_X_MAXWELL, &PCIE3_X16),
        ("Pascal + NVLink", &P100_PASCAL, &NVLINK),
    ] {
        for overlap in [true, false] {
            let mut cfg = base.clone();
            cfg.overlap = overlap;
            let r = train_partitioned::<f32>(&data.train, &data.test, &cfg, gpu, link);
            let t = &r.timings[0];
            println!(
                "{:<17} {:<8} {:<9.5} {:<10.5} {:<11.5} {:.4}",
                name,
                overlap,
                t.seconds,
                t.compute_seconds,
                t.transfer_seconds,
                r.trace.final_rmse().unwrap()
            );
            results.push((name, overlap, t.seconds, r.trace.final_rmse().unwrap()));
        }
    }

    // The §6.2 claim: overlap hides transfer time.
    let epoch = |name: &str, ov: bool| {
        results
            .iter()
            .find(|(n, o, _, _)| *n == name && *o == ov)
            .unwrap()
            .2
    };
    let maxwell_gain = epoch("Maxwell + PCIe", false) / epoch("Maxwell + PCIe", true);
    let pascal_gain = epoch("Pascal + NVLink", false) / epoch("Pascal + NVLink", true);
    println!(
        "\noverlap speedup: Maxwell {maxwell_gain:.2}X, Pascal {pascal_gain:.2}X \
         (numerics identical either way)"
    );
    assert!(maxwell_gain > 1.0 && pascal_gain > 1.0);
    let rmses: Vec<f64> = results.iter().map(|r| r.3).collect();
    assert!(rmses.windows(2).all(|w| {
        // Same platform pairs share numerics exactly; across platforms the
        // convergence is still the same algorithm.
        (w[0] - w[1]).abs() < 0.05
    }));
}
