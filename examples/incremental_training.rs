//! Incremental training (§9: SGD "converges faster and is easy to do
//! incremental update" — one of the paper's reasons to maintain cuMF_SGD
//! alongside cuMF_ALS): train a model, persist it, then fold in a batch of
//! newly-arrived ratings *without* retraining from scratch.
//!
//! ```sh
//! cargo run --release --example incremental_training
//! ```

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;
use cumf_sgd::core::model_io::{load_model, save_model, Model};
use cumf_sgd::core::solver::{Scheme, SolverConfig};
use cumf_sgd::core::{rmse, Schedule};
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::data::{holdout_split, CooMatrix};

fn main() {
    // The full data set; we pretend 20% of it arrives later.
    let data = generate(&SynthConfig {
        m: 1_500,
        n: 1_000,
        k_true: 8,
        train_samples: 160_000,
        test_samples: 16_000,
        noise_std: 0.1,
        row_skew: 0.6,
        col_skew: 0.6,
        rating_offset: 3.0,
        seed: 13,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (day_one, day_two) = holdout_split(&data.train, 0.2, &mut rng);
    println!(
        "day 1: {} ratings; day 2 arrivals: {} ratings",
        day_one.nnz(),
        day_two.nnz()
    );

    let base_config = SolverConfig {
        k: 10,
        lambda: 0.02,
        schedule: Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        },
        epochs: 20,
        scheme: Scheme::BatchHogwild {
            workers: 16,
            batch: 256,
        },
        seed: 42,
        mode: None,
        divergence_ceiling: 1e3,
    };

    // --- Day 1: train on the initial data and persist the model.
    let day1 = cumf_sgd::core::train::<f32>(&day_one, &data.test, &base_config, None);
    let day1_rmse = day1.trace.final_rmse().unwrap();
    let mut store = Vec::new();
    save_model(&mut store, &Model::new(day1.p, day1.q)).unwrap();
    println!(
        "day 1 model: test RMSE {day1_rmse:.4}, {} bytes persisted",
        store.len()
    );

    // --- Day 2: load the model and continue with a few cheap epochs over
    // the *new* ratings only, at a reduced learning rate.
    let model: Model<f32> = load_model(store.as_slice()).unwrap();
    let incremental = continue_training(&model, &day_two, 5, 0.03, 0.02);
    let inc_rmse = rmse(&data.test, &incremental.p, &incremental.q);

    // --- The expensive alternative: full retraining on everything.
    let full = cumf_sgd::core::train::<f32>(&data.train, &data.test, &base_config, None);
    let full_rmse = full.trace.final_rmse().unwrap();

    println!("day 2 incremental (5 epochs over 20% of the data): RMSE {inc_rmse:.4}");
    println!("day 2 full retrain (20 epochs over all data):      RMSE {full_rmse:.4}");
    let updates_inc = 5 * day_two.nnz();
    let updates_full = 20 * data.train.nnz();
    println!(
        "incremental cost: {updates_inc} updates vs {updates_full} ({}x cheaper)",
        updates_full / updates_inc.max(1)
    );

    assert!(
        inc_rmse < day1_rmse + 0.01,
        "incremental update must not regress the day-1 model"
    );
    assert!(
        inc_rmse < full_rmse + 0.05,
        "incremental should stay close to a full retrain"
    );
}

/// Continues SGD from an existing model over newly-arrived samples: plain
/// serial sweeps with a fixed small learning rate (the production pattern
/// for streaming recommenders).
fn continue_training(
    model: &Model<f32>,
    new_data: &CooMatrix,
    epochs: u32,
    gamma: f32,
    lambda: f32,
) -> Model<f32> {
    use cumf_sgd::core::kernel::sgd_update;
    let mut p = model.p.clone();
    let mut q = model.q.clone();
    for _ in 0..epochs {
        for e in new_data.iter() {
            sgd_update(p.row_mut(e.u), q.row_mut(e.v), e.r, gamma, lambda);
        }
    }
    Model::new(p, q)
}
