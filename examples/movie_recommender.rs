//! A collaborative-filtering recommender: train factors on a synthetic
//! movie-ratings matrix, then produce per-user top-N recommendations —
//! the paper's motivating application (§1, Fig 1).
//!
//! ```sh
//! cargo run --release --example movie_recommender
//! ```

use cumf_sgd::core::kernel::dot;
use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::Schedule;
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::data::CooMatrix;

/// Predicted rating of user `u` for item `v`.
fn predict(
    p: &cumf_sgd::core::FactorMatrix<f32>,
    q: &cumf_sgd::core::FactorMatrix<f32>,
    u: u32,
    v: u32,
) -> f32 {
    dot(p.row(u), q.row(v))
}

fn main() {
    const USERS: u32 = 3_000;
    const MOVIES: u32 = 800;

    // Synthetic "taste" data: rank-12 preference structure, 1-5 star scale
    // centred at 3, strong popularity skew (blockbusters exist).
    let data = generate(&SynthConfig {
        m: USERS,
        n: MOVIES,
        k_true: 12,
        train_samples: 300_000,
        test_samples: 30_000,
        noise_std: 0.35,
        row_skew: 0.5,
        col_skew: 0.9,
        rating_offset: 3.0,
        seed: 99,
    });

    let config = SolverConfig {
        k: 14,
        lambda: 0.03,
        schedule: Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        },
        epochs: 25,
        scheme: Scheme::BatchHogwild {
            workers: 16,
            batch: 256,
        },
        seed: 1,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let result = train::<f32>(&data.train, &data.test, &config, None);
    println!(
        "trained: test RMSE {:.3} stars (noise floor {:.2})",
        result.trace.final_rmse().unwrap(),
        data.rmse_floor
    );

    // Build each user's seen-set so we only recommend unseen movies.
    let seen = seen_sets(&data.train);

    // Top-5 recommendations for a few users.
    for &user in &[0u32, 17, 1234] {
        let mut scored: Vec<(u32, f32)> = (0..MOVIES)
            .filter(|v| !seen[user as usize].contains(v))
            .map(|v| (v, predict(&result.p, &result.q, user, v)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        println!(
            "\nuser {user}: rated {} movies; top-5 unseen picks:",
            seen[user as usize].len()
        );
        for (rank, (movie, score)) in scored.iter().take(5).enumerate() {
            println!(
                "  {}. movie {:>4} (predicted {:.2} stars)",
                rank + 1,
                movie,
                score
            );
        }
        // Sanity: recommendations should score above the user's average.
        let avg: f32 = scored.iter().map(|(_, s)| s).sum::<f32>() / scored.len() as f32;
        assert!(scored[0].1 >= avg, "top pick must beat the average");
    }

    // Ranking quality check: on held-out test samples, higher-rated items
    // should get higher predictions on average.
    let (mut hi_sum, mut hi_n, mut lo_sum, mut lo_n) = (0.0f64, 0u32, 0.0f64, 0u32);
    for e in data.test.iter() {
        let pred = predict(&result.p, &result.q, e.u, e.v) as f64;
        if e.r >= 4.0 {
            hi_sum += pred;
            hi_n += 1;
        } else if e.r <= 2.0 {
            lo_sum += pred;
            lo_n += 1;
        }
    }
    let hi = hi_sum / hi_n.max(1) as f64;
    let lo = lo_sum / lo_n.max(1) as f64;
    println!(
        "\nheld-out ranking: mean prediction for 4+ star ratings = {hi:.2}, for <=2 star = {lo:.2}"
    );
    assert!(hi > lo + 0.5, "model must separate loved from hated movies");
}

fn seen_sets(train: &CooMatrix) -> Vec<std::collections::HashSet<u32>> {
    let mut seen = vec![std::collections::HashSet::new(); train.rows() as usize];
    for e in train.iter() {
        seen[e.u as usize].insert(e.v);
    }
    seen
}
