//! Quickstart: factorise a synthetic rating matrix with cuMF_SGD's
//! batch-Hogwild! scheduler and watch the test RMSE converge to the known
//! noise floor.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cumf_sgd::core::solver::{train, Scheme, SolverConfig, TimeModel};
use cumf_sgd::core::Schedule;
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::gpu_sim::{SgdUpdateCost, TITAN_X_MAXWELL};

fn main() {
    // 1. A planted low-rank data set: 2,000 users x 1,500 items, rank 8,
    //    observation noise 0.1 (= the best achievable test RMSE).
    let data = generate(&SynthConfig {
        m: 2_000,
        n: 1_500,
        k_true: 8,
        train_samples: 200_000,
        test_samples: 20_000,
        noise_std: 0.1,
        row_skew: 0.6,
        col_skew: 0.6,
        rating_offset: 3.0,
        seed: 7,
    });
    println!(
        "data: {}x{} with {} train / {} test samples (noise floor RMSE = {})",
        data.train.rows(),
        data.train.cols(),
        data.train.nnz(),
        data.test.nnz(),
        data.rmse_floor
    );

    // 2. Configure the solver: rank-10 model, batch-Hogwild! with 32
    //    parallel workers, the paper's Eq. 9 learning-rate schedule.
    let config = SolverConfig {
        k: 10,
        lambda: 0.02,
        schedule: Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        },
        epochs: 20,
        scheme: Scheme::BatchHogwild {
            workers: 32,
            batch: 256,
        },
        seed: 42,
        mode: None,
        divergence_ceiling: 1e3,
    };

    // 3. Attach the Maxwell GPU time model so the trace carries simulated
    //    wall-clock seconds alongside epochs.
    let time = TimeModel {
        cost: SgdUpdateCost::cumf(config.k),
        total_bandwidth: TITAN_X_MAXWELL.effective_bw(32),
        epoch_overhead: TITAN_X_MAXWELL.launch_overhead_s,
    };

    // 4. Train (f32 storage; see the `half_precision` path in the README
    //    for the f16 variant) and print the convergence trace.
    let result = train::<f32>(&data.train, &data.test, &config, Some(&time));
    println!("\nepoch | sim time | test RMSE");
    for p in &result.trace.points {
        println!("{:>5} | {:>7.4}s | {:.4}", p.epoch, p.seconds, p.rmse);
    }
    let final_rmse = result.trace.final_rmse().unwrap();
    println!(
        "\nfinal test RMSE {final_rmse:.4} (floor {}), {} total updates{}",
        data.rmse_floor,
        result.total_updates(),
        if result.diverged { " [DIVERGED]" } else { "" },
    );
    assert!(final_rmse < 0.2, "quickstart failed to converge");
}
