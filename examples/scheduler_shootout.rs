//! Scheduler shoot-out: run every §5 scheduling policy on the same data
//! and compare convergence quality, stall behaviour, and modelled
//! throughput on the simulated Maxwell GPU.
//!
//! ```sh
//! cargo run --release --example scheduler_shootout
//! ```

use cumf_sgd::core::solver::{train, Scheme, SolverConfig, TimeModel};
use cumf_sgd::core::Schedule;
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::gpu_sim::{SgdUpdateCost, TITAN_X_MAXWELL};

fn main() {
    let data = generate(&SynthConfig {
        m: 3_000,
        n: 2_000,
        k_true: 8,
        train_samples: 250_000,
        test_samples: 25_000,
        noise_std: 0.1,
        row_skew: 0.6,
        col_skew: 0.6,
        rating_offset: 3.0,
        seed: 3,
    });

    let workers = 32u32;
    let schemes: Vec<(&str, Scheme)> = vec![
        ("serial", Scheme::Serial),
        ("hogwild", Scheme::Hogwild { workers }),
        (
            "batch-hogwild",
            Scheme::BatchHogwild {
                workers,
                batch: 256,
            },
        ),
        (
            "wavefront",
            Scheme::Wavefront {
                workers,
                cols: workers * 4,
            },
        ),
        ("libmf-table", Scheme::LibmfTable { workers, a: 64 }),
    ];

    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "scheme", "rmse@10", "rmse@20", "stall_frac", "epoch_s", "updates/s"
    );
    let mut results = Vec::new();
    for (name, scheme) in schemes {
        let config = SolverConfig {
            k: 10,
            lambda: 0.02,
            schedule: Schedule::NomadDecay {
                alpha: 0.1,
                beta: 0.1,
            },
            epochs: 20,
            scheme,
            seed: 11,
            mode: None,
            divergence_ceiling: 1e3,
        };
        let tm = TimeModel {
            cost: SgdUpdateCost::cumf(config.k),
            total_bandwidth: TITAN_X_MAXWELL.effective_bw(scheme.workers()),
            epoch_overhead: TITAN_X_MAXWELL.launch_overhead_s,
        };
        let r = train::<f32>(&data.train, &data.test, &config, Some(&tm));
        let rmse10 = r.trace.points[9].rmse;
        let rmse20 = r.trace.final_rmse().unwrap();
        let stalls: f64 = r
            .epoch_stats
            .iter()
            .map(|s| s.stall_fraction())
            .sum::<f64>()
            / r.epoch_stats.len() as f64;
        let epoch_s = r.trace.points[0].seconds;
        let updates_per_s = r.epoch_stats[0].updates as f64 / epoch_s;
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>12.3} {:>10.5} {:>12.3e}",
            name, rmse10, rmse20, stalls, epoch_s, updates_per_s
        );
        results.push((name, rmse20, updates_per_s));
    }

    // All policies should reach comparable quality here (s << min(m, n)),
    // while parallel ones sustain far higher modelled throughput.
    let serial = results.iter().find(|r| r.0 == "serial").unwrap();
    for (name, rmse, ups) in &results {
        assert!(
            (*rmse - serial.1).abs() < 0.05,
            "{name} quality {rmse} strays from serial {}",
            serial.1
        );
        if *name != "serial" {
            assert!(
                *ups > serial.2 * 4.0,
                "{name} should be much faster than serial"
            );
        }
    }
    println!("\nall schemes converged to the same quality; parallel ones >4X the throughput");
}
