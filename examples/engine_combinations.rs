//! The layered engine's combination matrix: every training path is a
//! choice of scheduling stream × execution engine × time domain ×
//! observers, so combinations the monolithic loops could not express are
//! plain configuration — biased + partitioned multi-GPU, FP16 + real-thread
//! Hogwild!, and checkpoint/resume on any of them.
//!
//! ```sh
//! cargo run --release --example engine_combinations
//! ```

use cumf_sgd::core::multi_gpu::{train_partitioned, MultiGpuConfig};
use cumf_sgd::core::solver::{train, train_resumable, CheckpointSpec, Scheme, SolverConfig};
use cumf_sgd::core::{ExecMode, Schedule, F16};
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL};

fn main() {
    // Offset-heavy ratings (mean ~3.5): the regime where bias terms shine.
    let d = generate(&SynthConfig {
        m: 800,
        n: 600,
        k_true: 6,
        train_samples: 60_000,
        test_samples: 6_000,
        noise_std: 0.1,
        row_skew: 0.5,
        col_skew: 0.5,
        rating_offset: 3.5,
        seed: 17,
    });
    println!(
        "data: {}x{}, {} train samples, noise floor ~{:.2}\n",
        d.train.rows(),
        d.train.cols(),
        d.train.nnz(),
        0.1
    );

    // --- Combination 1: biased model on the partitioned multi-GPU path.
    let mut mg = MultiGpuConfig::new(8, 4, 4, 2);
    mg.epochs = 6;
    mg.lambda = 0.02;
    mg.schedule = Schedule::NomadDecay {
        alpha: 0.1,
        beta: 0.1,
    };
    mg.workers_per_gpu = 16;
    mg.batch = 64;
    let plain = train_partitioned::<f32>(&d.train, &d.test, &mg, &TITAN_X_MAXWELL, &PCIE3_X16);
    mg.bias = true;
    let biased = train_partitioned::<f32>(&d.train, &d.test, &mg, &TITAN_X_MAXWELL, &PCIE3_X16);
    println!(
        "biased + partitioned (2 GPUs, 4x4 grid, 6 epochs):\n  \
         unbiased RMSE {:.4} | biased RMSE {:.4} (mu = {:.2})",
        plain.trace.final_rmse().unwrap(),
        biased.trace.final_rmse().unwrap(),
        biased.bias.as_ref().map(|b| b.mu).unwrap_or(f32::NAN),
    );

    // --- Combination 2: FP16 storage under the real-thread Hogwild! engine.
    let mut cfg = SolverConfig::new(
        8,
        Scheme::BatchHogwild {
            workers: 4,
            batch: 128,
        },
    );
    cfg.epochs = 10;
    cfg.lambda = 0.02;
    cfg.schedule = Schedule::NomadDecay {
        alpha: 0.1,
        beta: 0.1,
    };
    cfg.mode = Some(ExecMode::Threaded);
    let f16 = train::<F16>(&d.train, &d.test, &cfg, None);
    println!(
        "\nf16 + threaded Hogwild! (4 OS threads, 10 epochs):\n  \
         RMSE {:.4} over {} updates",
        f16.trace.final_rmse().unwrap(),
        f16.total_updates(),
    );

    // --- Combination 3: checkpoint/resume wrapped around the same loop.
    let dir = std::env::temp_dir().join("cumf_engine_combinations");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("run.cmfk");
    let _ = std::fs::remove_file(&ckpt);
    let spec = CheckpointSpec {
        path: ckpt.clone(),
        every: 2,
        resume: true,
    };
    cfg.mode = None;
    cfg.epochs = 4;
    let _ = train_resumable::<f32>(&d.train, &d.test, &cfg, None, Some(&spec)).unwrap();
    cfg.epochs = 10;
    let resumed = train_resumable::<f32>(&d.train, &d.test, &cfg, None, Some(&spec)).unwrap();
    println!(
        "\ncheckpoint/resume (stop at epoch 4, resume to 10):\n  \
         final RMSE {:.4}, trace spans epochs 1..={}",
        resumed.trace.final_rmse().unwrap(),
        resumed.trace.points.last().map(|p| p.epoch).unwrap_or(0),
    );
    let _ = std::fs::remove_file(&ckpt);
}
