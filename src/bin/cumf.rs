//! `cumf` — the command-line front end of the cuMF_SGD reproduction.
//!
//! ```text
//! cumf generate --preset netflix --scale 0.01 --out train.bin --test-out test.bin
//! cumf train    --data train.bin --test test.bin --k 16 --epochs 20 \
//!               --scheme batch-hogwild --workers 16 --save model.cmfm [--f16]
//! cumf evaluate --model model.cmfm --data test.bin
//! cumf predict  --model model.cmfm --user 3 --item 17
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every flag has a
//! default so `cumf generate` / `cumf train` work out of the box.

use std::collections::HashMap;
use std::process::ExitCode;

use cumf_sgd::core::model_io::{load_model_file, save_model_file, Model};
use cumf_sgd::core::solver::{train, train_resumable, CheckpointSpec, Scheme, SolverConfig};
use cumf_sgd::core::{rmse, Schedule, F16};
use cumf_sgd::data::io::{read_binary_file, read_text_file, write_binary_file};
use cumf_sgd::data::{CooMatrix, DatasetSpec, HUGEWIKI, NETFLIX, YAHOO_MUSIC};
use cumf_sgd::gpu_sim::{
    simulate_throughput, CpuCacheModel, SchedulerModel, SgdUpdateCost, ThroughputConfig,
    TITAN_X_MAXWELL, XEON_E5_2670X2,
};
use cumf_sgd::obs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `bench` parses its own arguments: `--check` takes a variable
    // number of paths (shell globs like bench_results/BENCH_*.json).
    if cmd == "bench" {
        return match cmd_bench(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "predict" => cmd_predict(&flags),
        "profile" => cmd_profile(&flags),
        "analyze" => cmd_analyze(&flags),
        "chaos" => cmd_chaos(&flags),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cumf — parallelized SGD matrix factorization (cuMF_SGD reproduction)

USAGE:
  cumf generate [--preset netflix|yahoo|hugewiki] [--scale 0.01] [--k 16]
                [--seed 42] [--out train.bin] [--test-out test.bin]
  cumf train    [--data train.bin] [--test test.bin] [--k 16] [--epochs 20]
                [--lambda 0.02] [--alpha 0.1] [--beta 0.1]
                [--scheme serial|hogwild|batch-hogwild|wavefront|libmf]
                [--workers 16] [--batch 256] [--f16] [--save model.cmfm]
                [--trace out.json] [--metrics out.prom]
                [--checkpoint run.cmfk] [--checkpoint-every 1] [--resume]
  cumf evaluate [--model model.cmfm] [--data test.bin] [--f16]
  cumf predict  [--model model.cmfm] [--user U] [--item V] [--f16]
  cumf profile  [--preset netflix|yahoo|hugewiki] [--scale 0.002] [--k 16]
                [--epochs 5] [--scheme batch-hogwild] [--workers 8]
                [--trace profile_trace.json] [--metrics profile_metrics.prom]
                [--folded profile_folded.txt]
  cumf profile  --des [--folded profile_folded.txt]
                [--metrics profile_metrics.prom]
  cumf bench    [--quick] [--trials N] [--suite des|train|serve]...
                [--no-save] [--check BENCH_a.json [BENCH_b.json ...]]
  cumf analyze  [--all] [--prover] [--model-check] [--deadlock]
                [--staleness] [--cost] [--coalesce] [--precision] [--lint]
                [--sanitize] [--seed 42] [--explain CUMF-LINT-001]
  cumf chaos    [--quick] [--seed 42] [--tolerance 0.02] [--metrics out.prom]
                [--serve]
  cumf serve    [--model model.cmfm] [--requests 2000] [--zipf-s 1.1]
                [--deadline-ms 50] [--shards 4x2] [--seed 42]
                [--inject none|shard-loss|shard-stall] [--no-admission]

Data files may be .bin (compact binary) or text (`u v r` per line).
--trace writes Chrome trace_event JSON (open in Perfetto or
chrome://tracing); --metrics writes Prometheus text exposition. Either
flag also runs the calibrated GPU machine model after training so the
trace spans all three layers (solver, gpu-sim, DES).

--checkpoint saves a resumable snapshot every --checkpoint-every epochs;
add --resume to continue an interrupted run from that snapshot (the
deterministic schedulers make the result identical to an uninterrupted
run).

`analyze` runs the offline analyzers (exit code 1 on any failure): the
schedule conflict prover (wavefront / LIBMF certified conflict-free,
batch-Hogwild! refuted with a witness), the interleaving model checker
(stripe-lock order, torn rows/cells, work claiming), --deadlock, the
static deadlock & liveness certifier (lock-order graphs of every
shipped blocking protocol proven acyclic with replayable cycle
witnesses for the broken twins, waiter grants bounded under the FIFO
contract, watchdog timeouts checked against the certified wait
chains), --staleness, the static staleness & asynchrony certifier
(every lock-free update path lifted into an asynchrony IR, its
worst-case per-row staleness bound τ derived and exhaustively validated
by the interleaving checker, the lr·τ safety condition certified, and
three broken twins — deleted stripe locks, removed epoch barrier,
overlapping grid blocks — refuted with replayable witnesses), the kernel-IR
static passes — --cost certifies Eq. 5's bytes/flops-per-update against
both the analytical model and the DES executor's charged bytes (and
refutes a deliberately broken twin), --coalesce derives per-warp cache-
line footprints (cuMF coalesced, BIDMach column-major flagged),
--precision proves or refutes binary16 overflow-safety with interval +
relative-error domains — plus --lint, the source determinism lint (no
wall clocks / hash-ordered containers in deterministic crates), and —
when built with `--features sanitize` — the Eraser-style lockset race
sanitizer over the threaded executors. No section flag means --all.
--explain <id> prints the long-form documentation of a lint rule id
(CUMF-LINT-001…) and exits.

`profile` prints a sampling-free self/cumulative attribution table
built from the recorded spans (and --folded writes flamegraph
collapsed stacks). `profile --des` profiles the DES engine itself:
per-event-type dequeue counts, schedule->fire dwell-time quantiles,
queue occupancy, and the span attribution table.

`bench` runs the registered performance suites (des, train, serve) for N
trials (default 5, --quick 3), prints median + MAD per metric, and
writes schema-versioned bench_results/BENCH_<suite>.json (set
CUMF_BENCH_DIR to redirect). --check compares the fresh run against
committed baseline JSONs and exits non-zero on any regression beyond
a MAD-aware threshold; sim-domain metrics are bit-deterministic and
get a tight gate, wall-clock metrics a generous one.

`chaos` runs the deterministic fault-injection matrix (device loss, SM
throttling, transfer corruption/stalls, NaN storms, LR spikes) through
the self-healing training supervisor and checks the recovery contract:
same seed => identical recovery event log, recovered runs within
--tolerance of the fault-free RMSE, unrecoverable faults surfacing as
typed errors. Exit code 1 on any scenario failure. --quick is the CI
profile; --metrics exports the cumf_faults_* counters. The default run
appends the serving scenarios (shard loss/stall, overload shedding,
hedging) after the training matrix; --serve runs only those.

`serve` drives the closed-loop top-N recommendation service (Zipf
users, sharded factors, per-request deadlines, hedged reads, admission
control, circuit breakers) on sim time and prints the p50/p99/p999 +
QPS + shed/degraded summary. Without --model it serves a built-in
synthetic model; --model loads a trained .cmfm. All latencies are
simulated and bit-deterministic for a given seed. --inject adds a
shard fault; --no-admission disables the admission controller and
deadline finalization to demonstrate the unprotected tail.";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{arg}`"));
        };
        // Boolean flags take no value.
        if matches!(
            name,
            "f16"
                | "resume"
                | "all"
                | "prover"
                | "model-check"
                | "deadlock"
                | "staleness"
                | "cost"
                | "coalesce"
                | "precision"
                | "lint"
                | "sanitize"
                | "quick"
                | "des"
                | "serve"
                | "no-admission"
        ) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<'a>(flags: &'a Flags, name: &str, default: &'a str) -> &'a str {
    flags.get(name).map(String::as_str).unwrap_or(default)
}

fn get_parse<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| format!("bad value for --{name}: {e}")),
    }
}

fn load_data(path: &str) -> Result<CooMatrix, String> {
    let loader = if path.ends_with(".bin") {
        read_binary_file(path)
    } else {
        read_text_file(path)
    };
    loader.map_err(|e| format!("loading {path}: {e}"))
}

fn parse_preset(flags: &Flags) -> Result<&'static DatasetSpec, String> {
    match get(flags, "preset", "netflix") {
        "netflix" => Ok(&NETFLIX),
        "yahoo" => Ok(&YAHOO_MUSIC),
        "hugewiki" => Ok(&HUGEWIKI),
        other => Err(format!("unknown preset `{other}`")),
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let preset = parse_preset(flags)?;
    let scale: f64 = get_parse(flags, "scale", 0.01)?;
    let k: u32 = get_parse(flags, "k", 16)?;
    let seed: u64 = get_parse(flags, "seed", 42)?;
    let out = get(flags, "out", "train.bin");
    let test_out = get(flags, "test-out", "test.bin");
    let d = preset.scaled(scale, k, seed);
    write_binary_file(out, &d.train).map_err(|e| e.to_string())?;
    write_binary_file(test_out, &d.test).map_err(|e| e.to_string())?;
    println!(
        "generated {}-shaped data: {}x{}, {} train -> {out}, {} test -> {test_out} \
         (noise floor RMSE {:.3})",
        preset.name,
        d.train.rows(),
        d.train.cols(),
        d.train.nnz(),
        d.test.nnz(),
        d.rmse_floor
    );
    Ok(())
}

fn parse_scheme(flags: &Flags) -> Result<Scheme, String> {
    let workers: u32 = get_parse(flags, "workers", 16)?;
    let batch: u32 = get_parse(flags, "batch", 256)?;
    Ok(match get(flags, "scheme", "batch-hogwild") {
        "serial" => Scheme::Serial,
        "hogwild" => Scheme::Hogwild { workers },
        "batch-hogwild" => Scheme::BatchHogwild { workers, batch },
        "wavefront" => Scheme::Wavefront {
            workers,
            cols: workers * 4,
        },
        "libmf" => Scheme::LibmfTable {
            workers,
            a: get_parse(flags, "grid", 32)?,
        },
        other => return Err(format!("unknown scheme `{other}`")),
    })
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let train_data = load_data(get(flags, "data", "train.bin"))?;
    let test_path = get(flags, "test", "test.bin");
    let test_data = if std::path::Path::new(test_path).exists() {
        load_data(test_path)?
    } else {
        CooMatrix::new(train_data.rows(), train_data.cols())
    };
    let config = SolverConfig {
        k: get_parse(flags, "k", 16)?,
        lambda: get_parse(flags, "lambda", 0.02)?,
        schedule: Schedule::NomadDecay {
            alpha: get_parse(flags, "alpha", 0.1)?,
            beta: get_parse(flags, "beta", 0.1)?,
        },
        epochs: get_parse(flags, "epochs", 20)?,
        scheme: parse_scheme(flags)?,
        seed: get_parse(flags, "seed", 42)?,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let save = get(flags, "save", "model.cmfm");
    let checkpoint = match flags.get("checkpoint") {
        Some(path) => Some(CheckpointSpec {
            path: std::path::PathBuf::from(path),
            every: get_parse(flags, "checkpoint-every", 1)?,
            resume: flags.contains_key("resume"),
        }),
        None if flags.contains_key("resume") => {
            return Err("--resume requires --checkpoint <path>".into());
        }
        None => None,
    };
    let trace_out = flags.get("trace").cloned();
    let metrics_out = flags.get("metrics").cloned();
    let observing = trace_out.is_some() || metrics_out.is_some();
    if observing {
        obs::set_enabled(true);
    }
    println!(
        "training: {}x{}, {} samples, k={}, scheme={}, {} epochs",
        train_data.rows(),
        train_data.cols(),
        train_data.nnz(),
        config.k,
        config.scheme.name(),
        config.epochs
    );
    let outcome = if flags.contains_key("f16") {
        let result =
            train_resumable::<F16>(&train_data, &test_data, &config, None, checkpoint.as_ref())
                .map_err(|e| e.to_string())?;
        report_and_save(result.trace.final_rmse(), result.diverged, save, || {
            save_model_file(save, &Model::new(result.p.clone(), result.q.clone()))
                .map_err(|e| e.to_string())
        })
    } else {
        let result =
            train_resumable::<f32>(&train_data, &test_data, &config, None, checkpoint.as_ref())
                .map_err(|e| e.to_string())?;
        report_and_save(result.trace.final_rmse(), result.diverged, save, || {
            save_model_file(save, &Model::new(result.p.clone(), result.q.clone()))
                .map_err(|e| e.to_string())
        })
    };
    if observing {
        run_machine_model(
            config.scheme,
            config.k,
            train_data.rows() as u64,
            train_data.cols() as u64,
            train_data.nnz() as u64,
        );
        write_observability(trace_out.as_deref(), metrics_out.as_deref())?;
    }
    outcome
}

/// Runs the calibrated GPU machine model (and the CPU cache model) for the
/// scheme that was just trained, so traces and metrics cover the gpu-sim
/// and DES layers as well as the solver.
fn run_machine_model(scheme: Scheme, k: u32, m: u64, n: u64, total_updates: u64) {
    let gpu = &TITAN_X_MAXWELL;
    let (workers, model) = match scheme {
        Scheme::Serial => (
            1,
            SchedulerModel::BatchHogwild {
                batch: 256,
                per_batch_overhead_s: 50e-9,
            },
        ),
        Scheme::Hogwild { workers } => (
            workers,
            SchedulerModel::BatchHogwild {
                batch: 1,
                per_batch_overhead_s: 50e-9,
            },
        ),
        Scheme::BatchHogwild { workers, batch } => (
            workers,
            SchedulerModel::BatchHogwild {
                batch,
                per_batch_overhead_s: 50e-9,
            },
        ),
        Scheme::Wavefront { workers, cols } => (
            workers,
            SchedulerModel::Wavefront {
                grid_cols: cols,
                per_block_overhead_s: 100e-9,
                imbalance: 0.1,
            },
        ),
        Scheme::LibmfTable { workers, a } => (
            workers,
            SchedulerModel::RowColScan {
                a,
                per_entry_s: 0.6e-6,
            },
        ),
    };
    let workers = workers.max(1);
    let _span = obs::span("cli", "machine-model");
    let result = simulate_throughput(&ThroughputConfig {
        workers,
        total_bandwidth: gpu.effective_bw(workers),
        cost: SgdUpdateCost::cumf(k),
        scheduler: model,
        total_updates: total_updates.max(1),
    });
    // The paper's baseline for comparison (Fig 5b): LIBMF's global-table
    // scheduling. Its critical-section server also exercises the DES
    // resource layer, so traces always carry `des` service spans.
    let baseline = simulate_throughput(&ThroughputConfig {
        workers,
        total_bandwidth: gpu.effective_bw(workers),
        cost: SgdUpdateCost::cumf(k),
        scheduler: SchedulerModel::RowColScan {
            a: 100,
            per_entry_s: 0.6e-6,
        },
        total_updates: total_updates.max(1),
    });
    // One CPU cache-model query populates the cache-amplification metrics.
    let cache = CpuCacheModel::calibrated(XEON_E5_2670X2);
    let cpu_bw = cache.libmf_effective_bw(m.max(1), n.max(1), 100, k);
    println!(
        "machine model ({}, {} workers): {:.3e} updates/s, {:.1} GB/s achieved \
         ({:.3e} with LIBMF-GPU scheduling; CPU cache model: {:.1} GB/s effective)",
        gpu.name,
        workers,
        result.updates_per_sec,
        result.achieved_bw / 1e9,
        baseline.updates_per_sec,
        cpu_bw / 1e9,
    );
}

/// Writes the requested trace/metrics exports from the global collectors.
fn write_observability(trace: Option<&str>, metrics: Option<&str>) -> Result<(), String> {
    if let Some(path) = trace {
        std::fs::write(path, obs::chrome_trace()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written to {path} (open in Perfetto / chrome://tracing)");
    }
    if let Some(path) = metrics {
        std::fs::write(path, obs::prometheus()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    Ok(())
}

/// `cumf profile --des`: profiles the DES engine itself. Runs the
/// registered DES benchmark workloads once with full instrumentation
/// and prints the self/cumulative attribution table plus the hot-path
/// probe metrics (per-event-type dequeue counts, dwell-time quantiles,
/// queue occupancy) — the breakdown ROADMAP item 5 optimizes against.
fn cmd_profile_des(flags: &Flags) -> Result<(), String> {
    use cumf_sgd::bench::suite;
    let folded_path = get(flags, "folded", "profile_folded.txt");
    let metrics_path = get(flags, "metrics", "profile_metrics.prom");
    obs::set_enabled(true);
    obs::reset();
    println!("profiling the DES engine (registered `des` bench workloads, 1 trial)");
    let report = suite::run_suite("des", 1, true).expect("des suite is registered");
    for m in &report.metrics {
        println!(
            "  {:<28} {:>14.4e} {} [{}]",
            m.id,
            m.median,
            m.unit,
            m.domain.as_str()
        );
    }
    println!("\n{}", obs::profile_table());
    println!("{}", obs::summary());
    std::fs::write(folded_path, obs::collapsed_stacks())
        .map_err(|e| format!("writing {folded_path}: {e}"))?;
    println!("collapsed stacks written to {folded_path} (flamegraph.pl / speedscope)");
    std::fs::write(metrics_path, obs::prometheus())
        .map_err(|e| format!("writing {metrics_path}: {e}"))?;
    println!("metrics written to {metrics_path}");
    Ok(())
}

fn cmd_profile(flags: &Flags) -> Result<(), String> {
    if flags.contains_key("des") {
        return cmd_profile_des(flags);
    }
    let preset = parse_preset(flags)?;
    let scale: f64 = get_parse(flags, "scale", 0.002)?;
    let k: u32 = get_parse(flags, "k", 16)?;
    let seed: u64 = get_parse(flags, "seed", 42)?;
    let trace_path = get(flags, "trace", "profile_trace.json");
    let metrics_path = get(flags, "metrics", "profile_metrics.prom");
    let mut profile_flags = flags.clone();
    profile_flags
        .entry("workers".to_string())
        .or_insert_with(|| "8".to_string());
    let config = SolverConfig {
        k,
        lambda: get_parse(flags, "lambda", 0.02)?,
        schedule: Schedule::NomadDecay {
            alpha: get_parse(flags, "alpha", 0.1)?,
            beta: get_parse(flags, "beta", 0.1)?,
        },
        epochs: get_parse(flags, "epochs", 5)?,
        scheme: parse_scheme(&profile_flags)?,
        seed,
        mode: None,
        divergence_ceiling: 1e3,
    };
    obs::set_enabled(true);
    let d = preset.scaled(scale, k, seed);
    println!(
        "profiling {}-shaped run: {}x{}, {} samples, k={}, scheme={}, {} epochs",
        preset.name,
        d.train.rows(),
        d.train.cols(),
        d.train.nnz(),
        k,
        config.scheme.name(),
        config.epochs
    );
    let result = train::<f32>(&d.train, &d.test, &config, None);
    run_machine_model(
        config.scheme,
        k,
        d.train.rows() as u64,
        d.train.cols() as u64,
        d.train.nnz() as u64,
    );
    write_observability(Some(trace_path), Some(metrics_path))?;
    if let Some(folded_path) = flags.get("folded") {
        std::fs::write(folded_path, obs::collapsed_stacks())
            .map_err(|e| format!("writing {folded_path}: {e}"))?;
        println!("collapsed stacks written to {folded_path}");
    }
    println!("\n{}", obs::profile_table());
    println!("{}", obs::summary());
    if result.diverged {
        return Err("profiled run diverged (try a lower --alpha)".into());
    }
    Ok(())
}

/// `cumf bench`: runs the registered suites, writes `BENCH_*.json`,
/// and optionally checks the fresh results against baselines.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    use cumf_sgd::bench::{check_against, json, suite};

    let mut quick = false;
    let mut trials: Option<usize> = None;
    let mut suites: Vec<String> = Vec::new();
    let mut baselines: Vec<String> = Vec::new();
    let mut no_save = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--no-save" => {
                no_save = true;
                i += 1;
            }
            "--trials" => {
                let v = args.get(i + 1).ok_or("--trials needs a value")?;
                trials = Some(v.parse().map_err(|e| format!("bad --trials: {e}"))?);
                i += 2;
            }
            "--suite" => {
                let v = args.get(i + 1).ok_or("--suite needs a value")?;
                suites.push(v.clone());
                i += 2;
            }
            "--check" => {
                i += 1;
                let start = i;
                while i < args.len() && !args[i].starts_with("--") {
                    baselines.push(args[i].clone());
                    i += 1;
                }
                if i == start {
                    return Err("--check needs at least one baseline path".into());
                }
            }
            other => return Err(format!("unknown bench argument `{other}`")),
        }
    }
    let trials = trials.unwrap_or(if quick { 3 } else { 5 });
    if suites.is_empty() {
        suites = suite::suite_names().iter().map(|s| s.to_string()).collect();
    }

    // Load baselines *before* running: saving fresh results may
    // overwrite the very files `--check` points at.
    let mut loaded: Vec<(String, json::Json)> = Vec::new();
    for path in &baselines {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let doc = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        loaded.push((path.clone(), doc));
    }

    obs::set_enabled(true);
    let mut reports = Vec::new();
    for name in &suites {
        obs::reset();
        println!(
            "bench [{name}]: {trials} trial(s){}",
            if quick { ", quick workloads" } else { "" }
        );
        let report = suite::run_suite(name, trials, quick)
            .ok_or_else(|| format!("unknown suite `{name}` (have: des, train, serve)"))?;
        for m in &report.metrics {
            println!(
                "  {:<32} median {:>12.4e} {} (mad {:.2e}) [{}]",
                m.id,
                m.median,
                m.unit,
                m.mad,
                m.domain.as_str()
            );
        }
        println!("  sim_digest {}", report.sim_digest());
        if !no_save {
            let path = report
                .save()
                .map_err(|e| format!("writing BENCH json: {e}"))?;
            println!("  [saved {}]", path.display());
        }
        reports.push(report);
    }

    let mut failures = 0usize;
    for (path, doc) in &loaded {
        let suite_name = doc
            .get("suite")
            .and_then(json::Json::as_str)
            .ok_or_else(|| format!("{path}: no suite field"))?;
        let Some(report) = reports.iter().find(|r| r.suite == suite_name) else {
            println!("check [{suite_name}]: skipped ({path} — suite not run)");
            continue;
        };
        let outcome = check_against(report, doc).map_err(|e| format!("{path}: {e}"))?;
        print!("{}", outcome.render());
        if !outcome.passed() {
            failures += outcome.regressions();
        }
    }
    if failures > 0 {
        return Err(format!("bench check failed: {failures} regression(s)"));
    }
    Ok(())
}

fn cmd_analyze(flags: &Flags) -> Result<(), String> {
    use cumf_sgd::analyze;
    let seed: u64 = get_parse(flags, "seed", 42)?;
    if let Some(id) = flags.get("explain") {
        return match analyze::lint::explain(id) {
            Some(text) => {
                println!("{id}: {text}");
                Ok(())
            }
            None => Err(format!(
                "unknown rule id `{id}` (known: {})",
                analyze::lint::rule_ids().collect::<Vec<_>>().join(", ")
            )),
        };
    }
    let explicit = [
        "prover",
        "model-check",
        "deadlock",
        "staleness",
        "cost",
        "coalesce",
        "precision",
        "lint",
        "sanitize",
    ]
    .iter()
    .any(|s| flags.contains_key(*s));
    let all = flags.contains_key("all") || !explicit;
    let mut sections = Vec::new();
    if all || flags.contains_key("prover") {
        sections.push(analyze::prover_section(seed));
    }
    if all || flags.contains_key("model-check") {
        sections.push(analyze::model_check_section());
    }
    if all || flags.contains_key("deadlock") {
        sections.push(analyze::deadlock_section());
    }
    if all || flags.contains_key("staleness") {
        sections.push(analyze::staleness_section());
    }
    if all || flags.contains_key("cost") {
        sections.push(analyze::cost_section());
    }
    if all || flags.contains_key("coalesce") {
        sections.push(analyze::coalesce_section());
    }
    if all || flags.contains_key("precision") {
        sections.push(analyze::precision_section());
    }
    if all || flags.contains_key("lint") {
        let section = analyze::lint_section();
        if !section.ran && flags.contains_key("lint") {
            return Err("lint skipped: workspace sources not found on disk".into());
        }
        sections.push(section);
    }
    if all || flags.contains_key("sanitize") {
        let section = analyze::sanitize_section(seed);
        if !section.ran && flags.contains_key("sanitize") {
            return Err("the sanitizer is compiled out; rebuild with `--features sanitize`".into());
        }
        sections.push(section);
    }
    let report = analyze::AnalysisReport { sections };
    println!("{report}");
    if report.pass() {
        Ok(())
    } else {
        Err("analysis failed (see sections above)".into())
    }
}

fn cmd_chaos(flags: &Flags) -> Result<(), String> {
    use cumf_sgd::core::faults::{run_chaos, ChaosOptions};
    use cumf_sgd::serve::{run_serve_chaos, ServeChaosOptions};
    let seed: u64 = get_parse(flags, "seed", 42)?;
    let quick = flags.contains_key("quick");
    let serve_only = flags.contains_key("serve");
    let metrics_out = flags.get("metrics").cloned();
    if metrics_out.is_some() {
        obs::set_enabled(true);
    }
    let mut passed = true;
    if !serve_only {
        let opts = ChaosOptions {
            seed,
            quick,
            tolerance: get_parse(flags, "tolerance", 0.02)?,
        };
        println!(
            "chaos: seed {}, {} profile, tolerance {:.1}%\n",
            opts.seed,
            if opts.quick { "quick" } else { "full" },
            opts.tolerance * 100.0
        );
        let report = run_chaos(&opts);
        println!("{}", report.render());
        passed &= report.passed;
    }
    println!(
        "chaos [serve]: seed {seed}, {} profile\n",
        if quick { "quick" } else { "full" }
    );
    let serve_report = run_serve_chaos(&ServeChaosOptions { seed, quick });
    println!("{}", serve_report.render());
    passed &= serve_report.all_passed();
    if let Some(path) = metrics_out {
        std::fs::write(&path, obs::prometheus()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    if passed {
        Ok(())
    } else {
        Err("chaos matrix failed (see report above)".into())
    }
}

/// Parses a `RxC` shard-grid spec like `4x2`.
fn parse_shard_grid(s: &str) -> Result<(u32, u32), String> {
    let (r, c) = s
        .split_once('x')
        .ok_or_else(|| format!("--shards wants RxC (e.g. 4x2), got `{s}`"))?;
    let rows: u32 = r
        .trim()
        .parse()
        .map_err(|e| format!("bad --shards rows: {e}"))?;
    let cols: u32 = c
        .trim()
        .parse()
        .map_err(|e| format!("bad --shards cols: {e}"))?;
    if rows == 0 || cols == 0 {
        return Err("--shards needs at least a 1x1 grid".into());
    }
    Ok((rows, cols))
}

/// `cumf serve`: the closed-loop top-N serving benchmark — sharded
/// factors, Zipf users, deadlines, hedging, admission control — run on
/// sim time, so the whole latency table is bit-deterministic per seed.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use cumf_sgd::serve::{
        chaos::synth_model, run_closed_loop, OverloadPolicy, ServeConfig, ServeFault, ShardedModel,
    };
    let seed: u64 = get_parse(flags, "seed", 42)?;
    let (p_shards, q_shards) = parse_shard_grid(get(flags, "shards", "4x2"))?;
    let model: ShardedModel<f32> = match flags.get("model") {
        Some(path) => {
            let m: Model<f32> = load_model_file(path).map_err(|e| e.to_string())?;
            ShardedModel::new(m.p, m.q, p_shards, q_shards, None)
        }
        None => synth_model(seed, p_shards, q_shards),
    };
    let mut cfg = ServeConfig {
        requests: get_parse(flags, "requests", 2000)?,
        zipf_s: get_parse(flags, "zipf-s", 1.1)?,
        deadline_s: get_parse(flags, "deadline-ms", 50.0)? * 1e-3,
        seed,
        ..ServeConfig::default()
    };
    if cfg.deadline_s <= 0.0 {
        return Err("--deadline-ms must be positive".into());
    }
    if flags.contains_key("no-admission") {
        cfg.policy = OverloadPolicy::no_admission();
    }
    cfg.fault = match get(flags, "inject", "none") {
        "none" => None,
        // Both replicas of the last Q shard go dark; the window must
        // outlast the deadline so degradation (not waiting) is the only
        // way to answer in time.
        "shard-loss" => Some(ServeFault::ShardLoss {
            shard: model.q_shard_id(q_shards - 1),
            from_s: 0.020,
            until_s: 0.020 + 3.0 * cfg.deadline_s,
        }),
        "shard-stall" => Some(ServeFault::ShardStall {
            shard: model.q_shard_id(0),
            replica: 0,
            from_s: 0.010,
            until_s: 0.010 + 6.0 * cfg.deadline_s,
            factor: 20.0,
        }),
        other => {
            return Err(format!(
                "unknown --inject `{other}` (none | shard-loss | shard-stall)"
            ))
        }
    };
    println!(
        "serve: {} users x {} items (k={}), grid {p_shards}x{q_shards}, \
         {} requests, zipf s={}, deadline {:.1} ms, seed {seed}{}{}",
        model.users(),
        model.items(),
        model.k(),
        cfg.requests,
        cfg.zipf_s,
        cfg.deadline_s * 1e3,
        if flags.contains_key("no-admission") {
            ", admission DISABLED"
        } else {
            ""
        },
        match &cfg.fault {
            Some(f) => format!(", inject: {f:?}"),
            None => String::new(),
        }
    );
    let report = run_closed_loop(&model, &cfg);
    println!("{}", report.render());
    if !report.transcript.is_empty() {
        println!(
            "transcript (first {} notable events):",
            report.transcript.len()
        );
        for line in &report.transcript {
            println!("  {line}");
        }
    }
    Ok(())
}

fn report_and_save(
    final_rmse: Option<f64>,
    diverged: bool,
    save: &str,
    do_save: impl FnOnce() -> Result<(), String>,
) -> Result<(), String> {
    if diverged {
        return Err("training diverged (try a lower --alpha or fewer --workers)".into());
    }
    match final_rmse {
        Some(r) if r > 0.0 => println!("final test RMSE: {r:.4}"),
        _ => println!("trained (no test set provided)"),
    }
    do_save()?;
    println!("model saved to {save}");
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> Result<(), String> {
    let data = load_data(get(flags, "data", "test.bin"))?;
    let path = get(flags, "model", "model.cmfm");
    let r = if flags.contains_key("f16") {
        let model: Model<F16> = load_model_file(path).map_err(|e| e.to_string())?;
        rmse(&data, &model.p, &model.q)
    } else {
        let model: Model<f32> = load_model_file(path).map_err(|e| e.to_string())?;
        rmse(&data, &model.p, &model.q)
    };
    println!("RMSE over {} samples: {r:.4}", data.nnz());
    Ok(())
}

fn cmd_predict(flags: &Flags) -> Result<(), String> {
    let path = get(flags, "model", "model.cmfm");
    let u: u32 = get_parse(flags, "user", 0)?;
    let v: u32 = get_parse(flags, "item", 0)?;
    let pred = if flags.contains_key("f16") {
        let model: Model<F16> = load_model_file(path).map_err(|e| e.to_string())?;
        check_bounds(&model, u, v)?;
        model.predict(u, v)
    } else {
        let model: Model<f32> = load_model_file(path).map_err(|e| e.to_string())?;
        check_bounds(&model, u, v)?;
        model.predict(u, v)
    };
    println!("predicted rating for (user {u}, item {v}): {pred:.3}");
    Ok(())
}

fn check_bounds<E: cumf_sgd::core::Element>(
    model: &Model<E>,
    u: u32,
    v: u32,
) -> Result<(), String> {
    if u >= model.p.rows() {
        return Err(format!("user {u} out of range (m = {})", model.p.rows()));
    }
    if v >= model.q.rows() {
        return Err(format!("item {v} out of range (n = {})", model.q.rows()));
    }
    Ok(())
}
