//! # cumf-sgd — umbrella crate
//!
//! Re-exports the whole cuMF_SGD reproduction (HPDC'17) under one roof so
//! examples and integration tests can reach every layer:
//!
//! * [`core`] — the paper's contribution: kernels, schedulers, solvers,
//!   partitioning, multi-GPU pipeline, binary16 storage;
//! * [`analyze`] — the concurrency analyzers: schedule conflict prover,
//!   interleaving model checker, and lockset race sanitizer;
//! * [`baselines`] — LIBMF, NOMAD, BIDMach-style mini-batch ADAGRAD, ALS;
//! * [`data`] — matrices, planted generators, presets, IO;
//! * [`gpu_sim`] — the calibrated GPU/CPU/interconnect machine models;
//! * [`des`] — the discrete-event simulation engine beneath them;
//! * [`obs`] — metrics registry, sim/wall-clock tracer, and exporters;
//! * [`rng`] — the in-tree deterministic random number generators;
//! * [`serve`] — overload-resilient top-N serving over trained models:
//!   sharded storage, deadlines, hedging, admission control, graceful
//!   degradation.
//!
//! Depend on the individual crates directly in downstream projects; this
//! crate exists for the repository's own examples and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cumf_analyze as analyze;
pub use cumf_baselines as baselines;
pub use cumf_bench as bench;
pub use cumf_core as core;
pub use cumf_data as data;
pub use cumf_des as des;
pub use cumf_gpu_sim as gpu_sim;
pub use cumf_obs as obs;
pub use cumf_rng as rng;
pub use cumf_serve as serve;
