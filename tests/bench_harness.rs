//! End-to-end contract of the `cumf bench` harness:
//!
//! * `--check` passes on an unchanged tree and fails on an injected
//!   3× slowdown;
//! * sim-domain benches are bit-deterministic across runs (digest
//!   equality), satisfying the PR 5 determinism discipline;
//! * the committed `bench_results/BENCH_*.json` baselines stay in sync
//!   with the code's sim-domain results.
//!
//! The tests share the process-global observability state, so they
//! serialize on a local mutex.

use std::sync::Mutex;

use cumf_sgd::bench::json::{parse, Json};
use cumf_sgd::bench::suite::{run_suite, Better, Domain, SuiteReport};
use cumf_sgd::bench::{check_against, suite_names};
use cumf_sgd::obs;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn quick_suite(name: &str, trials: usize) -> SuiteReport {
    obs::set_enabled(true);
    obs::reset();
    run_suite(name, trials, true).expect("registered suite")
}

#[test]
fn check_passes_unchanged_and_fails_injected_3x_slowdown() {
    let _guard = locked();
    for suite in suite_names() {
        let report = quick_suite(suite, 2);
        let baseline = parse(&report.to_json()).expect("self JSON parses");

        // Unchanged tree: the very same measurements must pass.
        let ok = check_against(&report, &baseline).expect("valid baseline");
        assert!(ok.passed(), "self-check failed:\n{}", ok.render());

        // Injected 3x slowdown: every metric moves to 3x worse.
        let mut slowed = report.clone();
        for m in &mut slowed.metrics {
            match m.better {
                Better::Higher => m.median /= 3.0,
                Better::Lower => m.median *= 3.0,
            }
        }
        let bad = check_against(&slowed, &baseline).expect("valid baseline");
        assert!(!bad.passed(), "3x slowdown must fail [{suite}]");
        assert_eq!(
            bad.regressions(),
            slowed.metrics.len(),
            "every slowed metric must regress:\n{}",
            bad.render()
        );
    }
}

#[test]
fn sim_domain_benches_are_bit_deterministic() {
    let _guard = locked();
    for suite in suite_names() {
        let a = quick_suite(suite, 1);
        let b = quick_suite(suite, 1);
        assert!(
            a.metrics.iter().any(|m| m.domain == Domain::Sim),
            "{suite} must carry a sim metric"
        );
        assert_eq!(
            a.sim_canonical(),
            b.sim_canonical(),
            "sim-domain results must be identical across runs [{suite}]"
        );
        assert_eq!(a.sim_digest(), b.sim_digest());
    }
}

#[test]
fn committed_baselines_match_current_sim_results() {
    let _guard = locked();
    for suite in suite_names() {
        let path = format!(
            "{}/bench_results/BENCH_{suite}.json",
            env!("CARGO_MANIFEST_DIR")
        );
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("committed baseline {path} missing: {e}"));
        let doc = parse(&text).expect("committed baseline parses");
        let fresh = quick_suite(suite, 1);

        // The baseline's recorded digest matches its own metrics and
        // the code's current deterministic results.
        assert_eq!(
            doc.get("sim_digest").and_then(Json::as_str),
            Some(fresh.sim_digest().as_str()),
            "sim results drifted from the committed {path}; regenerate with \
             `cargo run --release --bin cumf -- bench --quick`"
        );

        // And the full check passes on the unchanged tree. Wall-clock
        // metrics carry machine-sized tolerances, so this holds across
        // hosts unless something genuinely regressed.
        let outcome = check_against(&fresh, &doc).expect("baseline is structurally valid");
        for c in outcome.checks {
            let sim = fresh
                .metrics
                .iter()
                .any(|m| m.id == c.id && m.domain == Domain::Sim);
            if sim {
                assert_eq!(
                    c.verdict,
                    cumf_sgd::bench::check::Verdict::Ok,
                    "sim metric regressed vs committed baseline: {} {}",
                    c.id,
                    c.detail
                );
            }
        }
    }
}
