//! Property-style tests for the `cumf-analyze` concurrency analyzers.
//!
//! Deterministic seeded sweeps (same convention as `tests/props.rs`):
//! the schedule conflict prover must certify the paper's two
//! conflict-free-by-construction policies on randomized datasets, refute
//! batch-Hogwild! with a concrete witness under forced collisions, and
//! every update stream must replay identically after `begin_epoch` — the
//! property that makes a certificate transferable from the prover's probe
//! stream to the solver's execution stream.

use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

use cumf_sgd::analyze::prover::{certify_libmf, certify_wavefront, random_dataset};
use cumf_sgd::core::sched::{
    certify, drain_epoch, BatchHogwildStream, HogwildStream, LibmfTableStream, SerialStream,
    UpdateStream, Verdict, WavefrontStream,
};
use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::ExecMode;
use cumf_sgd::data::CooMatrix;

/// Random dataset shapes that satisfy every scheme's preconditions
/// (`workers ≤ m`, `2·workers ≤ cols ≤ n`, `a ≤ min(m, n)`).
fn random_case(rng: &mut ChaCha8Rng) -> (CooMatrix, usize) {
    let workers = rng.gen_range(2usize..5);
    let m = rng.gen_range(workers as u32 * 2..64);
    let n = rng.gen_range(workers as u32 * 2..64);
    let nnz = rng.gen_range(1usize..800);
    (
        random_dataset(m, n, nnz, rng.gen_range(0u64..1 << 40)),
        workers,
    )
}

/// The wavefront-update schedule certifies conflict-free on every
/// randomized dataset (the §5.2 construction: one block-row per worker,
/// dynamic column claiming).
#[test]
fn prover_certifies_wavefront_on_random_datasets() {
    let mut rng = ChaCha8Rng::seed_from_u64(201);
    for i in 0..25 {
        let (data, workers) = random_case(&mut rng);
        let verdict = certify_wavefront(&data, workers, 0xABC ^ i, 2);
        match verdict {
            Verdict::Certified(cert) => {
                assert_eq!(cert.workers, workers, "case {i}");
                assert_eq!(cert.epochs_checked, 2, "case {i}");
                // Two epochs of the full dataset.
                assert_eq!(cert.samples, 2 * data.nnz() as u64, "case {i}");
            }
            Verdict::Refuted(w) => panic!("case {i}: wavefront refuted: {w}"),
        }
    }
}

/// The LIBMF global-table schedule certifies conflict-free on every
/// randomized dataset (block-exclusive rows and columns).
#[test]
fn prover_certifies_libmf_on_random_datasets() {
    let mut rng = ChaCha8Rng::seed_from_u64(202);
    for i in 0..25 {
        let (data, workers) = random_case(&mut rng);
        let a = (2 * workers)
            .min(data.rows() as usize)
            .min(data.cols() as usize);
        let verdict = certify_libmf(&data, workers, a, 0xDEF ^ i, 2);
        assert!(
            verdict.is_certified(),
            "case {i}: libmf refuted: {:?}",
            verdict.witness()
        );
    }
}

/// Batch-Hogwild! with every sample on one coordinate must be refuted,
/// and the witness must name a real collision: two distinct workers in
/// the same round whose samples share the axis.
#[test]
fn prover_refutes_batch_hogwild_under_forced_collisions() {
    let mut rng = ChaCha8Rng::seed_from_u64(203);
    for i in 0..10 {
        let workers = rng.gen_range(2usize..6);
        let batch = rng.gen_range(1usize..8);
        let samples = rng.gen_range(workers * batch..200);
        let mut data = CooMatrix::new(1, 1);
        for _ in 0..samples {
            data.push(0, 0, rng.gen_range(-1.0f32..1.0));
        }
        let mut stream = BatchHogwildStream::new(data.nnz(), workers, batch);
        let verdict = certify(&data, &mut stream, 1, 4 * samples as u64 + 64);
        let w = verdict
            .witness()
            .unwrap_or_else(|| panic!("case {i}: 1x1 dataset certified conflict-free"));
        assert_ne!(w.worker_a, w.worker_b, "case {i}: workers must differ");
        assert_ne!(w.sample_a, w.sample_b, "case {i}: samples must differ");
    }
}

/// Drains one epoch `e` of a boxed stream after `begin_epoch(e)`.
fn replay(stream: &mut dyn UpdateStream, epoch: u32, max_rounds: usize) -> Vec<Vec<usize>> {
    struct Borrowed<'a>(&'a mut dyn UpdateStream);
    impl UpdateStream for Borrowed<'_> {
        fn workers(&self) -> usize {
            self.0.workers()
        }
        fn next(&mut self, worker: usize) -> cumf_sgd::core::sched::StreamItem {
            self.0.next(worker)
        }
        fn begin_epoch(&mut self, epoch: u32) {
            self.0.begin_epoch(epoch)
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }
    stream.begin_epoch(epoch);
    drain_epoch(&mut Borrowed(stream), max_rounds)
}

/// `begin_epoch(e)` makes every stream a pure function of `e`: draining
/// the same epoch twice — even after draining *other* epochs in between —
/// yields identical per-worker schedules. This is what lets the solver
/// reuse a certificate produced on a separate probe stream.
#[test]
fn begin_epoch_replays_every_stream_deterministically() {
    let mut rng = ChaCha8Rng::seed_from_u64(204);
    for i in 0..8 {
        let (data, workers) = random_case(&mut rng);
        let nnz = data.nnz();
        let cols = 2 * workers;
        let a = (2 * workers)
            .min(data.rows() as usize)
            .min(data.cols() as usize);
        let seed = 0x7e57 ^ i;
        let mut streams: Vec<Box<dyn UpdateStream>> = vec![
            Box::new(SerialStream::new(nnz)),
            Box::new(HogwildStream::new(nnz, workers, seed)),
            Box::new(BatchHogwildStream::new(nnz, workers, 4)),
            Box::new(WavefrontStream::new(&data, workers, cols, seed)),
            Box::new(LibmfTableStream::new(&data, workers, a, seed)),
        ];
        let max_rounds = 4 * nnz + 64;
        for stream in &mut streams {
            let first = replay(stream.as_mut(), 3, max_rounds);
            // Perturb internal cursors with a different epoch...
            let _ = replay(stream.as_mut(), 7, max_rounds);
            // ...then the original epoch must reproduce exactly.
            let second = replay(stream.as_mut(), 3, max_rounds);
            assert_eq!(
                first,
                second,
                "case {i}: {} epoch 3 not reproducible",
                stream.name()
            );
        }
    }
}

/// Certificates are replayable: certifying the same stream twice yields
/// the same schedule digest (the digest is a function of the schedule,
/// which `begin_epoch` pins).
#[test]
fn certificate_digest_is_stable_across_reruns() {
    let data = random_dataset(30, 40, 500, 99);
    let digest = |seed: u64| match certify_wavefront(&data, 3, seed, 2) {
        Verdict::Certified(cert) => cert.schedule_digest,
        Verdict::Refuted(w) => panic!("refuted: {w}"),
    };
    assert_eq!(digest(5), digest(5));
    // A different shuffle seed schedules differently.
    assert_ne!(digest(5), digest(6), "digest must depend on the schedule");
}

/// End-to-end: the solver's certificate gating. A conflict-free scheme
/// (wavefront) trains in `Sequential` mode with a `Certified` verdict
/// attached to the result — the pipeline consumed a certificate, not an
/// assumption.
#[test]
fn solver_attaches_certificate_and_keeps_sequential_mode() {
    let data = random_dataset(24, 32, 600, 7);
    let test = CooMatrix::new(24, 32);
    let config = SolverConfig {
        epochs: 2,
        ..SolverConfig::new(
            2,
            Scheme::Wavefront {
                workers: 3,
                cols: 8,
            },
        )
    };
    let result = train::<f32>(&data, &test, &config, None);
    assert_eq!(result.exec_mode, ExecMode::Sequential);
    let verdict = result
        .schedule_verdict
        .as_ref()
        .expect("multi-worker sequential scheme must be certified");
    assert!(verdict.is_certified(), "wavefront must certify");
    // An explicit mode override skips the prover (no verdict attached).
    let forced = SolverConfig {
        mode: Some(ExecMode::StaleAdditive),
        ..config
    };
    let result = train::<f32>(&data, &test, &forced, None);
    assert!(result.schedule_verdict.is_none());
}

/// Property: for random `k ∈ 8..=128` in both storage precisions, the
/// kernel-IR-derived bytes-per-update equals the bytes the DES executor
/// actually charges for a real simulated epoch — integer-exactly, with
/// no common code between the two sides except the `SgdUpdateCost`
/// struct under test.
#[test]
fn kir_bytes_match_executor_charges_for_random_k() {
    use cumf_sgd::analyze::kir::{self, traffic::interpret_traffic};
    use cumf_sgd::gpu_sim::{
        simulate_throughput, Precision, RatingAccess, SchedulerModel, SgdUpdateCost,
        ThroughputConfig,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(505);
    for case in 0..20 {
        let k = rng.gen_range(8u32..=128);
        let updates = rng.gen_range(1_000u64..200_000);
        for (elem, precision) in [
            (kir::Dtype::F32, Precision::F32),
            (kir::Dtype::F16, Precision::F16),
        ] {
            let program = kir::lift_sgd_update(k, elem);
            kir::type_check(&program).unwrap();
            let t = interpret_traffic(&program, RatingAccess::Streamed);
            let r = simulate_throughput(&ThroughputConfig {
                workers: rng.gen_range(1u32..32),
                total_bandwidth: 240e9,
                cost: SgdUpdateCost {
                    k,
                    precision,
                    rating_access: RatingAccess::Streamed,
                },
                scheduler: SchedulerModel::BatchHogwild {
                    batch: 256,
                    per_batch_overhead_s: 1e-7,
                },
                total_updates: updates,
            });
            assert_eq!(r.updates, updates, "case {case} k={k}");
            assert_eq!(
                r.bytes_charged,
                updates * t.bytes.eval(k),
                "case {case}: k={k} {} epoch bytes drifted",
                elem.name()
            );
        }
    }
}

/// The cost certificate attached by the solver agrees with the kernel
/// IR's closed form — the same invariant the `cumf analyze --cost`
/// section gates CI on, checked here end-to-end through `train`.
#[test]
fn solver_cost_cert_matches_kir_closed_form() {
    use cumf_sgd::analyze::kir::{self, traffic::interpret_traffic};
    use cumf_sgd::core::F16;
    use cumf_sgd::gpu_sim::RatingAccess;
    let mut rng = ChaCha8Rng::seed_from_u64(506);
    let data = random_dataset(40, 40, 600, 99);
    let test = random_dataset(40, 40, 60, 100);
    for _ in 0..5 {
        let k = rng.gen_range(8u32..=64);
        let config = SolverConfig {
            epochs: 1,
            ..SolverConfig::new(k, Scheme::Serial)
        };
        let r32 = train::<f32>(&data, &test, &config, None);
        let t32 = interpret_traffic(
            &kir::lift_sgd_update(k, kir::Dtype::F32),
            RatingAccess::Streamed,
        );
        assert!(r32.cost_cert.is_certified(), "{}", r32.cost_cert);
        assert_eq!(r32.cost_cert.bytes_per_update, t32.bytes.eval(k));
        assert_eq!(r32.cost_cert.flops_per_update, t32.flops);
        let r16 = train::<F16>(&data, &test, &config, None);
        let t16 = interpret_traffic(
            &kir::lift_sgd_update(k, kir::Dtype::F16),
            RatingAccess::Streamed,
        );
        assert!(r16.cost_cert.is_certified(), "{}", r16.cost_cert);
        assert_eq!(r16.cost_cert.bytes_per_update, t16.bytes.eval(k));
        // Same k, different precision: the certificates must not collide.
        assert_ne!(r32.cost_cert.digest, r16.cost_cert.digest);
    }
}

/// The full analyze campaign — all nine sections, including the
/// cost/coalesce/precision/lint static passes, the deadlock & liveness
/// certifier, and the staleness & asynchrony certifier — passes
/// end-to-end.
#[test]
fn full_campaign_with_static_passes() {
    let report = cumf_sgd::analyze::run_all(7);
    assert!(report.pass(), "{report}");
    let text = report.to_string();
    for needle in [
        "deadlock",
        "staleness",
        "cost",
        "coalesce",
        "precision",
        "lint",
        "certified",
        "witness",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

/// The deadlock section certifies every shipped protocol and refutes
/// every seeded twin; in particular the two-row update path (ascending
/// stripe acquisition by `ordered_stripes`) certifies while its
/// descending twin is refuted with a replayable lock-order cycle.
#[test]
fn deadlock_certifier_proves_shipped_order_and_refutes_twins() {
    use cumf_sgd::analyze::deadlock::{analyze_protocol, protocols, ProtocolOutcome};

    let shipped = protocols::shipped_protocols();
    assert!(shipped.len() >= 6, "expected ≥6 shipped protocols");
    for p in &shipped {
        match analyze_protocol(p) {
            ProtocolOutcome::Certified { order, live } => {
                assert_ne!(order.digest, 0, "{}", p.name);
                assert!(live.chain_s > 0.0, "{}", p.name);
                if p.watchdog.is_some() {
                    let margin = live.watchdog_margin_s.expect("watchdog must be bounded");
                    assert!(margin > 0.0, "{}: watchdog margin {margin}", p.name);
                }
            }
            other => panic!("{} must certify, got {other:?}", p.name),
        }
    }

    let twins = protocols::broken_twins();
    assert!(twins.len() >= 3, "refutation campaign needs ≥3 twins");
    let mut cycles = 0;
    let mut starvations = 0;
    for p in &twins {
        match analyze_protocol(p) {
            ProtocolOutcome::Certified { .. } => panic!("twin {} certified", p.name),
            ProtocolOutcome::Deadlocked(w) => {
                cycles += 1;
                assert!(w.replays, "{}: {w}", p.name);
                assert_eq!(
                    w.schedule.len(),
                    w.cycle.len(),
                    "minimal schedule: one step per cycle thread"
                );
            }
            ProtocolOutcome::Starved { witness, .. } => {
                starvations += 1;
                assert!(witness.timeout_s < witness.grant_by_s, "{witness}");
            }
        }
    }
    assert!(cycles >= 2, "need cycle twins (ABBA, descending, DES)");
    assert!(starvations >= 1, "need the short-watchdog twin");

    // The descending two-row twin specifically cycles lo ↔ hi.
    let desc = twins
        .iter()
        .find(|p| p.name == "twin/two-row-descending")
        .expect("descending two-row twin must be seeded");
    match analyze_protocol(desc) {
        ProtocolOutcome::Deadlocked(w) => {
            assert!(w.cycle.contains(&"stripe.lo".to_string()), "{w}");
            assert!(w.cycle.contains(&"stripe.hi".to_string()), "{w}");
        }
        other => panic!("descending twin must deadlock, got {other:?}"),
    }
}

/// The determinism lint's file census is honest: an independent walk of
/// the scanned crates' `src/` trees finds exactly as many `.rs` files
/// as the lint reports scanning. A silent drop of a crate (or a whole
/// subtree) from the scan would show up here.
#[test]
fn lint_scans_every_source_file_of_the_scanned_crates() {
    fn count_rs(dir: &std::path::Path) -> usize {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .map(|e| {
                let p = e.path();
                if p.is_dir() {
                    count_rs(&p)
                } else {
                    usize::from(p.extension().is_some_and(|x| x == "rs"))
                }
            })
            .sum()
    }
    let crates_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let expected: usize = ["core", "gpu-sim", "des", "bench", "serve"]
        .iter()
        .map(|krate| count_rs(&crates_root.join(krate).join("src")))
        .sum();
    assert!(expected > 20, "independent walk found {expected} files");
    let report = cumf_sgd::analyze::lint::lint_workspace();
    assert_eq!(
        report.files_scanned, expected,
        "lint file census drifted from the source tree"
    );
}
