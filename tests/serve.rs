//! Serving-layer integration tests: the `cumf-serve` request path end
//! to end, through the public API. The guarantees exercised here:
//!
//! * the LRU result cache behaves exactly like a linear-scan oracle
//!   across randomized get/put/version-bump workloads and capacity
//!   boundaries (the `SmallDeque`-vs-`VecDeque` oracle pattern);
//! * two identical closed-loop runs — with and without an injected
//!   shard stall — produce bit-equal latency-histogram digests and
//!   identical shed/degraded counts;
//! * under loss of one factor shard at Zipf s=1.1, the service keeps
//!   answering: availability >= 99% (degraded allowed), zero
//!   deadline-violating successes, bit-deterministic across runs;
//! * the same scenario with the overload protections (admission
//!   controller, deadline finalization, timeouts) disabled returns
//!   late, demonstrating the deadline bound is earned, not incidental;
//! * the blocked top-N scorer is bitwise consistent with the naive
//!   scan at n in {8, 64, 128} for both f32 and binary16 factors.

use cumf_sgd::core::{Element, FactorMatrix, F16};
use cumf_sgd::rng::{ChaCha8Rng, Rng, SeedableRng};
use cumf_sgd::serve::chaos::synth_model;
use cumf_sgd::serve::{
    run_closed_loop, top_n_blocked, top_n_naive, OverloadPolicy, ResultCache, Scored, ServeConfig,
    ServeFault,
};

// ------------------------------------------------------------- LRU oracle

/// Reference model of [`ResultCache`]: a most-recent-first vector with
/// linear scans everywhere. Deliberately obvious, O(capacity) per op.
struct Oracle {
    capacity: usize,
    /// `(user, version, value)`, most recently used first.
    entries: Vec<(u32, u64, Vec<Scored>)>,
}

impl Oracle {
    fn new(capacity: usize) -> Self {
        Oracle {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, user: u32, version: u64) -> Option<Vec<Scored>> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.0 == user && e.1 == version)?;
        let e = self.entries.remove(pos);
        let value = e.2.clone();
        self.entries.insert(0, e);
        Some(value)
    }

    fn get_stale(&self, user: u32) -> Option<(u64, Vec<Scored>)> {
        self.entries
            .iter()
            .filter(|e| e.0 == user)
            .max_by_key(|e| e.1)
            .map(|e| (e.1, e.2.clone()))
    }

    fn put(&mut self, user: u32, version: u64, value: Vec<Scored>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.0 == user && e.1 == version)
        {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (user, version, value));
    }

    fn keys(&self) -> Vec<(u32, u64)> {
        let mut ks: Vec<(u32, u64)> = self.entries.iter().map(|e| (e.0, e.1)).collect();
        ks.sort_unstable();
        ks
    }
}

fn scored(tag: u32) -> Vec<Scored> {
    vec![Scored {
        item: tag,
        score: tag as f32 * 0.5,
    }]
}

#[test]
fn lru_cache_matches_linear_scan_oracle() {
    for &capacity in &[1usize, 2, 3, 7, 16] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED ^ capacity as u64);
        let mut cache = ResultCache::new(capacity);
        let mut oracle = Oracle::new(capacity);
        // `version` only moves forward, like the model version it keys:
        // a bump invalidates every get at the new version until re-put.
        let mut version: u64 = 1;
        let mut tag: u32 = 0;
        for step in 0..4_000u32 {
            let user: u32 = rng.gen_range(0..12u32);
            match rng.gen_range(0..100u32) {
                // Fresh get at the current version.
                0..=44 => {
                    let got = cache.get(user, version).map(<[Scored]>::to_vec);
                    assert_eq!(
                        got,
                        oracle.get(user, version),
                        "get cap={capacity} step={step}"
                    );
                }
                // Get at an older version (post-bump lookups must miss
                // or hit exactly as the oracle says).
                45..=54 => {
                    let v = rng.gen_range(1..=version);
                    let got = cache.get(user, v).map(<[Scored]>::to_vec);
                    assert_eq!(
                        got,
                        oracle.get(user, v),
                        "old get cap={capacity} step={step}"
                    );
                }
                // Stale read (any version, no promotion).
                55..=64 => {
                    let got = cache.get_stale(user).map(|(v, s)| (v, s.to_vec()));
                    assert_eq!(
                        got,
                        oracle.get_stale(user),
                        "stale cap={capacity} step={step}"
                    );
                }
                // Put at the current version.
                65..=94 => {
                    tag += 1;
                    cache.put(user, version, scored(tag));
                    oracle.put(user, version, scored(tag));
                }
                // Version bump: every future fresh get misses until a
                // new put; stale entries age out through the LRU tail.
                _ => version += 1,
            }
            assert_eq!(
                {
                    let mut ks = cache.keys();
                    ks.sort_unstable();
                    ks
                },
                oracle.keys(),
                "key sets diverged cap={capacity} step={step}"
            );
            assert!(cache.len() <= capacity);
        }
        assert!(cache.hits() > 0 || capacity == 0);
        assert!(cache.misses() > 0);
        if capacity <= 3 {
            assert!(cache.evictions() > 0, "small caches must have evicted");
        }
    }
}

// --------------------------------------------------------- determinism

fn stall_fault(model_q0: usize) -> ServeFault {
    ServeFault::ShardStall {
        shard: model_q0,
        replica: 0,
        from_s: 0.010,
        until_s: 0.200,
        factor: 20.0,
    }
}

#[test]
fn identical_runs_are_bit_equal_with_and_without_a_stall() {
    let model = synth_model(42, 2, 2);
    let healthy = ServeConfig {
        requests: 800,
        ..ServeConfig::default()
    };
    let a = run_closed_loop(&model, &healthy);
    let b = run_closed_loop(&model, &healthy);
    assert_eq!(a.digest(), b.digest(), "healthy digests diverged");
    assert_eq!(a.latency.digest(), b.latency.digest());
    assert_eq!(a.recovery.digest(), b.recovery.digest());
    assert_eq!((a.shed, a.degraded()), (b.shed, b.degraded()));

    let stalled = ServeConfig {
        fault: Some(stall_fault(model.q_shard_id(0))),
        ..healthy.clone()
    };
    let c = run_closed_loop(&model, &stalled);
    let d = run_closed_loop(&model, &stalled);
    assert_eq!(c.digest(), d.digest(), "stalled digests diverged");
    assert_eq!(c.latency.digest(), d.latency.digest());
    assert_eq!(c.recovery.digest(), d.recovery.digest());
    assert_eq!((c.shed, c.degraded()), (d.shed, d.degraded()));
    // The stall must actually be in the measurement, not absorbed.
    assert_ne!(a.digest(), c.digest(), "stall left no trace in the digest");
}

// ----------------------------------------------- shard-loss acceptance

fn loss_config(model_q_last: usize) -> ServeConfig {
    ServeConfig {
        requests: 1500,
        zipf_s: 1.1,
        // The loss window outlasts the deadline several times over, so
        // waiting out the fault is never how a request makes it in time.
        fault: Some(ServeFault::ShardLoss {
            shard: model_q_last,
            from_s: 0.020,
            until_s: 0.150,
        }),
        ..ServeConfig::default()
    }
}

#[test]
fn shard_loss_keeps_availability_and_never_returns_late() {
    let model = synth_model(42, 2, 2);
    let cfg = loss_config(model.q_shard_id(1));
    let a = run_closed_loop(&model, &cfg);
    let b = run_closed_loop(&model, &cfg);
    assert_eq!(a.completed, a.issued, "requests went missing");
    assert!(
        a.availability() >= 0.99,
        "availability {} under shard loss",
        a.availability()
    );
    assert_eq!(a.late_success, 0, "deadline-violating successes");
    assert!(a.degraded() > 0, "the loss window must have been felt");
    assert!(a.breaker_opens >= 1, "the breaker never opened");
    // Bit-deterministic across two executions.
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.latency.digest(), b.latency.digest());
    assert_eq!(a.recovery.digest(), b.recovery.digest());
}

#[test]
fn unprotected_same_scenario_violates_the_deadline_bound() {
    let model = synth_model(42, 2, 2);
    let mut cfg = loss_config(model.q_shard_id(1));
    // Disable the admission controller and the rest of the overload
    // lattice (deadline finalization, timeouts, hedging, breakers):
    // requests now wait for the lost shard and return whenever it
    // comes back — demonstrably past the deadline.
    cfg.policy = OverloadPolicy::raw();
    let r = run_closed_loop(&model, &cfg);
    assert!(
        r.late_success > 0,
        "unprotected run should have returned late"
    );
    assert!(
        r.latency.max() > cfg.deadline_s,
        "max latency {:.1}ms never crossed the {:.1}ms deadline",
        r.latency.max() * 1e3,
        cfg.deadline_s * 1e3
    );
}

// -------------------------------------------------- scorer consistency

fn factors<E: Element>(rows: u32, k: u32, seed: u64) -> FactorMatrix<E> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vals: Vec<f32> = (0..rows as usize * k as usize)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    FactorMatrix::from_f32_slice(rows, k, &vals)
}

fn assert_blocked_matches_naive<E: Element>(seed: u64) {
    let items: u32 = 300;
    let k: u32 = 16;
    let p: FactorMatrix<E> = factors(8, k, seed);
    let q: FactorMatrix<E> = factors(items, k, seed ^ 0xABCD);
    for user in 0..p.rows() {
        let row = p.row(user);
        for &n in &[8usize, 64, 128] {
            let naive = top_n_naive(row, &q, 0..items, n);
            for &block in &[1usize, 7, 64, 512] {
                let blocked = top_n_blocked(row, &q, 0..items, n, block);
                // Bitwise equality: same items, same score bits, same
                // order — the blocked scan is a pure reassociation-free
                // partition of the naive one.
                assert_eq!(blocked, naive, "n={n} block={block} user={user}");
            }
        }
    }
}

// --------------------------------------------- slot-path lockset audit

/// With `--features sanitize`, the shard/slot access path of the
/// closed-loop service reports every `Server` slot mutation to the
/// Eraser-style lockset sanitizer. The DES event loop is
/// single-threaded, so every slot location must stay in the sanitizer's
/// thread-exclusive state: zero reports, across a healthy run and a
/// shard-loss run (which exercises the abandon/requeue paths).
#[cfg(feature = "sanitize")]
#[test]
fn slot_access_path_is_race_free_under_the_lockset_sanitizer() {
    use cumf_sgd::core::sanitize;
    let model = synth_model(42, 2, 2);
    sanitize::set_enabled(true);
    let healthy = ServeConfig {
        requests: 600,
        ..ServeConfig::default()
    };
    run_closed_loop(&model, &healthy);
    let lossy = ServeConfig {
        requests: 600,
        fault: Some(ServeFault::ShardLoss {
            shard: model.q_shard_id(1),
            from_s: 0.020,
            until_s: 0.150,
        }),
        ..ServeConfig::default()
    };
    run_closed_loop(&model, &lossy);
    sanitize::set_enabled(false);
    let reports = sanitize::take_reports();
    assert!(
        reports.is_empty(),
        "serve slot path must be race-free: {reports:#?}"
    );
    assert_eq!(sanitize::race_count(), 0);
}

#[test]
fn blocked_scorer_is_bitwise_consistent_with_naive_f32() {
    assert_blocked_matches_naive::<f32>(7);
}

#[test]
fn blocked_scorer_is_bitwise_consistent_with_naive_f16() {
    assert_blocked_matches_naive::<F16>(11);
}
