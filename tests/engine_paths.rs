//! Cross-path contracts of the layered engine: the single-GPU solver, the
//! partitioned multi-GPU path, the biased model, and checkpoint/resume all
//! run through one `EpochPipeline`, so their behaviours must compose and
//! coincide where the layers say they do.

use std::process::Command;

use cumf_sgd::core::engine::{load_checkpoint, save_checkpoint, ResumeState};
use cumf_sgd::core::multi_gpu::{train_partitioned, MultiGpuConfig};
use cumf_sgd::core::solver::{train, train_resumable, CheckpointSpec, Scheme, SolverConfig};
use cumf_sgd::core::{EngineModel, ExecMode, Schedule, Trace, F16};
use cumf_sgd::data::synth::{generate, SynthConfig, SynthDataset};
use cumf_sgd::gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL};
use cumf_sgd::rng::{ChaCha8Rng, SeedableRng};

fn dataset(offset: f32, seed: u64) -> SynthDataset {
    generate(&SynthConfig {
        m: 300,
        n: 200,
        k_true: 4,
        train_samples: 15_000,
        test_samples: 1_500,
        noise_std: 0.1,
        row_skew: 0.4,
        col_skew: 0.4,
        rating_offset: offset,
        seed,
    })
}

fn assert_traces_converge_identically(a: &Trace, b: &Trace) {
    assert_eq!(a.points.len(), b.points.len(), "trace lengths differ");
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.epoch, y.epoch);
        assert_eq!(x.updates, y.updates, "epoch {}", x.epoch);
        assert_eq!(
            x.rmse.to_bits(),
            y.rmse.to_bits(),
            "epoch {}: {} vs {}",
            x.epoch,
            x.rmse,
            y.rmse
        );
    }
}

/// A 1×1 grid on 1 GPU degenerates to the single-GPU solver: same stream,
/// same engine, same model init — the convergence trace must be
/// bit-identical (only the time domain differs).
#[test]
fn one_by_one_grid_matches_single_gpu_solver_bitwise() {
    let d = dataset(1.0, 33);
    let workers = 8u32;
    let batch = 64u32;
    let seed = 7u64;

    let mut mg = MultiGpuConfig::new(6, 1, 1, 1);
    mg.epochs = 8;
    mg.lambda = 0.02;
    mg.schedule = Schedule::paper_default(0.1, 0.1);
    mg.workers_per_gpu = workers;
    mg.batch = batch;
    mg.seed = seed;
    let part = train_partitioned::<f32>(&d.train, &d.test, &mg, &TITAN_X_MAXWELL, &PCIE3_X16);

    let solo = train::<f32>(
        &d.train,
        &d.test,
        &SolverConfig {
            k: 6,
            lambda: 0.02,
            schedule: Schedule::paper_default(0.1, 0.1),
            epochs: 8,
            scheme: Scheme::BatchHogwild { workers, batch },
            seed,
            mode: Some(ExecMode::StaleAdditive),
            divergence_ceiling: 1e3,
        },
        None,
    );

    assert_traces_converge_identically(&part.trace, &solo.trace);
    assert_eq!(part.p, solo.p, "P factors must be bit-identical");
    assert_eq!(part.q, solo.q, "Q factors must be bit-identical");
}

/// Biased + partitioned — the combination the engine refactor unlocked —
/// must beat the unbiased partitioned run on offset-heavy data.
#[test]
fn biased_partitioned_beats_unbiased_on_offset_heavy_data() {
    let d = dataset(3.5, 91);
    let mut cfg = MultiGpuConfig::new(6, 4, 4, 2);
    cfg.epochs = 3;
    cfg.lambda = 0.02;
    cfg.schedule = Schedule::NomadDecay {
        alpha: 0.1,
        beta: 0.1,
    };
    cfg.workers_per_gpu = 8;
    cfg.batch = 32;

    let plain = train_partitioned::<f32>(&d.train, &d.test, &cfg, &TITAN_X_MAXWELL, &PCIE3_X16);
    let mut biased_cfg = cfg.clone();
    biased_cfg.bias = true;
    let biased =
        train_partitioned::<f32>(&d.train, &d.test, &biased_cfg, &TITAN_X_MAXWELL, &PCIE3_X16);

    assert!(!biased.diverged);
    assert!(biased.bias.is_some());
    let b = biased.trace.final_rmse().unwrap();
    let p = plain.trace.final_rmse().unwrap();
    assert!(
        b < p,
        "bias terms should absorb the 3.5 offset in early epochs: biased {b} vs plain {p}"
    );
}

/// FP16 storage + the real-thread Hogwild! engine — the other previously
/// impossible combination — converges like the f32 run.
#[test]
fn f16_threaded_hogwild_converges() {
    let d = dataset(1.0, 33);
    let mut cfg = SolverConfig::new(
        6,
        Scheme::BatchHogwild {
            workers: 4,
            batch: 64,
        },
    );
    cfg.epochs = 12;
    cfg.lambda = 0.02;
    cfg.schedule = Schedule::paper_default(0.1, 0.1);
    cfg.mode = Some(ExecMode::Threaded);
    let r = train::<F16>(&d.train, &d.test, &cfg, None);
    assert!(!r.diverged);
    let rmse = r.trace.final_rmse().unwrap();
    assert!(rmse < 0.25, "f16 + threaded Hogwild! rmse {rmse}");
    assert_eq!(r.total_updates(), 15_000 * 12);
}

/// Interrupting at an arbitrary epoch and resuming reproduces the
/// uninterrupted run exactly, including the learning-rate state of an
/// adaptive (BoldDriver) schedule.
#[test]
fn resume_with_adaptive_schedule_is_bit_exact() {
    let d = dataset(1.0, 33);
    let mut cfg = SolverConfig::new(
        6,
        Scheme::BatchHogwild {
            workers: 8,
            batch: 64,
        },
    );
    cfg.epochs = 9;
    cfg.lambda = 0.02;
    cfg.schedule = Schedule::BoldDriver {
        initial: 0.05,
        up: 1.05,
        down: 0.5,
    };
    let full = train::<f32>(&d.train, &d.test, &cfg, None);

    let dir = std::env::temp_dir().join("cumf_engine_paths_resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bold.cmfk");
    let _ = std::fs::remove_file(&path);

    let spec = CheckpointSpec {
        path: path.clone(),
        every: 2,
        resume: true,
    };
    let mut first = cfg.clone();
    first.epochs = 4; // stops right after a checkpointed epoch
    let _ = train_resumable::<f32>(&d.train, &d.test, &first, None, Some(&spec)).unwrap();
    let resumed = train_resumable::<f32>(&d.train, &d.test, &cfg, None, Some(&spec)).unwrap();

    assert_traces_converge_identically(&resumed.trace, &full.trace);
    assert_eq!(resumed.p, full.p);
    assert_eq!(resumed.q, full.q);
    let _ = std::fs::remove_file(&path);
}

/// Checkpoints round-trip the full engine model — including bias terms —
/// and reject files from the (different) model format.
#[test]
fn checkpoint_round_trips_biased_model() {
    let d = dataset(3.5, 91);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let model = EngineModel::<f32>::init_biased(&d.train, 4, &mut rng);
    let state = ResumeState {
        next_epoch: 3,
        updates: 123,
        sim_seconds: 1.5,
        trace: Trace::default(),
        lr: None,
    };
    let dir = std::env::temp_dir().join("cumf_engine_paths_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("biased.cmfk");
    save_checkpoint(&path, &model, &state).unwrap();
    let (loaded, loaded_state) = load_checkpoint::<f32>(&path).unwrap();
    assert_eq!(loaded, model);
    assert_eq!(loaded_state, state);
    let _ = std::fs::remove_file(&path);
}

/// End-to-end CLI: `cumf train --checkpoint ... --resume` continues an
/// interrupted run and produces the same model file as one uninterrupted
/// invocation.
#[test]
fn cli_checkpoint_resume_round_trip() {
    let dir = std::env::temp_dir().join("cumf_cli_resume_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let train_bin = dir.join("train.bin");
    let test_bin = dir.join("test.bin");
    let d = dataset(1.0, 33);
    cumf_sgd::data::io::write_binary_file(&train_bin, &d.train).unwrap();
    cumf_sgd::data::io::write_binary_file(&test_bin, &d.test).unwrap();

    let cumf = env!("CARGO_BIN_EXE_cumf");
    let run = |extra: &[&str]| {
        let mut cmd = Command::new(cumf);
        cmd.arg("train")
            .arg("--data")
            .arg(&train_bin)
            .arg("--test")
            .arg(&test_bin)
            .args([
                "--k",
                "6",
                "--epochs",
                "10",
                "--workers",
                "8",
                "--batch",
                "64",
            ])
            .args(extra);
        let out = cmd.output().expect("cumf binary runs");
        assert!(
            out.status.success(),
            "cumf train failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };

    let model_full = dir.join("full.cmfm");
    run(&["--save", model_full.to_str().unwrap()]);

    let ckpt = dir.join("run.cmfk");
    let model_resumed = dir.join("resumed.cmfm");
    // Interrupt: run only 4 of 10 epochs, checkpointing every 2.
    let mut cmd = Command::new(cumf);
    cmd.arg("train")
        .arg("--data")
        .arg(&train_bin)
        .arg("--test")
        .arg(&test_bin)
        .args([
            "--k",
            "6",
            "--epochs",
            "4",
            "--workers",
            "8",
            "--batch",
            "64",
        ])
        .args([
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "2",
        ])
        .args(["--save", model_resumed.to_str().unwrap()]);
    assert!(cmd.output().unwrap().status.success());
    // Resume to the full 10 epochs.
    run(&[
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "2",
        "--resume",
        "--save",
        model_resumed.to_str().unwrap(),
    ]);

    let full_bytes = std::fs::read(&model_full).unwrap();
    let resumed_bytes = std::fs::read(&model_resumed).unwrap();
    assert_eq!(
        full_bytes, resumed_bytes,
        "resumed model file must be byte-identical to the uninterrupted run's"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
