//! Chaos integration tests: the fault-injection + self-healing supervisor
//! stack, end to end. The core guarantees exercised here:
//!
//! * retry/backoff is deterministic, jittered, and bounded — a permanently
//!   dead link surfaces a typed error instead of spinning;
//! * recovery is *exact*: a run that retried through transfer corruption,
//!   or rolled back through a NaN storm / learning-rate spike, finishes
//!   bit-identical to the fault-free run (same trace, same factors);
//! * rollback restores the BoldDriver learning-rate state along with the
//!   factors, so the post-rollback trajectory is the checkpoint-resumed
//!   trajectory;
//! * device loss degrades gracefully onto the surviving simulated GPUs;
//! * the whole recovery event log is a deterministic function of
//!   (plan, seed).

use cumf_sgd::core::multi_gpu::MultiGpuConfig;
use cumf_sgd::core::{
    FaultKind, FaultPlan, RecoveryKind, RetryPolicy, Schedule, SupervisorConfig, TrainError,
    TrainSupervisor,
};
use cumf_sgd::data::synth::{generate, SynthConfig, SynthDataset};
use cumf_sgd::gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL};

fn dataset() -> SynthDataset {
    generate(&SynthConfig {
        m: 120,
        n: 100,
        k_true: 3,
        train_samples: 6_000,
        test_samples: 600,
        ..SynthConfig::default()
    })
}

fn config(schedule: Schedule) -> MultiGpuConfig {
    let mut cfg = MultiGpuConfig::new(5, 4, 4, 2);
    cfg.epochs = 12;
    cfg.workers_per_gpu = 4;
    cfg.batch = 32;
    cfg.lambda = 0.02;
    cfg.schedule = schedule;
    cfg.seed = 17;
    cfg
}

fn nomad() -> Schedule {
    Schedule::paper_default(0.1, 0.1)
}

fn bold() -> Schedule {
    Schedule::BoldDriver {
        initial: 0.08,
        up: 1.05,
        down: 0.5,
    }
}

fn run(
    d: &SynthDataset,
    cfg: &MultiGpuConfig,
    supervision: SupervisorConfig,
    plan: FaultPlan,
) -> Result<cumf_sgd::core::SupervisedResult<f32>, TrainError> {
    TrainSupervisor::new(supervision, plan).train_partitioned::<f32>(
        &d.train,
        &d.test,
        cfg,
        &TITAN_X_MAXWELL,
        &PCIE3_X16,
    )
}

#[test]
fn retry_delays_are_deterministic_jittered_and_bounded() {
    let p = RetryPolicy {
        max_attempts: 6,
        base_delay_s: 0.01,
        multiplier: 2.0,
        max_delay_s: 0.2,
        jitter: 0.25,
        seed: 7,
    };
    let a = p.delays();
    // Bounded: max_attempts attempts means max_attempts - 1 waits.
    assert_eq!(a.len(), 5);
    // Deterministic: the full sequence is a pure function of the policy,
    // and each delay is indexable out of order.
    assert_eq!(a, p.delays());
    for (i, &d) in a.iter().enumerate() {
        assert_eq!(d, p.delay(i as u32), "delay({i}) must be order-independent");
    }
    // Every delay sits inside the jitter envelope of the capped
    // exponential: nominal_i = min(base * mult^i, max), ±25%.
    let mut jittered = false;
    for (i, &d) in a.iter().enumerate() {
        let nominal = (0.01 * 2f64.powi(i as i32)).min(0.2);
        assert!(
            d >= nominal * 0.75 - 1e-12 && d <= nominal * 1.25 + 1e-12,
            "delay {i} = {d} outside jitter envelope of {nominal}"
        );
        if (d - nominal).abs() > 1e-6 {
            jittered = true;
        }
    }
    assert!(jittered, "jitter must actually perturb the sequence");
    // A different seed reshuffles the jitter.
    let q = RetryPolicy { seed: 8, ..p };
    assert_ne!(a, q.delays());
    // Zero jitter collapses to the exact capped exponential.
    let exact = RetryPolicy { jitter: 0.0, ..p };
    assert_eq!(exact.delays(), vec![0.01, 0.02, 0.04, 0.08, 0.16]);
}

#[test]
fn permanently_dead_link_is_a_typed_error_not_a_spin() {
    let d = dataset();
    let cfg = config(nomad());
    let supervision = SupervisorConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        ..SupervisorConfig::default()
    };
    // A corruption that never delivers clean within the attempt budget.
    let plan = FaultPlan::new().at_epoch(
        2,
        FaultKind::TransferCorruption {
            flips: 4,
            clean_after: 99,
        },
    );
    match run(&d, &cfg, supervision, plan) {
        Err(TrainError::TransferFailed { epoch, attempts }) => {
            assert_eq!(epoch, 2);
            assert_eq!(attempts, 3, "must stop at the attempt budget");
        }
        Err(other) => panic!("expected TransferFailed, got {other}"),
        Ok(_) => panic!("dead link must not complete"),
    }

    // Same story for a permanent stall: every retry burns a watchdog
    // timeout, then the supervisor gives up with the same typed error.
    let plan = FaultPlan::new().at_epoch(
        3,
        FaultKind::TransferStall {
            stall_s: 5.0,
            permanent: true,
        },
    );
    match run(&d, &cfg, supervision, plan) {
        Err(TrainError::TransferFailed { epoch, attempts }) => {
            assert_eq!(epoch, 3);
            assert_eq!(attempts, 3);
        }
        Err(other) => panic!("expected TransferFailed, got {other}"),
        Ok(_) => panic!("permanent stall must not complete"),
    }
}

#[test]
fn corruption_retry_recovers_bit_exactly() {
    let d = dataset();
    let cfg = config(nomad());
    let baseline = run(&d, &cfg, SupervisorConfig::default(), FaultPlan::new()).unwrap();
    let plan = FaultPlan::new().at_epoch(
        2,
        FaultKind::TransferCorruption {
            flips: 4,
            clean_after: 2,
        },
    );
    let faulted = run(&d, &cfg, SupervisorConfig::default(), plan).unwrap();
    assert!(faulted.log.count(RecoveryKind::Retried) >= 1);
    assert_eq!(faulted.log.count(RecoveryKind::Recovered), 1);
    assert_eq!(faulted.rollbacks, 0);
    // The clean delivery restored the exact pre-corruption bytes, so the
    // recovered numerics are the fault-free numerics, bit for bit. (The
    // simulated timeline is *not* equal: recovery honestly charges the
    // backoff delays, so `seconds` drifts from the faulted epoch on.)
    assert_eq!(faulted.trace.points.len(), baseline.trace.points.len());
    for (f, b) in faulted.trace.points.iter().zip(&baseline.trace.points) {
        assert_eq!(f.epoch, b.epoch);
        assert_eq!(f.updates, b.updates);
        assert_eq!(f.rmse.to_bits(), b.rmse.to_bits());
    }
    let faulted_s: f64 = faulted.trace.points.last().unwrap().seconds;
    let baseline_s: f64 = baseline.trace.points.last().unwrap().seconds;
    assert!(faulted_s > baseline_s, "backoff must cost simulated time");
    assert_eq!(faulted.p, baseline.p);
    assert_eq!(faulted.q, baseline.q);
}

#[test]
fn nan_storm_rolls_back_without_leaking_non_finite() {
    let d = dataset();
    let cfg = config(nomad());
    let baseline = run(&d, &cfg, SupervisorConfig::default(), FaultPlan::new()).unwrap();
    let plan = FaultPlan::new().at_epoch(3, FaultKind::NanStorm { rows: 3 });
    let r = run(&d, &cfg, SupervisorConfig::default(), plan).unwrap();
    assert!(r.rollbacks >= 1, "a NaN storm must force a rollback");
    assert!(r.log.count(RecoveryKind::RolledBack) >= 1);
    assert_eq!(r.p.non_finite_count(), 0, "no NaN may survive recovery");
    assert_eq!(r.q.non_finite_count(), 0);
    // Rollback restored the snapshot and the storm is one-shot, so the
    // replay *is* the fault-free trajectory.
    assert_eq!(r.trace.points, baseline.trace.points);
    assert_eq!(r.p, baseline.p);
}

/// Satellite regression for DivergenceGuard rollback: the learning-rate
/// spike diverges a BoldDriver run; rollback must restore the adaptive LR
/// state (current rate + last observed loss) together with the factors. If
/// it restored only the factors, the post-rollback gammas would differ and
/// the trace would split from the fault-free run.
#[test]
fn lr_spike_rollback_restores_bold_driver_state() {
    let d = dataset();
    let cfg = config(bold());
    let baseline = run(&d, &cfg, SupervisorConfig::default(), FaultPlan::new()).unwrap();
    let plan = FaultPlan::new().at_epoch(4, FaultKind::LrSpike { factor: 500.0 });
    let r = run(&d, &cfg, SupervisorConfig::default(), plan).unwrap();
    assert!(
        r.rollbacks >= 1,
        "a 500x LR spike must diverge and roll back"
    );
    // Diverge → rollback → converge reproduces the checkpoint-resumed
    // (i.e. uninterrupted) trajectory exactly.
    assert_eq!(r.trace.points, baseline.trace.points);
    assert_eq!(r.p, baseline.p);
    assert_eq!(r.q, baseline.q);
}

#[test]
fn device_loss_completes_on_surviving_gpus() {
    let d = dataset();
    let cfg = config(nomad());
    let baseline = run(&d, &cfg, SupervisorConfig::default(), FaultPlan::new()).unwrap();
    let plan = FaultPlan::new().at_epoch(3, FaultKind::DeviceLoss { gpu: 1 });
    let r = run(&d, &cfg, SupervisorConfig::default(), plan).unwrap();
    assert_eq!(r.gpus_used, 1, "the run must finish on the survivor");
    assert_eq!(r.log.count(RecoveryKind::Degraded), 1);
    let base = baseline.trace.final_rmse().unwrap();
    let got = r.trace.final_rmse().unwrap();
    assert!(got.is_finite());
    assert!(
        ((got - base) / base).abs() <= 0.02,
        "degraded run must stay within 2% of baseline: {got} vs {base}"
    );
}

#[test]
fn recovery_log_is_deterministic() {
    let d = dataset();
    let cfg = config(nomad());
    let plan = || {
        FaultPlan::new()
            .at_epoch(
                2,
                FaultKind::TransferCorruption {
                    flips: 4,
                    clean_after: 2,
                },
            )
            .at_epoch(4, FaultKind::NanStorm { rows: 2 })
    };
    let a = run(&d, &cfg, SupervisorConfig::default(), plan()).unwrap();
    let b = run(&d, &cfg, SupervisorConfig::default(), plan()).unwrap();
    assert_eq!(a.log.digest(), b.log.digest());
    let lines = |r: &cumf_sgd::core::SupervisedResult<f32>| {
        r.log
            .events
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&a), lines(&b), "event-for-event identical logs");
    assert!(!a.log.events.is_empty());
}
