//! Performance-model consistency across crates: the analytic roofline,
//! the DES executor, the pipeline recurrence, and the paper's published
//! numbers must all agree where they overlap.

use cumf_sgd::des::{Block, Ctx, Process, SimTime, Simulation};
use cumf_sgd::gpu_sim::pipeline::{overlapped, serial, BlockJob};
use cumf_sgd::gpu_sim::{
    simulate_throughput, SchedulerModel, SgdUpdateCost, ThroughputConfig, NVLINK, P100_PASCAL,
    PCIE3_X16, TITAN_X_MAXWELL,
};

#[test]
fn des_executor_matches_analytic_roofline() {
    // With no scheduling overhead, the DES must land exactly on
    // bandwidth / bytes-per-update.
    let cost = SgdUpdateCost::cumf(128);
    for workers in [64u32, 256, 768] {
        let bw = TITAN_X_MAXWELL.effective_bw(workers);
        let res = simulate_throughput(&ThroughputConfig {
            workers,
            total_bandwidth: bw,
            cost,
            scheduler: SchedulerModel::BatchHogwild {
                batch: 256,
                per_batch_overhead_s: 0.0,
            },
            total_updates: 2_000_000,
        });
        let roofline = cost.updates_per_sec(bw);
        let err = (res.updates_per_sec - roofline).abs() / roofline;
        assert!(
            err < 0.01,
            "workers={workers}: DES {:.3e} vs roofline {roofline:.3e}",
            res.updates_per_sec
        );
    }
}

#[test]
fn paper_table5_reproduced_from_first_principles() {
    // cuMF_SGD-M on Netflix: 267 M updates/s (Table 5). Our chain:
    // occupancy curve -> bandwidth -> bytes/update -> rate.
    let cost = SgdUpdateCost::cumf(128);
    let m = cost.updates_per_sec(TITAN_X_MAXWELL.effective_bw(768));
    assert!((m - 267e6).abs() / 267e6 < 0.05, "Maxwell {m:.3e}");
    let p = cost.updates_per_sec(P100_PASCAL.effective_bw(1792));
    assert!(p > 2.0 * m, "Pascal {p:.3e} should be >2X Maxwell");
}

#[test]
fn pipeline_recurrence_agrees_with_des_flowshop() {
    // Cross-validate the closed-form 3-stage flow shop against an explicit
    // DES with three serialised resources.
    let jobs: Vec<BlockJob> = (0..12)
        .map(|i| BlockJob {
            h2d_bytes: 1e9 + 2e8 * (i % 3) as f64,
            compute_bytes: 60e9 + 10e9 * (i % 4) as f64,
            d2h_bytes: 3e8,
        })
        .collect();
    let gpu = &TITAN_X_MAXWELL;
    let link = &PCIE3_X16;
    let analytic = overlapped(&jobs, gpu, link, 768);

    // DES version: a pipeline process per job stage via three FCFS servers.
    struct Job {
        stage: usize,
        times: [SimTime; 3],
        servers: [cumf_sgd::des::ServerId; 3],
    }
    impl Process for Job {
        fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
            if self.stage == 3 {
                return Block::Done;
            }
            let s = self.stage;
            self.stage += 1;
            Block::Service {
                server: self.servers[s],
                hold: self.times[s],
            }
        }
    }
    let mut sim = Simulation::new();
    let h2d = sim.add_server("h2d", 1);
    let comp = sim.add_server("compute", 1);
    let d2h = sim.add_server("d2h", 1);
    let bw = gpu.effective_bw(768);
    for job in &jobs {
        sim.spawn(Box::new(Job {
            stage: 0,
            times: [
                SimTime::from_secs(link.transfer_time(job.h2d_bytes)),
                SimTime::from_secs(gpu.launch_overhead_s + job.compute_bytes / bw),
                SimTime::from_secs(link.transfer_time(job.d2h_bytes)),
            ],
            servers: [h2d, comp, d2h],
        }));
    }
    let report = sim.run(None);
    let des_makespan = report.end_time.as_secs();
    // NOTE: the flow-shop recurrence assumes FIFO job order through every
    // stage, which the FIFO DES reproduces exactly.
    assert!(
        (des_makespan - analytic.makespan).abs() / analytic.makespan < 1e-9,
        "DES {des_makespan} vs recurrence {}",
        analytic.makespan
    );
}

#[test]
fn overlap_never_loses_and_bounds_hold() {
    let jobs: Vec<BlockJob> = (0..20)
        .map(|i| BlockJob {
            h2d_bytes: 5e8 * (1 + i % 5) as f64,
            compute_bytes: 30e9,
            d2h_bytes: 2e8,
        })
        .collect();
    for (gpu, link) in [(&TITAN_X_MAXWELL, &PCIE3_X16), (&P100_PASCAL, &NVLINK)] {
        let ov = overlapped(&jobs, gpu, link, gpu.max_workers());
        let se = serial(&jobs, gpu, link, gpu.max_workers());
        assert!(ov.makespan <= se.makespan + 1e-12);
        // Lower bounds: total compute, total H2D.
        assert!(ov.makespan >= ov.compute_time - 1e-9);
        let h2d_total: f64 = jobs.iter().map(|j| link.transfer_time(j.h2d_bytes)).sum();
        assert!(ov.makespan >= h2d_total - 1e-9);
        // Upper bound: the serial schedule.
        assert!(se.makespan <= ov.compute_time + ov.transfer_time + 1e-9);
    }
}

#[test]
fn scheduler_contention_only_slows_things_down() {
    let cost = SgdUpdateCost::cumf(128);
    let bw = TITAN_X_MAXWELL.effective_bw(512);
    let free = simulate_throughput(&ThroughputConfig {
        workers: 512,
        total_bandwidth: bw,
        cost,
        scheduler: SchedulerModel::BatchHogwild {
            batch: 256,
            per_batch_overhead_s: 0.0,
        },
        total_updates: 1_000_000,
    });
    for scheduler in [
        SchedulerModel::BatchHogwild {
            batch: 256,
            per_batch_overhead_s: 1e-6,
        },
        SchedulerModel::RowColScan {
            a: 100,
            per_entry_s: 0.6e-6,
        },
        SchedulerModel::GlobalTable {
            a: 100,
            per_entry_s: 0.6e-6,
        },
    ] {
        let res = simulate_throughput(&ThroughputConfig {
            workers: 512,
            total_bandwidth: bw,
            cost,
            scheduler,
            total_updates: 1_000_000,
        });
        assert!(
            res.updates_per_sec <= free.updates_per_sec * 1.0001,
            "{scheduler:?} cannot beat the overhead-free run"
        );
    }
}

#[test]
fn eq7_consistency_between_metrics_and_executor() {
    let cost = SgdUpdateCost::cumf(64);
    let res = simulate_throughput(&ThroughputConfig {
        workers: 128,
        total_bandwidth: 100e9,
        cost,
        scheduler: SchedulerModel::BatchHogwild {
            batch: 128,
            per_batch_overhead_s: 0.0,
        },
        total_updates: 500_000,
    });
    let eq7 = cumf_sgd::core::updates_per_sec(1, 500_000, res.elapsed.as_secs());
    assert!((eq7 - res.updates_per_sec).abs() / eq7 < 1e-12);
}

/// Regression (k = 31): FP16 byte accounting must stay consistent for
/// odd k across every layer that splits bytes into rating + feature
/// terms — `SgdUpdateCost`, the storage accounting in `FactorMatrix`,
/// and the roofline's halved-traffic path. Odd k exposes any
/// divide-before-multiply truncation (31·2 = 62 B is not a multiple
/// of 4).
#[test]
fn fp16_byte_accounting_consistent_for_odd_k() {
    use cumf_sgd::core::{FactorMatrix, F16};
    use cumf_sgd::gpu_sim::{Precision, RatingAccess};
    let k = 31u32;
    let f32c = SgdUpdateCost::cpu_f32(k);
    let f16c = SgdUpdateCost {
        k,
        precision: Precision::F16,
        rating_access: RatingAccess::Streamed,
    };
    // Feature traffic halves exactly; the 12-byte rating term does not.
    assert_eq!(f16c.feature_bytes() * 2, f32c.feature_bytes());
    assert_eq!(f16c.bytes(), 12 + 4 * 31 * 2);
    // Storage accounting agrees with the cost model's per-element width.
    let rows = 7u32;
    let m16: FactorMatrix<F16> = FactorMatrix::zeros(rows, k);
    let m32: FactorMatrix<f32> = FactorMatrix::zeros(rows, k);
    assert_eq!(m16.storage_bytes() * 2, m32.storage_bytes());
    assert_eq!(
        m16.storage_bytes(),
        rows as usize * k as usize * 2,
        "odd-k rows must not round storage"
    );
    // Roofline speedup equals the exact byte ratio (memory-bound).
    let roofline = cumf_sgd::gpu_sim::Roofline::for_gpu(&TITAN_X_MAXWELL);
    let ratio = roofline.updates_per_sec(&f16c) / roofline.updates_per_sec(&f32c);
    assert!((ratio - f32c.bytes() as f64 / f16c.bytes() as f64).abs() < 1e-12);
}
