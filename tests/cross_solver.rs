//! Cross-solver consistency: every system in the workspace — the cuMF_SGD
//! schemes, LIBMF, NOMAD, BIDMach, ALS, and the partitioned multi-GPU
//! path — must solve the same planted problem to comparable quality.

use cumf_sgd::baselines::{
    train_als, train_bidmach, train_libmf, train_nomad, AlsConfig, BidmachConfig, LibmfConfig,
    NomadConfig,
};
use cumf_sgd::core::multi_gpu::{train_partitioned, MultiGpuConfig};
use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::{Schedule, F16};
use cumf_sgd::data::synth::{generate, SynthConfig, SynthDataset};
use cumf_sgd::gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL, XEON_E5_2670X2};

fn dataset() -> SynthDataset {
    generate(&SynthConfig {
        m: 500,
        n: 400,
        k_true: 4,
        train_samples: 30_000,
        test_samples: 3_000,
        noise_std: 0.1,
        row_skew: 0.5,
        col_skew: 0.5,
        rating_offset: 1.5,
        seed: 2024,
    })
}

const QUALITY: f64 = 0.22; // all solvers should get below this (floor 0.1)

fn sgd_config(scheme: Scheme, epochs: u32) -> SolverConfig {
    SolverConfig {
        k: 6,
        lambda: 0.02,
        schedule: Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        },
        epochs,
        scheme,
        seed: 5,
        mode: None,
        divergence_ceiling: 1e3,
    }
}

#[test]
fn all_sgd_schemes_reach_quality() {
    let d = dataset();
    for scheme in [
        Scheme::Serial,
        Scheme::Hogwild { workers: 8 },
        Scheme::BatchHogwild {
            workers: 8,
            batch: 128,
        },
        Scheme::Wavefront {
            workers: 8,
            cols: 20,
        },
        Scheme::LibmfTable { workers: 8, a: 20 },
    ] {
        let r = train::<f32>(&d.train, &d.test, &sgd_config(scheme, 20), None);
        assert!(!r.diverged, "{} diverged", scheme.name());
        let rmse = r.trace.final_rmse().unwrap();
        assert!(rmse < QUALITY, "{}: rmse {rmse}", scheme.name());
    }
}

#[test]
fn half_precision_matches_single_precision() {
    let d = dataset();
    let cfg = sgd_config(
        Scheme::BatchHogwild {
            workers: 8,
            batch: 128,
        },
        20,
    );
    let f32r = train::<f32>(&d.train, &d.test, &cfg, None);
    let f16r = train::<F16>(&d.train, &d.test, &cfg, None);
    let a = f32r.trace.final_rmse().unwrap();
    let b = f16r.trace.final_rmse().unwrap();
    assert!(
        (a - b).abs() < 0.02,
        "§4's no-accuracy-loss claim: f32 {a} vs f16 {b}"
    );
}

#[test]
fn baselines_reach_quality() {
    let d = dataset();

    let mut libmf_cfg = LibmfConfig::new(6, 8, 20);
    libmf_cfg.lambda = 0.02;
    libmf_cfg.epochs = 25;
    let libmf = train_libmf(&d.train, &d.test, &libmf_cfg, XEON_E5_2670X2);
    assert!(
        libmf.trace().final_rmse().unwrap() < QUALITY,
        "libmf {}",
        libmf.trace().final_rmse().unwrap()
    );

    let mut nomad_cfg = NomadConfig::new(6, 4);
    nomad_cfg.lambda = 0.02;
    nomad_cfg.schedule = Schedule::NomadDecay {
        alpha: 0.1,
        beta: 0.1,
    };
    nomad_cfg.epochs = 25;
    let nomad = train_nomad(&d.train, &d.test, &nomad_cfg, None);
    assert!(
        nomad.trace.final_rmse().unwrap() < QUALITY,
        "nomad {}",
        nomad.trace.final_rmse().unwrap()
    );

    let mut bid_cfg = BidmachConfig::new(6);
    bid_cfg.epochs = 40;
    let bid = train_bidmach(&d.train, &d.test, &bid_cfg, None);
    assert!(
        bid.trace.final_rmse().unwrap() < QUALITY * 1.3,
        "bidmach {}",
        bid.trace.final_rmse().unwrap()
    );

    let als = train_als(
        &d.train,
        &d.test,
        &AlsConfig {
            lambda: 0.01,
            epochs: 10,
            ..AlsConfig::new(6)
        },
        None,
    );
    assert!(
        als.trace.final_rmse().unwrap() < QUALITY,
        "als {}",
        als.trace.final_rmse().unwrap()
    );
}

#[test]
fn partitioned_path_matches_flat_path() {
    let d = dataset();
    let flat = train::<f32>(
        &d.train,
        &d.test,
        &sgd_config(
            Scheme::BatchHogwild {
                workers: 8,
                batch: 128,
            },
            12,
        ),
        None,
    );
    let mut cfg = MultiGpuConfig::new(6, 4, 4, 1);
    cfg.workers_per_gpu = 8;
    cfg.batch = 128;
    cfg.epochs = 12;
    cfg.lambda = 0.02;
    cfg.schedule = Schedule::NomadDecay {
        alpha: 0.1,
        beta: 0.1,
    };
    let part = train_partitioned::<f32>(&d.train, &d.test, &cfg, &TITAN_X_MAXWELL, &PCIE3_X16);
    let a = flat.trace.final_rmse().unwrap();
    let b = part.trace.final_rmse().unwrap();
    assert!(
        (a - b).abs() < 0.06,
        "flat {a} vs partitioned {b} should agree"
    );
}

#[test]
fn als_needs_fewest_epochs_sgd_cheapest_epochs() {
    // §7.4's trade-off, verified end to end: ALS reaches quality in fewer
    // epochs; SGD does ~k times less work per epoch.
    let d = dataset();
    let als = train_als(
        &d.train,
        &d.test,
        &AlsConfig {
            lambda: 0.01,
            epochs: 20,
            ..AlsConfig::new(6)
        },
        None,
    );
    let sgd = train::<f32>(&d.train, &d.test, &sgd_config(Scheme::Serial, 30), None);
    let als_epochs = als
        .trace
        .points
        .iter()
        .find(|p| p.rmse < QUALITY)
        .map(|p| p.epoch)
        .expect("als converges");
    let sgd_epochs = sgd
        .trace
        .points
        .iter()
        .find(|p| p.rmse < QUALITY)
        .map(|p| p.epoch)
        .expect("sgd converges");
    assert!(
        als_epochs <= sgd_epochs,
        "ALS epochs {als_epochs} vs SGD epochs {sgd_epochs}"
    );
}
