//! Property-style tests on cross-crate invariants.
//!
//! Formerly written with `proptest`; rewritten as deterministic seeded
//! sweeps so the workspace builds offline. Each test draws its cases
//! from a fixed-seed [`cumf_rng::ChaCha8Rng`], which keeps the failure
//! cases reproducible (the seed plus the iteration index identifies the
//! input exactly).

use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

use cumf_sgd::core::half::{F16, F16_MAX_RELATIVE_ERROR};
use cumf_sgd::core::kernel::{dot, dot_scalar, sgd_delta, sgd_update_reference};
use cumf_sgd::core::partition::Grid;
use cumf_sgd::core::sched::{drain_epoch, BatchHogwildStream, LibmfTableStream, WavefrontStream};
use cumf_sgd::data::synth::{zipf_weights, AliasTable};
use cumf_sgd::data::CooMatrix;
use cumf_sgd::des::SimTime;
use cumf_sgd::gpu_sim::{Precision, RatingAccess, SgdUpdateCost};

/// A small random COO matrix with at least one sample.
fn random_coo(rng: &mut ChaCha8Rng) -> CooMatrix {
    let m = rng.gen_range(2u32..40);
    let n = rng.gen_range(2u32..40);
    let nnz = rng.gen_range(1usize..300);
    let mut coo = CooMatrix::new(m, n);
    for _ in 0..nnz {
        let u = rng.gen_range(0..m);
        let v = rng.gen_range(0..n);
        let r = rng.gen_range(-5.0f32..5.0);
        coo.push(u, v, r);
    }
    coo
}

/// f16 round trips stay within half an ulp for normal-range values.
#[test]
fn f16_round_trip_error_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    for _ in 0..2000 {
        let x = rng.gen_range(-60000.0f32..60000.0);
        let rt = F16::from_f32(x).to_f32();
        if x.abs() >= 6.2e-5 {
            let rel = ((rt - x) / x).abs();
            assert!(rel <= F16_MAX_RELATIVE_ERROR, "x={x} rt={rt} rel={rel}");
        } else {
            // Subnormal range: absolute error bounded by one subnormal ulp.
            assert!((rt - x).abs() <= 2.0f32.powi(-24));
        }
    }
}

/// f16 conversion is monotone: a <= b implies f16(a) <= f16(b).
#[test]
fn f16_conversion_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    for _ in 0..2000 {
        let a = rng.gen_range(-1000.0f32..1000.0);
        let b = rng.gen_range(-1000.0f32..1000.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }
}

/// The unrolled dot product agrees with the scalar reference.
#[test]
fn dot_agrees_with_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    for _ in 0..200 {
        let k = rng.gen_range(1usize..200);
        let p: Vec<f32> = (0..k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let q: Vec<f32> = (0..k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let a = dot(&p[..], &q[..]);
        let b = dot_scalar(&p[..], &q[..]);
        assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()));
    }
}

/// sgd_delta + add == sgd_update, for arbitrary inputs.
#[test]
fn delta_commutes_with_update() {
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    for _ in 0..200 {
        let k = rng.gen_range(1usize..64);
        let p0: Vec<f32> = (0..k).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        let q0: Vec<f32> = (0..k).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        let r = rng.gen_range(-4.0f32..4.0);
        let gamma = rng.gen_range(0.001f32..0.2);
        let lambda = rng.gen_range(0.0f32..0.2);
        let mut dp = vec![0.0; k];
        let mut dq = vec![0.0; k];
        sgd_delta(&p0, &q0, r, gamma, lambda, &mut dp, &mut dq);
        let (mut p1, mut q1) = (p0.clone(), q0.clone());
        sgd_update_reference(&mut p1[..], &mut q1[..], r, gamma, lambda);
        for i in 0..k {
            assert!((p0[i] + dp[i] - p1[i]).abs() < 1e-5);
            assert!((q0[i] + dq[i] - q1[i]).abs() < 1e-5);
        }
    }
}

/// Every scheduling policy covers each sample exactly once per epoch.
#[test]
fn schedulers_cover_exactly_once() {
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    for _ in 0..64 {
        let coo = random_coo(&mut rng);
        let workers = rng.gen_range(1usize..6);
        let n = coo.nnz();
        let expected: Vec<usize> = (0..n).collect();

        let mut bh = BatchHogwildStream::new(n, workers, 16);
        let mut got: Vec<usize> = drain_epoch(&mut bh, 100_000)
            .into_iter()
            .flatten()
            .collect();
        got.sort_unstable();
        assert_eq!(&got, &expected, "batch-hogwild");

        let cols = (2 * workers).min(coo.cols() as usize).max(1);
        if cols >= 2 * workers && workers <= coo.rows() as usize {
            let mut wf = WavefrontStream::new(&coo, workers, cols, 5);
            let mut got: Vec<usize> = drain_epoch(&mut wf, 1_000_000)
                .into_iter()
                .flatten()
                .collect();
            got.sort_unstable();
            assert_eq!(&got, &expected, "wavefront");
        }

        let a = 3usize
            .min(coo.rows() as usize)
            .min(coo.cols() as usize)
            .max(1);
        let mut lt = LibmfTableStream::new(&coo, workers, a, 9);
        let mut got: Vec<usize> = drain_epoch(&mut lt, 1_000_000)
            .into_iter()
            .flatten()
            .collect();
        got.sort_unstable();
        assert_eq!(&got, &expected, "libmf-table");
    }
}

/// Grid partitions cover every sample exactly once, in range.
#[test]
fn grid_partitions_are_exact() {
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    for _ in 0..64 {
        let coo = random_coo(&mut rng);
        let i = rng.gen_range(1u32..5).min(coo.rows());
        let j = rng.gen_range(1u32..5).min(coo.cols());
        let grid = Grid::build(&coo, i, j);
        let mut seen = vec![false; coo.nnz()];
        for id in grid.block_ids() {
            let rr = grid.row_range(id.bi);
            let cr = grid.col_range(id.bj);
            for &s in grid.block(id) {
                assert!(!seen[s], "sample {s} in two blocks");
                seen[s] = true;
                let e = coo.get(s);
                assert!(rr.contains(&e.u));
                assert!(cr.contains(&e.v));
            }
        }
        assert!(seen.iter().all(|&x| x), "some sample missing");
    }
}

/// Alias tables sample only valid indices and hit every positive-weight
/// bucket eventually.
#[test]
fn alias_table_in_range() {
    let mut rng = ChaCha8Rng::seed_from_u64(107);
    for _ in 0..50 {
        let n = rng.gen_range(1usize..50);
        let exp = rng.gen_range(0.0f64..2.0);
        let weights = zipf_weights(n, exp);
        let table = AliasTable::new(&weights);
        let mut draw_rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let idx = table.sample(&mut draw_rng);
            assert!((idx as usize) < n);
        }
    }
}

/// Eq. 5 invariants: bytes grow with k, flops/byte below 1 for
/// realistic k (memory-bound), f16 always halves feature bytes.
#[test]
fn cost_model_invariants() {
    for k in 1u32..512 {
        let f32c = SgdUpdateCost {
            k,
            precision: Precision::F32,
            rating_access: RatingAccess::Streamed,
        };
        let f16c = SgdUpdateCost {
            k,
            precision: Precision::F16,
            rating_access: RatingAccess::Streamed,
        };
        assert_eq!(f32c.bytes() - 12, 2 * (f16c.bytes() - 12));
        assert!(f16c.flops_per_byte() > f32c.flops_per_byte());
        if k >= 8 {
            assert!(f32c.flops_per_byte() < 1.0, "memory bound");
        }
    }
}

/// SimTime arithmetic is consistent with f64 arithmetic.
#[test]
fn simtime_add_sub() {
    let mut rng = ChaCha8Rng::seed_from_u64(108);
    for _ in 0..2000 {
        let a = rng.gen_range(0.0f64..1e6);
        let b = rng.gen_range(0.0f64..1e6);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let s = SimTime::from_secs(hi) - SimTime::from_secs(lo);
        assert!((s.as_secs() - (hi - lo)).abs() < 1e-9 * hi.max(1.0));
        let t = SimTime::from_secs(a) + SimTime::from_secs(b);
        assert!((t.as_secs() - (a + b)).abs() < 1e-9 * (a + b).max(1.0));
        assert_eq!(
            SimTime::from_secs(lo).saturating_sub(SimTime::from_secs(hi)),
            SimTime::ZERO
        );
    }
}

/// Serial SGD on planted data never increases test RMSE by much
/// between consecutive epochs once the learning rate decays.
#[test]
fn serial_sgd_is_stable() {
    use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
    use cumf_sgd::core::Schedule;
    use cumf_sgd::data::synth::{generate, SynthConfig};
    let mut seed_rng = ChaCha8Rng::seed_from_u64(109);
    for _ in 0..8 {
        let seed = seed_rng.gen_range(0u64..1000);
        let d = generate(&SynthConfig {
            m: 120,
            n: 90,
            k_true: 3,
            train_samples: 5_000,
            test_samples: 500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed,
        });
        let cfg = SolverConfig {
            k: 5,
            lambda: 0.02,
            schedule: Schedule::NomadDecay {
                alpha: 0.1,
                beta: 0.3,
            },
            epochs: 8,
            scheme: Scheme::Serial,
            seed,
            mode: None,
            divergence_ceiling: 1e3,
        };
        let r = train::<f32>(&d.train, &d.test, &cfg, None);
        assert!(!r.diverged);
        let pts = &r.trace.points;
        for w in pts.windows(2) {
            assert!(
                w[1].rmse < w[0].rmse * 1.2 + 0.05,
                "seed {seed} epoch {} jumped {} -> {}",
                w[1].epoch,
                w[0].rmse,
                w[1].rmse
            );
        }
        assert!(pts.last().unwrap().rmse < pts[0].rmse * 1.01);
    }
}
