//! Measured-vs-certified staleness: the bounds the static certifier
//! claims (`cumf_core::stale`) checked against what executions actually
//! observe.
//!
//! * the round-lockstep Hogwild schedule is drained round by round and
//!   the per-round per-row writer multiplicity — exactly the staleness
//!   a round-barrier read can observe — never exceeds the certified
//!   τ = W − 1, across seeds × thread counts;
//! * a real-thread epoch-join run instruments every factor-row update
//!   with an atomic version counter (snapshot at read, delta at commit
//!   = writes that landed in between) and the observed maximum never
//!   exceeds the certified τ = (W − 1) × per-epoch quota;
//! * the solver consumes the certifier: a sane racy configuration
//!   trains stale-additive with a certificate attached to
//!   `TrainResult`, an oversubscribed schedule is refuted and
//!   downgraded to sequential execution, and explicit mode overrides
//!   skip certification entirely.

use std::sync::atomic::{AtomicU64, Ordering};

use cumf_sgd::core::sched::{HogwildStream, StreamItem, UpdateStream};
use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::stale::{staleness_bound, PathSpec};
use cumf_sgd::core::{ExecMode, Schedule};
use cumf_sgd::data::synth::{generate, SynthConfig};

// ------------------------------------------- round-census vs certified τ

/// Drains one Hogwild epoch round by round and returns the maximum
/// per-round per-row writer multiplicity minus one: the number of other
/// writers whose commit lands between a round-barrier read and the
/// write it feeds — the measured counterpart of the solver-hogwild τ.
fn max_round_overlap(data: &cumf_sgd::data::CooMatrix, workers: usize, seed: u64) -> u64 {
    let mut stream = HogwildStream::new(data.nnz(), workers, seed);
    stream.begin_epoch(0);
    let mut exhausted = vec![false; workers];
    let mut max_overlap = 0u64;
    let mut round_rows: Vec<u32> = Vec::with_capacity(2 * workers);
    while !exhausted.iter().all(|&d| d) {
        round_rows.clear();
        for (w, done) in exhausted.iter_mut().enumerate() {
            if *done {
                continue;
            }
            match stream.next(w) {
                StreamItem::Sample(i) => {
                    let e = data.get(i);
                    round_rows.push(e.u);
                    // Column factors race identically; count them in
                    // the same census (distinct coordinate space).
                    round_rows.push(u32::MAX - e.v);
                }
                StreamItem::Stall => {}
                StreamItem::Exhausted => *done = true,
            }
        }
        round_rows.sort_unstable();
        let mut run = 1u64;
        for k in 1..round_rows.len() {
            if round_rows[k] == round_rows[k - 1] {
                run += 1;
                max_overlap = max_overlap.max(run - 1);
            } else {
                run = 1;
            }
        }
    }
    max_overlap
}

#[test]
fn observed_round_overlap_never_exceeds_certified_tau() {
    let d = generate(&SynthConfig {
        m: 120,
        n: 90,
        k_true: 4,
        train_samples: 6_000,
        test_samples: 100,
        ..SynthConfig::default()
    });
    for &workers in &[2usize, 4, 8] {
        let spec = PathSpec::solver_hogwild(workers as u32, 90);
        let tau = staleness_bound(&spec).expect("solver path is bounded");
        assert_eq!(tau, workers as u64 - 1);
        for seed in 0..5u64 {
            let observed = max_round_overlap(&d.train, workers, seed);
            assert!(
                observed <= tau,
                "workers={workers} seed={seed}: observed {observed} > certified τ={tau}"
            );
        }
    }
}

// --------------------------------- instrumented epoch-join vs certified τ

/// Runs `workers` real threads for `epochs` epochs of `quota` updates
/// each against shared per-row version counters, with only the epoch
/// join synchronising them — the exact shape of the
/// `batch-hogwild-threaded` update path. Each update snapshots its
/// row's version, spins briefly, then commits; the returned maximum of
/// `version_at_commit − snapshot` is the measured staleness.
fn measured_epoch_join_staleness(
    workers: usize,
    quota: u64,
    epochs: u32,
    rows: usize,
    seed: u64,
) -> u64 {
    let versions: Vec<AtomicU64> = (0..rows).map(|_| AtomicU64::new(0)).collect();
    let max_observed = AtomicU64::new(0);
    for _epoch in 0..epochs {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let versions = &versions;
                let max_observed = &max_observed;
                scope.spawn(move || {
                    let mut x = seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..quota {
                        // xorshift row pick: any writer may hit any row.
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let r = (x % rows as u64) as usize;
                        let snap = versions[r].load(Ordering::SeqCst);
                        std::hint::spin_loop();
                        let commit = versions[r].fetch_add(1, Ordering::SeqCst);
                        max_observed.fetch_max(commit - snap, Ordering::SeqCst);
                    }
                });
            }
        });
        // The scope join IS the epoch barrier.
    }
    max_observed.into_inner()
}

#[test]
fn observed_threaded_staleness_never_exceeds_certified_tau() {
    let quota = 64u64;
    for &workers in &[2usize, 4, 8] {
        let spec = PathSpec {
            sync: cumf_sgd::core::stale::SyncEdge::Barrier { interval: quota },
            ..PathSpec::solver_hogwild(workers as u32, 1000)
        };
        let tau = staleness_bound(&spec).expect("epoch-join path is bounded");
        assert_eq!(tau, (workers as u64 - 1) * quota);
        for seed in 1..=3u64 {
            let observed = measured_epoch_join_staleness(workers, quota, 3, 4, seed);
            assert!(
                observed <= tau,
                "workers={workers} seed={seed}: observed {observed} > certified τ={tau}"
            );
        }
    }
}

// ----------------------------------------------- solver-side consumption

fn dataset(m: u32, n: u32, samples: usize, seed: u64) -> cumf_sgd::data::synth::SynthDataset {
    generate(&SynthConfig {
        m,
        n,
        k_true: 4,
        train_samples: samples,
        test_samples: samples / 10,
        seed,
        ..SynthConfig::default()
    })
}

#[test]
fn sane_racy_configuration_trains_with_a_certificate() {
    let d = dataset(300, 200, 12_000, 3);
    let cfg = SolverConfig {
        epochs: 3,
        ..SolverConfig::new(6, Scheme::Hogwild { workers: 8 })
    };
    let r = train::<f32>(&d.train, &d.test, &cfg, None);
    assert_eq!(r.exec_mode, ExecMode::StaleAdditive, "certified mode kept");
    let verdict = r.stale_verdict.expect("racy default must be certified");
    let cert = verdict.certificate().expect("sane config certifies");
    assert_eq!(cert.path, "solver-hogwild");
    assert_eq!(cert.tau, 7);
    assert!(cert.lr_tau < 1.0, "{cert}");
}

#[test]
fn oversubscribed_schedule_is_refuted_and_serialised() {
    let d = dataset(60, 40, 4_000, 9);
    let mut cfg = SolverConfig::new(4, Scheme::Hogwild { workers: 40 });
    cfg.epochs = 2;
    cfg.schedule = Schedule::Fixed(0.5);
    let r = train::<f32>(&d.train, &d.test, &cfg, None);
    assert_eq!(
        r.exec_mode,
        ExecMode::Sequential,
        "refuted schedule must be downgraded"
    );
    let verdict = r.stale_verdict.expect("a verdict must be attached");
    let w = verdict.witness().expect("oversubscription refutes");
    assert!(w.lr_tau >= 1.0, "{w}");
    assert!(w.detail.contains("lr·τ"), "{w}");
}

#[test]
fn explicit_mode_override_skips_staleness_certification() {
    let d = dataset(60, 40, 4_000, 9);
    let mut cfg = SolverConfig::new(4, Scheme::Hogwild { workers: 40 });
    cfg.epochs = 2;
    cfg.schedule = Schedule::Fixed(0.05);
    cfg.mode = Some(ExecMode::StaleAdditive);
    let r = train::<f32>(&d.train, &d.test, &cfg, None);
    assert_eq!(r.exec_mode, ExecMode::StaleAdditive);
    assert!(
        r.stale_verdict.is_none(),
        "explicit overrides are the caller's responsibility"
    );
}
