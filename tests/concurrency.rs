//! Cross-validation of the concurrent executors: the deterministic
//! round-based engine, the lock-free atomic Hogwild! threads, the
//! lock-striped threads, and the message-passing NOMAD ring must all
//! solve the same problem to the same quality.

use std::sync::Arc;

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;
use cumf_sgd::baselines::{train_nomad_threaded, NomadConfig};
use cumf_sgd::core::concurrent::{
    striped_locked_epoch, threaded_hogwild_epoch, AtomicFactors, StripedFactors,
};
use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::{rmse, FactorMatrix, Schedule};
use cumf_sgd::data::synth::{generate, SynthConfig, SynthDataset};

const K: u32 = 6;
const EPOCHS: u32 = 12;
const GAMMA: f32 = 0.1;
const LAMBDA: f32 = 0.02;
const QUALITY: f64 = 0.22;

fn dataset() -> SynthDataset {
    generate(&SynthConfig {
        m: 400,
        n: 300,
        k_true: 4,
        train_samples: 24_000,
        test_samples: 2_400,
        noise_std: 0.1,
        row_skew: 0.4,
        col_skew: 0.4,
        rating_offset: 1.0,
        seed: 1234,
    })
}

fn init_factors(d: &SynthDataset) -> (FactorMatrix<f32>, FactorMatrix<f32>) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    (
        FactorMatrix::random_init(d.train.rows(), K, &mut rng),
        FactorMatrix::random_init(d.train.cols(), K, &mut rng),
    )
}

#[test]
fn round_engine_reaches_quality() {
    let d = dataset();
    let cfg = SolverConfig {
        k: K,
        lambda: LAMBDA,
        schedule: Schedule::Fixed(GAMMA),
        epochs: EPOCHS,
        scheme: Scheme::BatchHogwild {
            workers: 8,
            batch: 64,
        },
        seed: 9,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let r = train::<f32>(&d.train, &d.test, &cfg, None);
    assert!(r.trace.final_rmse().unwrap() < QUALITY);
}

#[test]
fn atomic_threads_reach_quality() {
    let d = dataset();
    let (p0, q0) = init_factors(&d);
    let p = Arc::new(AtomicFactors::from_matrix(&p0));
    let q = Arc::new(AtomicFactors::from_matrix(&q0));
    for _ in 0..EPOCHS {
        threaded_hogwild_epoch(&d.train, &p, &q, 4, 128, GAMMA, LAMBDA);
    }
    let pm: FactorMatrix<f32> = p.to_matrix();
    let qm: FactorMatrix<f32> = q.to_matrix();
    let r = rmse(&d.test, &pm, &qm);
    assert!(r < QUALITY, "atomic hogwild rmse {r}");
}

#[test]
fn striped_locks_reach_quality() {
    let d = dataset();
    let (p0, q0) = init_factors(&d);
    let p = StripedFactors::from_matrix(&p0, 128);
    let q = StripedFactors::from_matrix(&q0, 128);
    for _ in 0..EPOCHS {
        striped_locked_epoch(&d.train, &p, &q, 4, 128, GAMMA, LAMBDA);
    }
    let pm: FactorMatrix<f32> = p.into_matrix();
    let qm: FactorMatrix<f32> = q.into_matrix();
    let r = rmse(&d.test, &pm, &qm);
    assert!(r < QUALITY, "striped-lock rmse {r}");
}

#[test]
fn nomad_ring_reaches_quality() {
    let d = dataset();
    let mut cfg = NomadConfig::new(K, 3);
    cfg.lambda = LAMBDA;
    cfg.schedule = Schedule::Fixed(GAMMA);
    cfg.epochs = EPOCHS;
    cfg.seed = 9;
    let r = train_nomad_threaded(&d.train, &d.test, &cfg);
    assert!(
        r.trace.final_rmse().unwrap() < QUALITY,
        "nomad ring rmse {}",
        r.trace.final_rmse().unwrap()
    );
}

/// All four executors land in a tight quality band of each other — the
/// parallelisation strategy must not change what is learned.
#[test]
fn all_executors_agree_on_quality() {
    let d = dataset();

    // Round engine.
    let cfg = SolverConfig {
        k: K,
        lambda: LAMBDA,
        schedule: Schedule::Fixed(GAMMA),
        epochs: EPOCHS,
        scheme: Scheme::BatchHogwild {
            workers: 8,
            batch: 64,
        },
        seed: 9,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let round = train::<f32>(&d.train, &d.test, &cfg, None)
        .trace
        .final_rmse()
        .unwrap();

    // Striped locks.
    let (p0, q0) = init_factors(&d);
    let p = StripedFactors::from_matrix(&p0, 64);
    let q = StripedFactors::from_matrix(&q0, 64);
    for _ in 0..EPOCHS {
        striped_locked_epoch(&d.train, &p, &q, 4, 64, GAMMA, LAMBDA);
    }
    let pm: FactorMatrix<f32> = p.into_matrix();
    let qm: FactorMatrix<f32> = q.into_matrix();
    let striped = rmse(&d.test, &pm, &qm);

    // NOMAD ring.
    let mut ncfg = NomadConfig::new(K, 3);
    ncfg.lambda = LAMBDA;
    ncfg.schedule = Schedule::Fixed(GAMMA);
    ncfg.epochs = EPOCHS;
    ncfg.seed = 9;
    let nomad = train_nomad_threaded(&d.train, &d.test, &ncfg)
        .trace
        .final_rmse()
        .unwrap();

    for (name, value) in [("striped", striped), ("nomad", nomad)] {
        assert!(
            (value - round).abs() < 0.05,
            "{name} rmse {value} strays from round-engine {round}"
        );
    }
}
