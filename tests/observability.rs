//! End-to-end observability: a traced fig09-style run (solver + machine
//! model) must produce a well-formed Chrome trace with spans from all
//! three layers, monotone sim-time spans, and a Prometheus exposition
//! with a meaningful number of series.
//!
//! Everything lives in one test function: the registry and tracer are
//! process-global, so parallel test threads would interleave their spans.

use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::Schedule;
use cumf_sgd::data::NETFLIX;
use cumf_sgd::gpu_sim::{
    simulate_throughput, SchedulerModel, SgdUpdateCost, ThroughputConfig, TITAN_X_MAXWELL,
};
use cumf_sgd::obs;
use cumf_sgd::obs::Clock;

/// Checks that `json` is structurally sound without a JSON parser: braces
/// and brackets balance outside string literals, and no bare NaN/Infinity
/// tokens leaked in (they are not valid JSON).
fn assert_well_formed_json(json: &str) {
    let mut depth_braces = 0i64;
    let mut depth_brackets = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_braces += 1,
            '}' => depth_braces -= 1,
            '[' => depth_brackets += 1,
            ']' => depth_brackets -= 1,
            _ => {}
        }
        assert!(depth_braces >= 0 && depth_brackets >= 0, "premature close");
    }
    assert!(!in_string, "unterminated string");
    assert_eq!(depth_braces, 0, "unbalanced braces");
    assert_eq!(depth_brackets, 0, "unbalanced brackets");
    assert!(
        !json.contains("NaN") && !json.contains("Infinity"),
        "non-JSON numbers"
    );
}

#[test]
fn traced_fig09_style_run_is_well_formed_and_covers_all_layers() {
    obs::reset();
    obs::set_enabled(true);

    // --- Solver layer: train on a small Netflix-shaped synthetic set.
    let d = NETFLIX.scaled(0.001, 8, 7);
    let config = SolverConfig {
        k: 8,
        lambda: 0.02,
        schedule: Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        },
        epochs: 2,
        scheme: Scheme::BatchHogwild {
            workers: 4,
            batch: 64,
        },
        seed: 7,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let result = train::<f32>(&d.train, &d.test, &config, None);
    assert!(!result.diverged, "reference config must converge");
    assert!(result.report.total_updates > 0);

    // --- gpu-sim + DES layers: the machine model with a contended global
    // scheduler (LIBMF table), as the fig09 comparison harness runs it.
    let workers = 32;
    let sim = simulate_throughput(&ThroughputConfig {
        workers,
        total_bandwidth: TITAN_X_MAXWELL.effective_bw(workers),
        cost: SgdUpdateCost::cumf(8),
        scheduler: SchedulerModel::RowColScan {
            a: 16,
            per_entry_s: 0.6e-6,
        },
        total_updates: 50_000,
    });
    assert!(sim.updates_per_sec > 0.0);

    let events = obs::tracer().events();

    // Spans from all three layers.
    assert!(
        events
            .iter()
            .any(|e| e.cat == "solver" && e.name == "epoch"),
        "missing solver epoch spans"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "gpu-sim" && e.name == "kernel-launch"),
        "missing gpu-sim kernel-launch spans"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "des" && e.name.starts_with("service:")),
        "missing DES resource service spans"
    );

    // Sim-time spans are monotone per track (worker/server lane): the
    // engine records them in completion order, and a lane's next span
    // cannot start before its previous one started.
    let mut last_start: std::collections::HashMap<(&str, u32), f64> =
        std::collections::HashMap::new();
    for e in events.iter().filter(|e| e.clock == Clock::Sim) {
        let key = (e.cat, e.track);
        if let Some(prev) = last_start.get(&key) {
            assert!(
                e.start_us >= *prev,
                "sim-time went backwards on track {key:?}: {} -> {}",
                prev,
                e.start_us
            );
        }
        last_start.insert(key, e.start_us);
        assert!(e.dur_us >= 0.0, "negative span duration");
    }
    assert!(!last_start.is_empty(), "no sim-clock spans recorded");

    // Chrome trace export is structurally valid and carries both clock
    // domains as separate trace processes.
    let json = obs::chrome_trace();
    assert_well_formed_json(&json);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\""));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"wall-clock\"") && json.contains("\"sim-time\""));
    assert!(json.contains("\"ph\":\"X\""));

    // Prometheus exposition: at least 20 distinct series, including the
    // headline gauges of each layer.
    let prom = obs::prometheus();
    let series = prom.lines().filter(|l| l.starts_with("cumf_")).count();
    assert!(series >= 20, "only {series} series in:\n{prom}");
    for name in [
        "cumf_solver_updates_total",
        "cumf_solver_run_final_rmse",
        "cumf_gpusim_occupancy",
        "cumf_gpusim_updates_per_sec",
        "cumf_des_events_total",
        "cumf_des_server_wait_seconds_bucket",
    ] {
        assert!(prom.contains(name), "missing series {name} in:\n{prom}");
    }

    // Disabled collectors stop recording (the release-build contract).
    obs::set_enabled(false);
    let before = events.len();
    obs::span("test", "ignored");
    obs::counter("cumf_test_ignored_total", "test").inc();
    assert_eq!(obs::tracer().events().len(), before);
    let prom_after = obs::prometheus();
    assert!(prom_after.contains("cumf_test_ignored_total 0"));

    obs::reset();
}
