//! Overhead guard at the workspace level: a small training run with
//! the `obs-off` feature must leave the global registry empty (every
//! probe across solver, gpu-sim, and DES compiles to a no-op), while
//! the default build registers the expected metrics.
//!
//! Run the compiled-out variant with
//! `cargo test --features obs-off --test obs_overhead`.
//!
//! Kept to a single test: it toggles the process-global observability
//! state (each integration-test file runs in its own process).

use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::Schedule;
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::obs;

fn train_small() {
    let d = generate(&SynthConfig {
        m: 400,
        n: 120,
        k_true: 2,
        train_samples: 4_000,
        test_samples: 400,
        noise_std: 0.1,
        row_skew: 0.4,
        col_skew: 0.3,
        rating_offset: 0.0,
        seed: 42,
    });
    let cfg = SolverConfig {
        k: 8,
        lambda: 0.05,
        schedule: Schedule::Fixed(0.02),
        epochs: 2,
        scheme: Scheme::BatchHogwild {
            workers: 8,
            batch: 32,
        },
        seed: 42,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let res = train::<f32>(&d.train, &d.test, &cfg, None);
    assert!(!res.diverged);
}

#[test]
fn training_probes_match_the_build_configuration() {
    obs::set_enabled(true);
    train_small();
    let entries = obs::registry().snapshot().len();
    let spans = obs::tracer().events().len();
    if cfg!(feature = "obs-off") {
        assert!(!obs::enabled(), "obs-off build must never enable");
        assert_eq!(entries, 0, "obs-off training must register no metrics");
        assert_eq!(spans, 0, "obs-off training must record no spans");
    } else {
        assert!(
            entries > 0,
            "default build must register solver metrics while enabled"
        );
        assert!(spans > 0, "default build must record solver spans");
    }
    obs::set_enabled(false);
    obs::reset();
}
