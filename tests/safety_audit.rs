//! Drift guard for `SAFETY.md`: the unsafe-code audit table must stay
//! in lockstep with the `unsafe` occurrences actually present in
//! `cumf-core` — the one crate allowed to use them.
//!
//! The audit table carries a `Sites` column counting `unsafe`
//! occurrences per row. This test re-counts both sides from source:
//! adding an `unsafe` without a new audit row (or deleting one and
//! leaving a stale row) turns this test red instead of silently
//! rotting the document.

use std::path::Path;

/// Counts `unsafe` occurrences in code (not comments or strings-in-docs)
/// across every `.rs` file under `dir`, recursively.
fn count_unsafe_in(dir: &Path) -> usize {
    let mut total = 0;
    for entry in std::fs::read_dir(dir).expect("source dir must be readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            total += count_unsafe_in(&path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).expect("source must be UTF-8");
            for line in src.lines() {
                let code = match line.find("//") {
                    Some(i) => &line[..i],
                    None => line,
                };
                if code.contains("forbid(unsafe_code)") {
                    continue;
                }
                total += code.matches("unsafe").count();
            }
        }
    }
    total
}

/// Parses the audit table in SAFETY.md and returns the sum of its
/// `Sites` column. Rows look like `| 3 | 1 | crates/core/... | ... |`.
fn audited_sites(safety_md: &str) -> (usize, usize) {
    let mut rows = 0;
    let mut sites = 0;
    for line in safety_md.lines() {
        let mut cells = line.split('|').map(str::trim);
        // A data row: empty, row number, sites count, ...
        let Some("") = cells.next() else { continue };
        let Some(n) = cells.next() else { continue };
        if n.is_empty() || !n.chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        let Some(s) = cells.next() else { continue };
        let Ok(s) = s.parse::<usize>() else { continue };
        rows += 1;
        sites += s;
    }
    (rows, sites)
}

#[test]
fn safety_audit_table_matches_the_unsafe_count_in_cumf_core() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let safety = std::fs::read_to_string(root.join("SAFETY.md")).expect("SAFETY.md must exist");
    let (rows, audited) = audited_sites(&safety);
    assert!(
        rows >= 4,
        "the audit table lost rows — found only {rows}; \
         did a rewrite drop the Sites column?"
    );
    let actual = count_unsafe_in(&root.join("crates/core/src"));
    assert_eq!(
        audited, actual,
        "SAFETY.md audits {audited} unsafe occurrence(s) across {rows} rows, \
         but cumf-core contains {actual}. Update the audit table (and its \
         mechanical checks) whenever an `unsafe` is added or removed."
    );
}

#[test]
fn no_other_crate_contains_unsafe() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ must exist") {
        let crate_dir = entry.expect("dir entry").path();
        if !crate_dir.is_dir() || crate_dir.file_name().is_some_and(|n| n == "core") {
            continue;
        }
        let src = crate_dir.join("src");
        assert_eq!(
            count_unsafe_in(&src),
            0,
            "{} contains `unsafe` but only cumf-core is audited for it \
             (see SAFETY.md)",
            crate_dir.display()
        );
    }
}
