//! Failure injection: every documented error path across the workspace
//! fires (and fires with the documented message), so misuse is loud.

use cumf_sgd::core::multi_gpu::{train_partitioned, MultiGpuConfig};
use cumf_sgd::core::solver::{train, CheckpointSpec, Scheme, SolverConfig};
use cumf_sgd::core::{FaultPlan, Schedule, SupervisorConfig, TrainError, TrainSupervisor};
use cumf_sgd::data::io::{read_binary, read_text, DataError};
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::data::CooMatrix;
use cumf_sgd::gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL};
use std::io::Cursor;

fn catch<R>(f: impl FnOnce() -> R + std::panic::UnwindSafe) -> Option<String> {
    match std::panic::catch_unwind(f) {
        Ok(_) => None,
        Err(e) => Some(
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default(),
        ),
    }
}

fn small() -> cumf_sgd::data::synth::SynthDataset {
    generate(&SynthConfig {
        m: 60,
        n: 50,
        k_true: 3,
        train_samples: 1_000,
        test_samples: 100,
        ..SynthConfig::default()
    })
}

#[test]
fn solver_misconfigurations_panic_with_clear_messages() {
    let d = small();
    // k = 0.
    let mut cfg = SolverConfig::new(0, Scheme::Serial);
    cfg.epochs = 1;
    let msg = catch(|| train::<f32>(&d.train, &d.test, &cfg, None)).expect("must panic");
    assert!(msg.contains("k must be positive"), "{msg}");

    // Empty training set.
    let cfg = SolverConfig::new(4, Scheme::Serial);
    let empty = CooMatrix::new(3, 3);
    let msg = catch(|| train::<f32>(&empty, &d.test, &cfg, None)).expect("must panic");
    assert!(msg.contains("training set is empty"), "{msg}");

    // Wavefront with too few columns for deadlock freedom.
    let mut cfg = SolverConfig::new(
        4,
        Scheme::Wavefront {
            workers: 8,
            cols: 8,
        },
    );
    cfg.epochs = 1;
    let msg = catch(|| train::<f32>(&d.train, &d.test, &cfg, None)).expect("must panic");
    assert!(msg.contains("deadlock freedom"), "{msg}");

    // LIBMF grid larger than the matrix.
    let mut cfg = SolverConfig::new(4, Scheme::LibmfTable { workers: 2, a: 500 });
    cfg.epochs = 1;
    let msg = catch(|| train::<f32>(&d.train, &d.test, &cfg, None)).expect("must panic");
    assert!(msg.contains("exceeds matrix"), "{msg}");
}

#[test]
fn partitioned_misconfigurations_panic() {
    let d = small();
    // Grid rule enforcement for multi-GPU.
    let mut cfg = MultiGpuConfig::new(4, 2, 2, 2);
    cfg.enforce_grid_rule = true;
    cfg.epochs = 1;
    let msg =
        catch(|| train_partitioned::<f32>(&d.train, &d.test, &cfg, &TITAN_X_MAXWELL, &PCIE3_X16))
            .expect("must panic");
    assert!(msg.contains("too small for"), "{msg}");

    // Grid larger than the matrix.
    let cfg = MultiGpuConfig::new(4, 100, 100, 1);
    let msg =
        catch(|| train_partitioned::<f32>(&d.train, &d.test, &cfg, &TITAN_X_MAXWELL, &PCIE3_X16))
            .expect("must panic");
    assert!(msg.contains("exceeds matrix"), "{msg}");
}

fn supervisor() -> TrainSupervisor {
    TrainSupervisor::new(SupervisorConfig::default(), FaultPlan::default())
}

/// The panicking misconfiguration above, retried through the supervisor:
/// each case comes back as `TrainError::InvalidConfig` carrying the same
/// message the assert would have printed, while the panicking API keeps
/// panicking (previous tests). Both paths stay covered.
#[test]
fn supervisor_returns_typed_errors_where_train_panics() {
    let d = small();
    let sup = supervisor();

    let typed = |cfg: &SolverConfig| -> String {
        match sup.train::<f32>(&d.train, &d.test, cfg, None, None) {
            Err(TrainError::InvalidConfig(m)) => m,
            Err(other) => panic!("expected InvalidConfig, got {other}"),
            Ok(_) => panic!("misconfiguration must not train"),
        }
    };

    let mut cfg = SolverConfig::new(0, Scheme::Serial);
    cfg.epochs = 1;
    assert!(typed(&cfg).contains("k must be positive"));

    let cfg = SolverConfig::new(4, Scheme::Serial);
    let empty = CooMatrix::new(3, 3);
    match sup.train::<f32>(&empty, &d.test, &cfg, None, None) {
        Err(TrainError::InvalidConfig(m)) => assert!(m.contains("training set is empty"), "{m}"),
        _ => panic!("empty training set must be InvalidConfig"),
    }

    let mut cfg = SolverConfig::new(
        4,
        Scheme::Wavefront {
            workers: 8,
            cols: 8,
        },
    );
    cfg.epochs = 1;
    let m = typed(&cfg);
    assert!(m.contains("deadlock freedom"), "{m}");
    // Message text identical to the panicking path's.
    let panicked = catch(|| train::<f32>(&d.train, &d.test, &cfg, None)).expect("must panic");
    assert!(panicked.contains(&m), "typed {m:?} vs panic {panicked:?}");

    let mut cfg = SolverConfig::new(4, Scheme::LibmfTable { workers: 2, a: 500 });
    cfg.epochs = 1;
    assert!(typed(&cfg).contains("exceeds matrix"));
}

#[test]
fn supervisor_returns_typed_errors_where_partitioned_panics() {
    let d = small();
    let sup = supervisor();

    let typed = |cfg: &MultiGpuConfig| -> String {
        match sup.train_partitioned::<f32>(&d.train, &d.test, cfg, &TITAN_X_MAXWELL, &PCIE3_X16) {
            Err(TrainError::InvalidConfig(m)) => m,
            Err(other) => panic!("expected InvalidConfig, got {other}"),
            Ok(_) => panic!("misconfiguration must not train"),
        }
    };

    let mut cfg = MultiGpuConfig::new(4, 2, 2, 2);
    cfg.enforce_grid_rule = true;
    cfg.epochs = 1;
    let m = typed(&cfg);
    assert!(m.contains("too small for"), "{m}");
    let panicked =
        catch(|| train_partitioned::<f32>(&d.train, &d.test, &cfg, &TITAN_X_MAXWELL, &PCIE3_X16))
            .expect("must panic");
    assert!(panicked.contains(&m), "typed {m:?} vs panic {panicked:?}");

    let cfg = MultiGpuConfig::new(4, 100, 100, 1);
    assert!(typed(&cfg).contains("exceeds matrix"));

    let mut cfg = MultiGpuConfig::new(4, 4, 4, 1);
    cfg.workers_per_gpu = 0;
    assert!(typed(&cfg).contains("need at least one worker"));

    let cfg = MultiGpuConfig::new(4, 4, 4, 0);
    assert!(typed(&cfg).contains("need at least one GPU"));
}

/// A corrupt `--resume` file through the supervisor front door is a typed
/// `TrainError::Checkpoint` naming the problem, never a panic and never a
/// silent fresh start.
#[test]
fn supervisor_surfaces_corrupt_resume_checkpoint() {
    let d = small();
    let sup = supervisor();
    let dir = std::env::temp_dir().join("cumf_failure_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt_resume.cmfk");
    std::fs::write(&path, b"CMFKgarbage-that-is-not-a-checkpoint").unwrap();
    let mut cfg = SolverConfig::new(4, Scheme::Serial);
    cfg.epochs = 2;
    let spec = CheckpointSpec {
        path: path.clone(),
        every: 1,
        resume: true,
    };
    let err = sup
        .train::<f32>(&d.train, &d.test, &cfg, None, Some(&spec))
        .map(|_| ())
        .unwrap_err();
    match &err {
        TrainError::Checkpoint(_) => {
            use std::error::Error;
            assert!(err.source().is_some(), "checkpoint errors carry a source");
        }
        other => panic!("expected Checkpoint error, got {other}"),
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn data_loading_rejects_corruption_gracefully() {
    // Text: each malformed shape is an Err, never a panic.
    for (input, needle) in [
        ("1 2\n", "missing rating"),
        ("x 2 3\n", "bad row index"),
        ("1 2 3 4\n", "trailing"),
        ("1 2 nan\n", "finite"),
    ] {
        let err = read_text(Cursor::new(input), 0, 0).unwrap_err();
        assert!(err.to_string().contains(needle), "input {input:?}: {err}");
    }
    // Binary: truncation at every prefix of a valid file must produce an
    // error (IO or parse), never a panic or a silent success.
    let mut coo = CooMatrix::new(4, 4);
    coo.push(0, 1, 1.5);
    coo.push(3, 2, -0.5);
    let mut buf = Vec::new();
    cumf_sgd::data::io::write_binary(&mut buf, &coo).unwrap();
    for cut in 0..buf.len() {
        let result = read_binary(Cursor::new(buf[..cut].to_vec()));
        assert!(
            result.is_err(),
            "truncation at {cut}/{} must fail",
            buf.len()
        );
        // And the error formats without panicking.
        let _ = result.unwrap_err().to_string();
    }
}

#[test]
fn data_error_source_chain() {
    let err = read_binary(Cursor::new(Vec::new())).unwrap_err();
    match &err {
        DataError::Io(_) => {
            use std::error::Error;
            assert!(err.source().is_some(), "io errors carry a source");
        }
        other => panic!("empty file should be an io error, got {other}"),
    }
}

#[test]
fn divergence_is_flagged_not_hidden() {
    // A learning rate far past stability must be reported as divergence,
    // with the trace retained up to the blow-up.
    let d = generate(&SynthConfig {
        m: 40,
        n: 30,
        k_true: 3,
        train_samples: 3_000,
        test_samples: 300,
        rating_offset: 0.0,
        ..SynthConfig::default()
    });
    let cfg = SolverConfig {
        k: 4,
        lambda: 0.0,
        schedule: Schedule::Fixed(5.0), // wildly unstable
        epochs: 10,
        scheme: Scheme::Serial,
        seed: 0,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let r = train::<f32>(&d.train, &d.test, &cfg, None);
    assert!(r.diverged, "gamma=5 must diverge");
    assert!(!r.trace.points.is_empty(), "trace retained");
    assert!(r.trace.points.len() < 10, "stopped early");
}

#[test]
fn model_io_errors_are_typed() {
    use cumf_sgd::core::model_io::{load_model, ModelIoError};
    let err = load_model::<f32, _>(Cursor::new(b"JUNKJUNKJUNK".to_vec())).unwrap_err();
    assert!(matches!(err, ModelIoError::Format(_)), "{err}");
}
