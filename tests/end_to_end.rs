//! End-to-end integration: data generation → IO round trip → split →
//! training → evaluation, across crates.

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;
use cumf_sgd::core::solver::{train, Scheme, SolverConfig};
use cumf_sgd::core::{rmse, Schedule};
use cumf_sgd::data::io::{read_binary_file, write_binary_file};
use cumf_sgd::data::synth::{generate, SynthConfig};
use cumf_sgd::data::{holdout_split, CooMatrix};

fn small_config() -> SynthConfig {
    SynthConfig {
        m: 400,
        n: 300,
        k_true: 4,
        train_samples: 25_000,
        test_samples: 2_500,
        noise_std: 0.1,
        row_skew: 0.5,
        col_skew: 0.5,
        rating_offset: 2.0,
        seed: 77,
    }
}

fn solver_config(scheme: Scheme) -> SolverConfig {
    SolverConfig {
        k: 6,
        lambda: 0.02,
        schedule: Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        },
        epochs: 15,
        scheme,
        seed: 3,
        mode: None,
        divergence_ceiling: 1e3,
    }
}

#[test]
fn generate_persist_reload_split_train() {
    let data = generate(&small_config());

    // Persist and reload the training matrix through the binary format.
    let dir = std::env::temp_dir().join("cumf_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("train.bin");
    write_binary_file(&path, &data.train).unwrap();
    let reloaded = read_binary_file(&path).unwrap();
    assert_eq!(reloaded, data.train);
    let _ = std::fs::remove_dir_all(&dir);

    // Re-split the reloaded data (Hugewiki protocol: 1% random holdout).
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (train_set, holdout) = holdout_split(&reloaded, 0.01, &mut rng);
    assert_eq!(holdout.nnz(), 250);

    // Train on the re-split data; evaluate on both holdouts.
    let result = train::<f32>(
        &train_set,
        &data.test,
        &solver_config(Scheme::BatchHogwild {
            workers: 8,
            batch: 128,
        }),
        None,
    );
    assert!(!result.diverged);
    let test_rmse = result.trace.final_rmse().unwrap();
    assert!(test_rmse < 0.2, "test rmse {test_rmse}");
    let holdout_rmse = rmse(&holdout, &result.p, &result.q);
    assert!(
        (holdout_rmse - test_rmse).abs() < 0.1,
        "holdout {holdout_rmse} vs test {test_rmse}"
    );
}

#[test]
fn trained_model_generalises_not_memorises() {
    let data = generate(&small_config());
    let result = train::<f32>(
        &data.train,
        &data.test,
        &solver_config(Scheme::Serial),
        None,
    );
    let train_rmse = rmse(&data.train, &result.p, &result.q);
    let test_rmse = result.trace.final_rmse().unwrap();
    // Both near the floor; mild overfit allowed, pathological gap is a bug.
    assert!(train_rmse < test_rmse, "train should fit better");
    assert!(
        test_rmse < train_rmse + 0.1,
        "generalisation gap too large: {train_rmse} vs {test_rmse}"
    );
}

#[test]
fn empty_test_set_is_tolerated() {
    let data = generate(&small_config());
    let empty = CooMatrix::new(data.train.rows(), data.train.cols());
    let result = train::<f32>(&data.train, &empty, &solver_config(Scheme::Serial), None);
    // RMSE of an empty set is defined as 0; training proceeds.
    assert_eq!(result.trace.final_rmse(), Some(0.0));
}

#[test]
fn deterministic_training_given_seed() {
    let data = generate(&small_config());
    let cfg = solver_config(Scheme::BatchHogwild {
        workers: 4,
        batch: 64,
    });
    let a = train::<f32>(&data.train, &data.test, &cfg, None);
    let b = train::<f32>(&data.train, &data.test, &cfg, None);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.p, b.p);
}
