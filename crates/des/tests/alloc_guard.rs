//! Zero-allocation steady-state guard for the DES hot path.
//!
//! The arena/calendar rewrite exists so that steady-state simulation —
//! schedule, fire, cancel, resume — never touches the global allocator
//! once the arenas and rungs have warmed up. This test pins that down
//! with the same counting-allocator technique as `cumf-obs`'s
//! `off_guard`: a thread-local allocation counter wrapped around the
//! system allocator.
//!
//! Two layers are guarded:
//! * the raw [`EventQueue`] (schedule/pop/cancel cycles must be strictly
//!   allocation-free after warmup), and
//! * a full [`Simulation::run`] (per-event cost must be allocation-free:
//!   a 10× longer run may allocate no more than a short one).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cumf_des::{Block, Ctx, EventQueue, Process, SimTime, Simulation};

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting this thread's allocations, so
/// parallel test threads cannot perturb the probe.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// One steady-state round against the raw queue: pop the head, feed two
/// replacements (one same-instant cascade, one ahead), and retime a
/// third the way the engine retimes link ticks (schedule + cancel).
fn queue_round(q: &mut EventQueue<u32>, doomed: &mut Option<cumf_des::EventId>, step: u64) {
    let (t, tag) = q.pop().expect("queue stays primed");
    if step.is_multiple_of(7) {
        // Same-instant cascade: rides the early rung.
        q.schedule(t, tag);
    } else {
        q.schedule(t + SimTime::from_micros((1 + step % 97) as f64), tag);
    }
    if let Some(id) = doomed.take() {
        q.cancel(id);
    }
    *doomed = Some(q.schedule(t + SimTime::from_micros((3 + step % 31) as f64), u32::MAX));
}

#[test]
fn event_queue_steady_state_is_allocation_free() {
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..4_096u32 {
        q.schedule(SimTime::from_micros((i / 64) as f64), i);
    }
    // Warmup: let the arena free list, rung heaps, and bucket vectors
    // reach their steady-state capacities.
    let mut doomed = None;
    for step in 0..200_000u64 {
        queue_round(&mut q, &mut doomed, step);
    }
    // Steady state: the same mix must be *strictly* allocation-free.
    let allocs = allocations_during(|| {
        for step in 0..200_000u64 {
            queue_round(&mut q, &mut doomed, step);
        }
    });
    assert_eq!(allocs, 0, "DES queue hot path allocated {allocs} times");
}

/// A process that sleeps forever on a fixed cadence — pure Resume churn
/// through the engine's fast path.
struct EternalSleeper {
    dt: SimTime,
}

impl Process for EternalSleeper {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        Block::Delay(self.dt)
    }
}

#[test]
fn engine_event_loop_is_allocation_free_per_event() {
    // Observability stays disabled (the default): probes are never
    // registered, spans return the no-op guard.
    assert!(!cumf_obs::enabled());
    let mut sim = Simulation::new();
    // Periodic cadences (1/2/4 µs) so calendar-bucket occupancy reaches
    // its true peak during warmup; aperiodic mixes keep setting rare new
    // per-bucket records forever, which is an amortized-growth property
    // of any bucketed calendar, not an allocation leak.
    for i in 0..64u32 {
        sim.spawn(Box::new(EternalSleeper {
            dt: SimTime::from_micros(f64::from(1 << (i % 3))),
        }));
    }
    // Warmup run: pays spawn boxes, arena growth, and rung/bucket
    // capacities (every calendar bucket must see its peak occupancy at
    // least once, so give the window many rotations).
    sim.run(Some(SimTime::from_millis(50.0)));
    // Two measured runs, the second driving ~10× the events of the
    // first. Allocation-free per-event cost means both counts are zero;
    // asserting both pins the invariant and reports the per-event rate
    // if it ever regresses.
    let short = allocations_during(|| {
        sim.run(Some(SimTime::from_millis(51.0)));
    });
    let long = allocations_during(|| {
        sim.run(Some(SimTime::from_millis(61.0)));
    });
    assert_eq!(short, 0, "engine short run allocated {short} times");
    assert_eq!(long, 0, "engine long run allocated {long} times");
}
