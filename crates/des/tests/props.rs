//! Property-style tests of the DES engine: determinism, clock
//! monotonicity, and conservation laws under randomized process mixes.
//!
//! Formerly written with `proptest`; rewritten as deterministic seeded
//! sweeps so the workspace builds offline. Each case is identified by
//! the fixed seed plus the iteration index.

use std::cell::RefCell;
use std::rc::Rc;

use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

use cumf_des::{Block, Ctx, LinkId, Process, ServerId, SimTime, Simulation};

/// A randomized process: a scripted sequence of blocking actions.
#[derive(Debug, Clone)]
enum Step {
    Delay(u32),    // microseconds
    Service(u32),  // hold microseconds on the shared server
    Transfer(u32), // kilobytes over the shared link
}

struct Scripted {
    steps: Vec<Step>,
    at: usize,
    server: ServerId,
    link: LinkId,
    wake_times: Rc<RefCell<Vec<f64>>>,
    done: Rc<RefCell<u32>>,
}

impl Process for Scripted {
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block {
        self.wake_times.borrow_mut().push(ctx.now().as_secs());
        if self.at >= self.steps.len() {
            *self.done.borrow_mut() += 1;
            return Block::Done;
        }
        let step = self.steps[self.at].clone();
        self.at += 1;
        match step {
            Step::Delay(us) => Block::Delay(SimTime::from_micros(us as f64 + 1.0)),
            Step::Service(us) => Block::Service {
                server: self.server,
                hold: SimTime::from_micros(us as f64 + 1.0),
            },
            Step::Transfer(kb) => Block::Transfer {
                link: self.link,
                bytes: (kb as f64 + 1.0) * 1024.0,
            },
        }
    }
}

fn random_step(rng: &mut ChaCha8Rng) -> Step {
    match rng.gen_range(0u32..3) {
        0 => Step::Delay(rng.gen_range(0u32..500)),
        1 => Step::Service(rng.gen_range(0u32..200)),
        _ => Step::Transfer(rng.gen_range(0u32..300)),
    }
}

fn random_scripts(
    rng: &mut ChaCha8Rng,
    procs: core::ops::Range<usize>,
    min_steps: usize,
) -> Vec<Vec<Step>> {
    let n = rng.gen_range(procs);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(min_steps..12);
            (0..len).map(|_| random_step(rng)).collect()
        })
        .collect()
}

fn run_mix(scripts: &[Vec<Step>], server_slots: usize, link_bw: f64) -> (Vec<f64>, u32, f64, u64) {
    let mut sim = Simulation::new();
    let server = sim.add_server("srv", server_slots);
    let link = sim.add_link("lnk", link_bw);
    let wake_times = Rc::new(RefCell::new(Vec::new()));
    let done = Rc::new(RefCell::new(0u32));
    for steps in scripts {
        sim.spawn(Box::new(Scripted {
            steps: steps.clone(),
            at: 0,
            server,
            link,
            wake_times: wake_times.clone(),
            done: done.clone(),
        }));
    }
    let report = sim.run(None);
    let times = wake_times.borrow().clone();
    let finished = *done.borrow();
    (times, finished, report.end_time.as_secs(), report.events)
}

/// Every process completes, wake-ups never go back in time, and a
/// rerun of the same script is bit-identical (determinism).
#[test]
fn engine_is_monotone_deterministic_and_complete() {
    let mut rng = ChaCha8Rng::seed_from_u64(201);
    for _ in 0..48 {
        let scripts = random_scripts(&mut rng, 1..10, 0);
        let slots = rng.gen_range(1usize..4);
        let (times_a, done_a, end_a, events_a) = run_mix(&scripts, slots, 1e6);
        assert_eq!(done_a as usize, scripts.len(), "every process finishes");
        // The per-process wake sequence is recorded interleaved; global
        // monotonicity is too strong (wakes interleave across processes),
        // but the engine clock itself must be monotone, which we check by
        // asserting no wake exceeds the end time and the end time bounds
        // the total scripted work.
        for &t in &times_a {
            assert!(t <= end_a + 1e-12);
            assert!(t >= 0.0);
        }
        // Determinism: identical rerun.
        let (times_b, done_b, end_b, events_b) = run_mix(&scripts, slots, 1e6);
        assert_eq!(&times_a, &times_b);
        assert_eq!(done_a, done_b);
        assert!((end_a - end_b).abs() == 0.0);
        assert_eq!(events_a, events_b);
    }
}

/// Work conservation: the makespan is at least the critical-path lower
/// bound (longest single process) and at most the fully-serialised
/// upper bound (sum of all work).
#[test]
fn makespan_is_bounded_by_serial_and_critical_path() {
    let mut rng = ChaCha8Rng::seed_from_u64(202);
    for _ in 0..48 {
        let scripts = random_scripts(&mut rng, 1..8, 1);
        let bw = 1e6;
        let step_secs = |s: &Step| match *s {
            Step::Delay(us) | Step::Service(us) => (us as f64 + 1.0) * 1e-6,
            Step::Transfer(kb) => (kb as f64 + 1.0) * 1024.0 / bw,
        };
        let longest: f64 = scripts
            .iter()
            .map(|p| p.iter().map(step_secs).sum::<f64>())
            .fold(0.0, f64::max);
        let total: f64 = scripts.iter().flatten().map(step_secs).sum();
        let (_, _, end, _) = run_mix(&scripts, 1, bw);
        assert!(end >= longest - 1e-9, "end {end} < critical path {longest}");
        assert!(end <= total + 1e-9, "end {end} > serial bound {total}");
    }
}
