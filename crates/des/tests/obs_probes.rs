//! DES hot-path instrumentation: per-event-type dequeue counts, the
//! schedule→fire dwell histogram, the queue-occupancy gauge, and the
//! wall-clock `des/run` span that feeds the profiler.
//!
//! Kept as a single test because it toggles the process-global obs
//! state (each integration-test file runs in its own process).

use cumf_des::{Block, Ctx, Process, SimTime, Simulation};

struct Sleeper {
    n: usize,
    dt: SimTime,
}

impl Process for Sleeper {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.n == 0 {
            return Block::Done;
        }
        self.n -= 1;
        Block::Delay(self.dt)
    }
}

struct Worker {
    server: cumf_des::ServerId,
    rounds: usize,
    started: bool,
}

impl Process for Worker {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.started {
            self.rounds -= 1;
            if self.rounds == 0 {
                return Block::Done;
            }
        }
        self.started = true;
        Block::Service {
            server: self.server,
            hold: SimTime::from_secs(0.25),
        }
    }
}

fn counter_value(snapshot: &[cumf_obs::MetricSnapshot], name: &str) -> u64 {
    match snapshot
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("metric {name} not registered"))
        .value
    {
        cumf_obs::SnapshotValue::Counter(v) => v,
        ref other => panic!("{name} is not a counter: {other:?}"),
    }
}

#[test]
fn des_probes_attribute_the_event_loop() {
    cumf_obs::set_enabled(true);
    cumf_obs::reset();

    let mut sim = Simulation::new();
    let server = sim.add_server("gpu", 1);
    for _ in 0..4 {
        sim.spawn(Box::new(Worker {
            server,
            rounds: 2,
            started: false,
        }));
    }
    sim.spawn(Box::new(Sleeper {
        n: 8,
        dt: SimTime::from_secs(0.5),
    }));
    let report = sim.run(None);
    assert!(report.events > 0);

    let snapshot = cumf_obs::registry().snapshot();
    let resumes = counter_value(&snapshot, "cumf_des_dequeue_resume_total");
    let server_dones = counter_value(&snapshot, "cumf_des_dequeue_server_done_total");
    assert!(resumes > 0, "resume dequeues must be counted");
    assert_eq!(server_dones, 8, "4 workers x 2 service rounds");
    // Per-type counts partition the total event count.
    let link_ticks = counter_value(&snapshot, "cumf_des_dequeue_link_tick_total");
    assert_eq!(resumes + server_dones + link_ticks, report.events);

    // Dwell histogram saw every dequeue; occupancy gauge ends at zero
    // (the calendar drained).
    let dwell = snapshot
        .iter()
        .find(|m| m.name == "cumf_des_event_dwell_seconds")
        .expect("dwell histogram registered");
    match &dwell.value {
        cumf_obs::SnapshotValue::Histogram { count, sum, .. } => {
            assert_eq!(*count, report.events);
            assert!(*sum > 0.0, "contended server must produce nonzero dwell");
        }
        other => panic!("dwell is not a histogram: {other:?}"),
    }
    let occupancy = snapshot
        .iter()
        .find(|m| m.name == "cumf_des_queue_occupancy")
        .expect("occupancy gauge registered");
    match occupancy.value {
        cumf_obs::SnapshotValue::Gauge(v) => assert_eq!(v, 0.0),
        ref other => panic!("occupancy is not a gauge: {other:?}"),
    }

    // The run produced a wall `des/run` span, and the profiler names
    // the contended server's sim-time service spans.
    let table = cumf_obs::profile_table();
    assert!(table.contains("des/run"), "missing des/run span:\n{table}");
    assert!(
        table.contains("des/service:gpu"),
        "missing service span:\n{table}"
    );

    // Probes stay out of the way when observability is off: a fresh
    // run with obs disabled must not move the counters.
    cumf_obs::set_enabled(false);
    let mut quiet = Simulation::new();
    quiet.spawn(Box::new(Sleeper {
        n: 4,
        dt: SimTime::from_secs(1.0),
    }));
    quiet.run(None);
    let after = cumf_obs::registry().snapshot();
    assert_eq!(
        counter_value(&after, "cumf_des_dequeue_resume_total"),
        resumes,
        "disabled run must not record"
    );
}
