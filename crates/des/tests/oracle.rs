//! Differential oracle: the calendar/arena [`EventQueue`] must be
//! observationally indistinguishable from the retained binary-heap
//! reference ([`HeapQueue`]).
//!
//! Each scenario drives both queues through the same randomized script of
//! schedule/pop/cancel/peek operations and asserts **bit-identical** pop
//! order (time and payload), identical peek times, and identical
//! exhaustion. Scripts cover the workload shapes the GPU models produce:
//! heavy time-clustering, uniform spread, adversarial same-timestamp
//! bursts, and cancel-heavy link-retiming patterns — plus stale-handle
//! abuse to pin down `EventId` stability under slot reuse.

use cumf_des::reference::{HeapEventId, HeapQueue};
use cumf_des::{EventId, EventQueue, SimTime};
use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

/// How a scenario draws the next event time, given the current head time.
#[derive(Clone, Copy)]
enum TimePattern {
    /// Bursts of equal timestamps on a coarse grid (GPU wavefronts).
    Clustered,
    /// Uniform over a wide horizon.
    Uniform,
    /// Everything at one single timestamp (pure FIFO stress).
    SameInstant,
    /// Exponential-ish spread over ten decades (forces re-windowing).
    Sparse,
}

fn draw_time(rng: &mut ChaCha8Rng, pattern: TimePattern, base: f64) -> SimTime {
    let t = match pattern {
        TimePattern::Clustered => base + (rng.gen_range(0..64u32) as f64) * 1e-6,
        TimePattern::Uniform => base + rng.gen_range(0.0..1e-2),
        TimePattern::SameInstant => 1.0,
        TimePattern::Sparse => base + 10f64.powf(rng.gen_range(-6.0..4.0)),
    };
    SimTime::from_secs(t)
}

/// Drives both queues through one randomized script and asserts they are
/// indistinguishable step by step.
fn run_differential(seed: u64, pattern: TimePattern, cancel_pct: u32, ops: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: HeapQueue<u64> = HeapQueue::new();
    // Every handle pair ever issued — including fired/cancelled ones, so
    // cancels hit stale ids too (both queues must treat those as no-ops).
    let mut handles: Vec<(EventId, HeapEventId)> = Vec::new();
    let mut next_tag = 0u64;
    let mut base = 0.0f64;

    for _ in 0..ops {
        match rng.gen_range(0..100u32) {
            // Schedule (with a small bias so queues stay populated).
            0..=54 => {
                let time = draw_time(&mut rng, pattern, base);
                let tag = next_tag;
                next_tag += 1;
                let a = new_q.schedule(time, tag);
                let b = ref_q.schedule(time, tag);
                handles.push((a, b));
            }
            // Pop: results must match bit for bit.
            55..=84 => {
                let got = new_q.pop();
                let want = ref_q.pop();
                assert_eq!(got, want, "pop diverged (seed {seed})");
                if let Some((t, _)) = got {
                    base = t.as_secs();
                }
            }
            // Cancel a random handle, live or stale.
            _ if cancel_pct > 0 && !handles.is_empty() => {
                let k = rng.gen_range(0..handles.len());
                let (a, b) = handles[k];
                new_q.cancel(a);
                ref_q.cancel(b);
            }
            // Peek: head times must match.
            _ => {
                assert_eq!(
                    new_q.peek_time(),
                    ref_q.peek_time(),
                    "peek diverged (seed {seed})"
                );
            }
        }
    }

    // Drain to exhaustion: the tails must match too.
    loop {
        let got = new_q.pop();
        let want = ref_q.pop();
        assert_eq!(got, want, "drain diverged (seed {seed})");
        if got.is_none() {
            break;
        }
    }
    assert!(new_q.is_empty() && ref_q.is_empty());
}

#[test]
fn clustered_schedules_match_the_heap_oracle() {
    for seed in 0..8 {
        run_differential(1000 + seed, TimePattern::Clustered, 10, 4_000);
    }
}

#[test]
fn uniform_schedules_match_the_heap_oracle() {
    for seed in 0..8 {
        run_differential(2000 + seed, TimePattern::Uniform, 10, 4_000);
    }
}

#[test]
fn same_instant_bursts_match_the_heap_oracle() {
    // Pure FIFO: every event at the same timestamp, order decided solely
    // by the monotonic sequence number.
    for seed in 0..8 {
        run_differential(3000 + seed, TimePattern::SameInstant, 10, 4_000);
    }
}

#[test]
fn sparse_far_future_schedules_match_the_heap_oracle() {
    // Ten decades of time spread: exercises window re-anchoring and
    // bucket-width adaptation against the oracle.
    for seed in 0..8 {
        run_differential(4000 + seed, TimePattern::Sparse, 10, 4_000);
    }
}

#[test]
fn cancel_heavy_schedules_match_the_heap_oracle() {
    // Link-retiming shape: a third of all operations are cancellations,
    // many of them aimed at already-fired (stale) handles.
    for seed in 0..8 {
        run_differential(5000 + seed, TimePattern::Clustered, 34, 4_000);
    }
}

/// `EventId` stability: a handle must keep denoting the event it was
/// issued for — never a later tenant of a recycled slot. The heap oracle
/// gets this for free (ids are sequence numbers); the arena must match.
#[test]
fn event_ids_stay_stable_under_slot_reuse() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: HeapQueue<u64> = HeapQueue::new();
    let mut retired: Vec<(EventId, HeapEventId)> = Vec::new();

    for round in 0..2_000u64 {
        // One event in, one event out: maximal slot recycling pressure.
        let time = SimTime::from_secs(round as f64 * 1e-6);
        let pair = (new_q.schedule(time, round), ref_q.schedule(time, round));
        // Hammer stale handles before every pop; none may disturb the
        // new tenant of the recycled slot.
        for _ in 0..3 {
            if retired.is_empty() {
                break;
            }
            let k = rng.gen_range(0..retired.len());
            new_q.cancel(retired[k].0);
            ref_q.cancel(retired[k].1);
        }
        assert_eq!(new_q.pop(), ref_q.pop(), "round {round}");
        retired.push(pair);
    }
    assert!(new_q.is_empty() && ref_q.is_empty());
}
