//! Randomized property tests for `cumf_des::SmallDeque` against a
//! `VecDeque` oracle.
//!
//! The deadlock/liveness certifier in `cumf-analyze` leans on the FIFO
//! contract of the resource waiter lists: a waiter's position strictly
//! decreases on every grant, and withdrawing a waiter (`cancel`) never
//! perturbs anyone else's relative order. These tests drive randomized
//! push/pop/cancel scripts across the inline→spill boundary for several
//! inline capacities and seeds, checking the queue agrees with the
//! oracle element-for-element at every step (same convention as
//! `tests/oracle.rs`: deterministic ChaCha8 scripts, no flakiness).

use std::collections::VecDeque;

use cumf_des::SmallDeque;
use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

/// Drives one randomized script against both queues, checking len,
/// front, and pop results at every step, then drains and compares the
/// full remaining order.
fn run_script<const N: usize>(seed: u64, steps: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut q: SmallDeque<u32, N> = SmallDeque::new();
    let mut oracle: VecDeque<u32> = VecDeque::new();
    let mut next = 0u32;

    for step in 0..steps {
        match rng.gen_range(0u32..10) {
            // Weighted towards pushes so the spill boundary is crossed
            // and re-crossed many times per script.
            0..=4 => {
                q.push_back(next);
                oracle.push_back(next);
                next += 1;
            }
            5..=7 => {
                assert_eq!(
                    q.pop_front(),
                    oracle.pop_front(),
                    "N={N} seed={seed} step={step}: pop disagrees"
                );
            }
            8 => {
                // Cancel an element currently queued (when non-empty):
                // any position — ring head, ring tail, spill.
                if !oracle.is_empty() {
                    let idx = rng.gen_range(0usize..oracle.len());
                    let target = oracle[idx];
                    assert!(
                        q.cancel(&target),
                        "N={N} seed={seed} step={step}: present element not cancelled"
                    );
                    oracle.remove(idx);
                }
            }
            _ => {
                // Cancel an element that is definitely absent: both
                // queues must be untouched.
                assert!(
                    !q.cancel(&u32::MAX),
                    "N={N} seed={seed} step={step}: cancelled a ghost"
                );
            }
        }
        assert_eq!(
            q.len(),
            oracle.len(),
            "N={N} seed={seed} step={step}: len disagrees"
        );
        assert_eq!(
            q.front(),
            oracle.front(),
            "N={N} seed={seed} step={step}: front disagrees"
        );
    }

    let drained: Vec<u32> = std::iter::from_fn(|| q.pop_front()).collect();
    let expected: Vec<u32> = std::iter::from_fn(|| oracle.pop_front()).collect();
    assert_eq!(
        drained, expected,
        "N={N} seed={seed}: drain order disagrees"
    );
    assert!(q.is_empty());
}

#[test]
fn fifo_preserved_across_spill_boundary_randomized() {
    for seed in 0..12 {
        run_script::<2>(seed, 400);
        run_script::<3>(seed, 400);
        run_script::<4>(seed, 400);
    }
}

#[test]
fn long_scripts_return_to_inline_operation() {
    // Longer scripts with a small ring: the queue repeatedly spills and
    // fully drains, exercising the spill→inline migration path.
    for seed in 100..106 {
        run_script::<2>(seed, 3_000);
    }
}

#[test]
fn cancel_only_scripts_empty_both_queues_identically() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut q: SmallDeque<u32, 3> = SmallDeque::new();
    let mut oracle: VecDeque<u32> = VecDeque::new();
    for i in 0..40 {
        q.push_back(i);
        oracle.push_back(i);
    }
    // Cancel every element one by one in random order; the survivors'
    // relative order must match the oracle's after every removal.
    while !oracle.is_empty() {
        let idx = rng.gen_range(0usize..oracle.len());
        let target = oracle[idx];
        assert!(q.cancel(&target));
        oracle.remove(idx);
        assert_eq!(q.len(), oracle.len());
        assert_eq!(q.front(), oracle.front());
    }
    assert!(q.is_empty());
}
