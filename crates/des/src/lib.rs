//! # cumf-des — discrete-event simulation engine
//!
//! A small, deterministic discrete-event simulation (DES) kernel. It is the
//! substrate beneath the GPU machine model (`cumf-gpu-sim`) and the NOMAD
//! cluster model in this workspace, but it is fully generic: processes,
//! FCFS servers, processor-sharing bandwidth links, and keyed locks.
//!
//! ## Why a DES?
//!
//! The cuMF_SGD paper (HPDC'17) explains every throughput result with
//! queueing arguments: SGD-MF is memory-bound (roofline), LIBMF's global
//! scheduling table is a contended critical section that saturates at ~30
//! workers, NOMAD is bottlenecked by network bandwidth, and multi-GPU
//! cuMF_SGD overlaps PCIe transfers with compute. A DES lets us reproduce
//! those behaviours from first principles — contention, sharing, and
//! pipelining *emerge* from the model rather than being curve-fit.
//!
//! ## Model
//!
//! * A [`Simulation`] owns a clock, an event calendar, resources, and
//!   processes.
//! * A [`Process`] is an explicit state machine. Each `resume` returns a
//!   [`Block`] describing what it waits for next: a delay, an FCFS service,
//!   a bandwidth transfer, or a keyed lock.
//! * Simultaneous events fire in FIFO scheduling order, so runs are fully
//!   deterministic.
//!
//! ```
//! use cumf_des::{Block, Ctx, Process, SimTime, Simulation};
//!
//! struct Worker { left: usize, link: cumf_des::LinkId }
//! impl Process for Worker {
//!     fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
//!         if self.left == 0 { return Block::Done; }
//!         self.left -= 1;
//!         Block::Transfer { link: self.link, bytes: 1e6 }
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! let dram = sim.add_link("dram", 360e9); // 360 GB/s
//! for _ in 0..4 {
//!     sim.spawn(Box::new(Worker { left: 100, link: dram }));
//! }
//! let report = sim.run(None);
//! assert!(report.link("dram").unwrap().bytes_transferred == 4.0 * 100.0 * 1e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
mod process;
pub mod reference;
mod resource;
pub mod smallq;
pub mod stats;
mod time;

pub use engine::{RunReport, Simulation};
pub use event::{EventId, EventQueue};
pub use process::{Block, Ctx, Pid, Process};
pub use resource::{LinkId, LockId, ResourceKind, ResourceNode, ServerId};
pub use smallq::SmallDeque;
pub use stats::{LinkStats, LockStats, LogHistogram, ServerStats, Tally, TimeWeighted};
pub use time::SimTime;
