//! Inline small-capacity FIFO deque for resource waiter lists.
//!
//! Resource wait queues in this workspace are almost always 0–4 deep (a
//! handful of workers contending for a server or a keyed lock), so a
//! heap-backed `VecDeque` pays an allocation for every contended resource.
//! [`SmallDeque`] keeps the first `N` elements in an inline ring buffer of
//! `Option<T>` — no `unsafe`, per the crate's `forbid(unsafe_code)` — and
//! spills to a `VecDeque` only past `N`. Once the spill drains the queue
//! returns to fully-inline operation (the spill's allocation is kept for
//! reuse), so steady-state push/pop never touches the allocator.
//!
//! Invariant: the spill is non-empty only while the ring is full, so FIFO
//! order is ring-front → ring-back → spill-front → spill-back. This FIFO
//! contract is what the `cumf-analyze` liveness pass leans on: a waiter's
//! queue position strictly decreases on every grant, so every waiter is
//! eventually dequeued (and [`SmallDeque::cancel`] — used to withdraw a
//! waiter, e.g. when a watchdog abandons a wait — preserves the relative
//! order of everyone else).

use std::collections::VecDeque;

/// A FIFO deque storing up to `N` elements inline.
#[derive(Debug)]
pub struct SmallDeque<T, const N: usize> {
    /// Ring index of the front element.
    head: usize,
    /// Number of elements in the inline ring.
    inline_len: usize,
    ring: [Option<T>; N],
    spill: VecDeque<T>,
}

impl<T, const N: usize> Default for SmallDeque<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> SmallDeque<T, N> {
    /// An empty deque (no heap allocation until the `N+1`-th element).
    pub fn new() -> Self {
        SmallDeque {
            head: 0,
            inline_len: 0,
            ring: std::array::from_fn(|_| None),
            spill: VecDeque::new(),
        }
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `value` at the back (FIFO tail).
    pub fn push_back(&mut self, value: T) {
        if self.inline_len < N && self.spill.is_empty() {
            let idx = (self.head + self.inline_len) % N;
            debug_assert!(self.ring[idx].is_none());
            self.ring[idx] = Some(value);
            self.inline_len += 1;
        } else {
            self.spill.push_back(value);
        }
    }

    /// Removes and returns the front (oldest) element.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.inline_len == 0 {
            debug_assert!(self.spill.is_empty());
            return None;
        }
        let value = self.ring[self.head].take();
        debug_assert!(value.is_some());
        self.head = (self.head + 1) % N;
        self.inline_len -= 1;
        // Migrate one spilled element to keep the invariant (spill
        // non-empty ⇒ ring full) and preserve FIFO order.
        if let Some(migrant) = self.spill.pop_front() {
            let idx = (self.head + self.inline_len) % N;
            self.ring[idx] = Some(migrant);
            self.inline_len += 1;
        }
        value
    }

    /// A reference to the front (oldest) element.
    pub fn front(&self) -> Option<&T> {
        if self.inline_len == 0 {
            return None;
        }
        self.ring[self.head].as_ref()
    }

    /// Removes the first element equal to `target`, preserving the FIFO
    /// order of everything else. Returns `true` if an element was
    /// removed. This is the waiter-withdrawal operation: a process that
    /// gives up on a resource (watchdog timeout, cancelled request)
    /// leaves the queue without perturbing anyone else's position.
    pub fn cancel(&mut self, target: &T) -> bool
    where
        T: PartialEq,
    {
        for i in 0..self.inline_len {
            let idx = (self.head + i) % N;
            if self.ring[idx].as_ref() == Some(target) {
                // Shift the ring tail forward one slot over the hole.
                for j in i..self.inline_len - 1 {
                    let from = (self.head + j + 1) % N;
                    let to = (self.head + j) % N;
                    self.ring[to] = self.ring[from].take();
                }
                // When i == inline_len - 1 the loop above is empty and
                // the matched slot itself must be vacated.
                let last = (self.head + self.inline_len - 1) % N;
                self.ring[last] = None;
                self.inline_len -= 1;
                // Re-establish the invariant (spill non-empty ⇒ ring full).
                if let Some(migrant) = self.spill.pop_front() {
                    let idx = (self.head + self.inline_len) % N;
                    self.ring[idx] = Some(migrant);
                    self.inline_len += 1;
                }
                return true;
            }
        }
        if let Some(pos) = self.spill.iter().position(|v| v == target) {
            self.spill.remove(pos);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_inline_capacity() {
        let mut q: SmallDeque<u32, 4> = SmallDeque::new();
        assert!(q.is_empty());
        for i in 0..4 {
            q.push_back(i);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.front(), Some(&0));
        for i in 0..4 {
            assert_eq!(q.pop_front(), Some(i));
        }
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn fifo_across_spill_boundary() {
        let mut q: SmallDeque<u32, 2> = SmallDeque::new();
        for i in 0..100 {
            q.push_back(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.front(), Some(&i));
            assert_eq!(q.pop_front(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_wraps_the_ring() {
        let mut q: SmallDeque<u32, 3> = SmallDeque::new();
        let mut next = 0u32;
        let mut expect = 0u32;
        for round in 0..50 {
            for _ in 0..(round % 5) {
                q.push_back(next);
                next += 1;
            }
            for _ in 0..(round % 3) {
                if let Some(v) = q.pop_front() {
                    assert_eq!(v, expect);
                    expect += 1;
                }
            }
        }
        while let Some(v) = q.pop_front() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn returns_to_inline_after_spill_drains() {
        let mut q: SmallDeque<u32, 2> = SmallDeque::new();
        for i in 0..10 {
            q.push_back(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop_front(), Some(i));
        }
        // Back inline: pushes land in the ring, not the spill.
        q.push_back(42);
        assert_eq!(q.spill.len(), 0);
        assert_eq!(q.pop_front(), Some(42));
    }

    #[test]
    fn cancel_preserves_fifo_of_the_rest() {
        let mut q: SmallDeque<u32, 3> = SmallDeque::new();
        for i in 0..8 {
            q.push_back(i); // 0..2 inline, 3..7 spilled
        }
        assert!(q.cancel(&1)); // from the ring
        assert!(q.cancel(&5)); // from the spill
        assert!(!q.cancel(&99));
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop_front()).collect();
        assert_eq!(drained, vec![0, 2, 3, 4, 6, 7]);
    }

    #[test]
    fn cancel_last_ring_element_restores_invariant() {
        let mut q: SmallDeque<u32, 2> = SmallDeque::new();
        for i in 0..4 {
            q.push_back(i); // ring [0, 1], spill [2, 3]
        }
        // Cancel the ring's back element: the hole must be filled from
        // the spill so the spill-nonempty ⇒ ring-full invariant holds.
        assert!(q.cancel(&1));
        assert_eq!(q.len(), 3);
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop_front()).collect();
        assert_eq!(drained, vec![0, 2, 3]);
    }
}
