//! Reference future-event list, kept as a differential oracle.
//!
//! This is the pre-arena `BinaryHeap` implementation that
//! [`crate::EventQueue`] replaced: a classic min-heap ordered by
//! `(time, seq)` with lazy cancellation. It is retained verbatim so the
//! oracle test can drive both queues over randomized schedules and assert
//! **bit-identical pop order** — the determinism contract of the calendar
//! queue is "indistinguishable from this heap".
//!
//! Not used by any simulation; only tests and benches should touch it.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying an event scheduled on a [`HeapQueue`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HeapEventId(u64);

/// An entry in the future-event list carrying a caller-defined payload.
#[derive(Debug)]
struct Entry<P> {
    time: SimTime,
    seq: u64,
    payload: P,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The reference queue: a deterministic binary heap of timed payloads with
/// the same observable contract as [`crate::EventQueue`] (ascending
/// `(time, schedule order)` pops, no-op cancellation of fired events).
#[derive(Debug)]
pub struct HeapQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    next_seq: u64,
    // Cancelled event ids; lazily dropped when popped.
    cancelled: Vec<u64>,
}

impl<P> Default for HeapQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> HeapQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: P) -> HeapEventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        HeapEventId(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op for pop order (the id lingers in
    /// the side list — the O(c) growth that motivated the arena rewrite).
    pub fn cancel(&mut self, id: HeapEventId) {
        self.cancelled.push(id.0);
    }

    /// Pops the earliest non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, P)> {
        while let Some(entry) = self.heap.pop() {
            if self.take_cancelled(entry.seq) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily discard cancelled entries from the top.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.take_cancelled(seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    fn take_cancelled(&mut self, seq: u64) -> bool {
        if let Some(pos) = self.cancelled.iter().position(|&c| c == seq) {
            self.cancelled.swap_remove(pos);
            true
        } else {
            false
        }
    }
}
