//! Future-event list.
//!
//! A classic discrete-event calendar: a min-heap ordered by `(time, seq)`.
//! The monotonically increasing sequence number gives **stable FIFO
//! tie-breaking** for simultaneous events, which makes every simulation in
//! this workspace fully deterministic for a given input.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// An entry in the future-event list carrying a caller-defined payload.
#[derive(Debug)]
struct Entry<P> {
    time: SimTime,
    seq: u64,
    payload: P,
    cancelled: bool,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The future-event list: a deterministic priority queue of timed payloads.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    next_seq: u64,
    // Cancelled event ids; lazily dropped when popped. Kept sorted-free in a
    // small vec because cancellations are rare in our models.
    cancelled: Vec<u64>,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: P) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            payload,
            cancelled: false,
        });
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.push(id.0);
    }

    /// Pops the earliest non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, P)> {
        while let Some(entry) = self.heap.pop() {
            if entry.cancelled || self.take_cancelled(entry.seq) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily discard cancelled entries from the top.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.take_cancelled(seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of pending (possibly including lazily-cancelled) events.
    // `is_empty` takes `&mut self` (it sweeps lazily-cancelled entries),
    // which clippy's len_without_is_empty does not recognise.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    fn take_cancelled(&mut self, seq: u64) -> bool {
        if let Some(pos) = self.cancelled.iter().position(|&c| c == seq) {
            self.cancelled.swap_remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(1.0), i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
        // Double-cancel is a no-op.
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_earliest_live_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(5.0), "b");
        assert_eq!(q.peek_time(), Some(t(1.0)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
    }
}
