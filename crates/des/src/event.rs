//! Future-event list: a generational slab arena of payloads driven by a
//! calendar/ladder-queue hybrid scheduler.
//!
//! ## Shape
//!
//! Payloads live in a **slab arena**: a `Vec` of slots recycled through a
//! free list. [`EventId`] is `(slot index, generation)`, so a stale handle
//! (fired or cancelled, slot possibly re-used) can never reach the wrong
//! event — cancellation is an O(1) generation-checked tombstone write, and
//! steady-state scheduling re-uses slots without touching the allocator.
//!
//! The schedule itself is split across four rungs, ordered in time:
//!
//! 1. **run** — the currently draining bucket, sorted ascending by
//!    `(time, seq)` and consumed through a cursor;
//! 2. **early** — a small binary heap for events inserted *behind* the
//!    activation frontier (same-instant cascades: lock hand-offs,
//!    zero-delay resumes);
//! 3. **buckets** — `NUM_BUCKETS` near-future calendar buckets of width
//!    `width` starting at `win_lo`; an insert into bucket `i` is O(1),
//!    and a bucket is sorted once when it becomes the run;
//! 4. **far** — a binary-heap overflow rung for events beyond the window
//!    horizon; they migrate into buckets when the window re-anchors.
//!
//! ## Determinism
//!
//! Every `schedule` call draws a monotonically increasing sequence
//! number, and `pop` always returns the pending event with the smallest
//! `(time, seq)` key. Since `seq` is unique this key is a total order, so
//! the pop sequence is *exactly* ascending `(time, seq)` — simultaneous
//! events fire in FIFO schedule order, and the pop order is bit-identical
//! to the retained binary-heap oracle ([`crate::reference::HeapQueue`])
//! whatever the bucket geometry does. The rungs only partition the
//! pending set by time range (early < run < buckets < far, proved by the
//! monotonicity of `⌊(t − win_lo)/width⌋` in `t`); bucket width
//! adaptation happens only while all buckets are empty, so the partition
//! argument holds at every pop.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Number of near-future calendar buckets.
const NUM_BUCKETS: usize = 256;
/// Initial bucket width in simulated seconds (1 µs, the natural scale of
/// the GPU-model events). Adapted online; see [`EventQueue::rewindow`].
const INITIAL_WIDTH: f64 = 1e-6;
/// Bucket-width adaptation clamp.
const MIN_WIDTH: f64 = 1e-12;
/// Bucket-width adaptation clamp.
const MAX_WIDTH: f64 = 1e6;
/// Free-list terminator.
const NO_SLOT: u32 = u32::MAX;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// Handles are *generational*: once the event fires or is cancelled its
/// slot may be recycled, but the stale handle keeps pointing at the old
/// generation and any use of it is a checked no-op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    index: u32,
    generation: u32,
}

/// Arena slot payload state.
#[derive(Debug)]
enum SlotState<P> {
    /// Scheduled and live. The `(time, seq)` ordering key travels with
    /// the calendar entry, not the slot.
    Occupied { payload: P },
    /// Cancelled; the calendar entry is still pending and is swept (and
    /// the slot freed) when it surfaces.
    Tombstone,
    /// On the free list.
    Free { next_free: u32 },
}

#[derive(Debug)]
struct Slot<P> {
    generation: u32,
    state: SlotState<P>,
}

/// A calendar entry: 20 bytes, `Copy`, payload left behind in the arena.
#[derive(Clone, Copy, Debug)]
struct QEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl QEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
// BinaryHeap is a max-heap; invert the ordering so `peek` is the
// earliest `(time, seq)` (used by both the `early` and `far` rungs).
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Which rung currently holds the head entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Src {
    Run,
    Early,
}

/// The future-event list: a deterministic priority queue of timed payloads.
///
/// See the module docs for the arena/calendar architecture. The public
/// contract is unchanged from the classic binary-heap implementation
/// (retained as [`crate::reference::HeapQueue`]): pops come out in
/// ascending `(time, schedule order)`.
#[derive(Debug)]
pub struct EventQueue<P> {
    // ---- payload arena ----
    slots: Vec<Slot<P>>,
    free_head: u32,
    next_seq: u64,
    /// Live (scheduled, not cancelled, not fired) events — `len()`.
    live: usize,
    /// Entries still queued in some rung, including tombstones.
    pending_entries: usize,

    // ---- scheduler rungs ----
    run: Vec<QEntry>,
    run_pos: usize,
    /// Memo of the last `head()` result, so the engine's peek-then-pop
    /// pattern seeks the head once per event. Invalidated by anything
    /// that can change the head (schedule, cancel, consume).
    head_cache: Option<(Src, QEntry)>,
    early: BinaryHeap<QEntry>,
    buckets: Vec<Vec<QEntry>>,
    /// Next bucket to activate; buckets below it are empty.
    cursor: usize,
    /// Simulated time at the start of bucket 0's window.
    win_lo: f64,
    /// Bucket width in simulated seconds. Only mutated while every
    /// bucket is empty (see the module docs' determinism argument).
    width: f64,
    /// Cached `1.0 / width`: routing multiplies instead of dividing.
    /// Updated in lockstep with `width`, so every routing decision in a
    /// window uses the identical predicate.
    inv_width: f64,
    far: BinaryHeap<QEntry>,

    // ---- width-adaptation statistics for the draining window ----
    stat_far_routed: u32,
    stat_bucket_routed: u32,
    stat_max_idx: usize,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NO_SLOT,
            next_seq: 0,
            live: 0,
            pending_entries: 0,
            run: Vec::new(),
            run_pos: 0,
            head_cache: None,
            early: BinaryHeap::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: NUM_BUCKETS,
            win_lo: 0.0,
            width: INITIAL_WIDTH,
            inv_width: 1.0 / INITIAL_WIDTH,
            far: BinaryHeap::new(),
            stat_far_routed: 0,
            stat_bucket_routed: 0,
            stat_max_idx: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// ## FIFO tie-breaking contract
    ///
    /// Events scheduled for the *same* `time` fire in **schedule order**:
    /// each call draws a monotonically increasing sequence number and
    /// [`pop`](Self::pop) returns pending events in ascending
    /// `(time, seq)`. Every simulation in this workspace relies on that
    /// order for determinism (simultaneous resumes, lock hand-offs,
    /// watchdog races), so it is a stable contract, exercised by the
    /// differential oracle test against
    /// [`crate::reference::HeapQueue`].
    pub fn schedule(&mut self, time: SimTime, payload: P) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(payload);
        let id = EventId {
            index: slot,
            generation: self.slots[slot as usize].generation,
        };
        if self.pending_entries == 0 {
            // Structurally empty: re-anchor the calendar window on this
            // event so it lands in bucket 0 whatever its absolute time.
            self.win_lo = time.as_secs();
            self.cursor = 0;
            self.stat_far_routed = 0;
            self.stat_bucket_routed = 0;
            self.stat_max_idx = 0;
        }
        self.live += 1;
        self.pending_entries += 1;
        self.head_cache = None;
        self.insert(QEntry { time, seq, slot });
        id
    }

    /// Cancels a previously scheduled event in O(1). Cancelling an
    /// already-fired or already-cancelled event is a no-op — the
    /// generation check makes stale handles harmless even after the
    /// slot has been recycled for a newer event.
    pub fn cancel(&mut self, id: EventId) {
        let Some(slot) = self.slots.get_mut(id.index as usize) else {
            return;
        };
        if slot.generation != id.generation {
            return;
        }
        if matches!(slot.state, SlotState::Occupied { .. }) {
            // Drops the payload now; the calendar entry is swept lazily.
            slot.state = SlotState::Tombstone;
            self.live -= 1;
            self.head_cache = None;
        }
    }

    /// Pops the earliest non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, P)> {
        let (src, entry) = self.head()?;
        self.consume(src);
        let state = std::mem::replace(
            &mut self.slots[entry.slot as usize].state,
            SlotState::Tombstone,
        );
        let SlotState::Occupied { payload } = state else {
            unreachable!("head() returns only occupied slots");
        };
        self.free_slot(entry.slot);
        self.live -= 1;
        Some((entry.time, payload))
    }

    /// Time of the earliest pending event without removing it. Sweeps
    /// lazily-cancelled entries off the head as a side effect.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.head().map(|(_, e)| e.time)
    }

    /// Number of live (scheduled, not cancelled, not fired) events.
    // `is_empty` takes `&mut self` (it sweeps lazily-cancelled entries),
    // which clippy's len_without_is_empty does not recognise.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    // ---------------------------------------------------------- arena

    fn alloc_slot(&mut self, payload: P) -> u32 {
        if self.free_head != NO_SLOT {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            let SlotState::Free { next_free } = slot.state else {
                unreachable!("free list points at a non-free slot");
            };
            self.free_head = next_free;
            slot.state = SlotState::Occupied { payload };
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("event arena exceeds u32 slots");
            self.slots.push(Slot {
                generation: 0,
                state: SlotState::Occupied { payload },
            });
            idx
        }
    }

    /// Returns a consumed slot to the free list, invalidating all
    /// outstanding handles to it by bumping the generation.
    fn free_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.generation = slot.generation.wrapping_add(1);
        slot.state = SlotState::Free {
            next_free: self.free_head,
        };
        self.free_head = idx;
        self.pending_entries -= 1;
    }

    // ------------------------------------------------------ scheduler

    /// Routes one entry to its rung. The predicate `rel = (t − win_lo) /
    /// width` is shared by every routing decision, so an entry's rung is
    /// a pure function of its time and the current window geometry.
    fn insert(&mut self, e: QEntry) {
        let rel = (e.time.as_secs() - self.win_lo) * self.inv_width;
        if rel >= NUM_BUCKETS as f64 {
            self.stat_far_routed += 1;
            self.far.push(e);
        } else if rel < self.cursor as f64 {
            // Behind the activation frontier: the early rung keeps it
            // ahead of every bucket (rel monotone in t ⇒ its time is
            // strictly below anything still in a bucket).
            self.early.push(e);
        } else {
            let idx = rel as usize;
            self.stat_bucket_routed += 1;
            self.stat_max_idx = self.stat_max_idx.max(idx);
            self.buckets[idx].push(e);
        }
    }

    /// Ensures the head entry (smallest `(time, seq)`) is live and
    /// returns it with its rung, sweeping tombstones off the top.
    fn head(&mut self) -> Option<(Src, QEntry)> {
        if let Some(head) = self.head_cache {
            return Some(head);
        }
        loop {
            let run_head = self.run.get(self.run_pos).copied();
            let early_head = self.early.peek().copied();
            let (src, entry) = match (run_head, early_head) {
                (Some(r), Some(e)) => {
                    if r.key() <= e.key() {
                        (Src::Run, r)
                    } else {
                        (Src::Early, e)
                    }
                }
                (Some(r), None) => (Src::Run, r),
                (None, Some(e)) => (Src::Early, e),
                (None, None) => {
                    if !self.refill() {
                        return None;
                    }
                    continue;
                }
            };
            match self.slots[entry.slot as usize].state {
                SlotState::Occupied { .. } => {
                    self.head_cache = Some((src, entry));
                    return Some((src, entry));
                }
                SlotState::Tombstone => {
                    self.consume(src);
                    self.free_slot(entry.slot);
                }
                SlotState::Free { .. } => unreachable!("queued entry points at a free slot"),
            }
        }
    }

    /// Removes the head entry from its rung (the payload slot is the
    /// caller's responsibility).
    fn consume(&mut self, src: Src) {
        self.head_cache = None;
        match src {
            Src::Run => {
                self.run_pos += 1;
                if self.run_pos == self.run.len() {
                    // Keep the allocation for the next activated bucket.
                    self.run.clear();
                    self.run_pos = 0;
                }
            }
            Src::Early => {
                self.early.pop();
            }
        }
    }

    /// Activates the next non-empty bucket as the run, or re-anchors the
    /// window from the far rung. Returns false when nothing is pending.
    fn refill(&mut self) -> bool {
        while self.cursor < NUM_BUCKETS {
            let idx = self.cursor;
            self.cursor += 1;
            if !self.buckets[idx].is_empty() {
                debug_assert!(self.run.is_empty());
                // Copy out rather than swap: capacities stay put, so the
                // run converges to the global peak occupancy and each
                // bucket to its own — after warmup neither reallocates.
                self.run.extend_from_slice(&self.buckets[idx]);
                self.buckets[idx].clear();
                self.run_pos = 0;
                // Unstable sort is allocation-free, and `seq` uniqueness
                // makes the (time, seq) key a total order, so stability
                // is irrelevant.
                self.run.sort_unstable_by_key(|a| a.key());
                return true;
            }
        }
        self.rewindow()
    }

    /// Re-anchors the calendar window on the earliest far event and
    /// migrates everything within the new window into buckets. Runs only
    /// when run, early and all buckets are drained, which is the one
    /// moment bucket width may change without perturbing pop order.
    fn rewindow(&mut self) -> bool {
        let Some(top) = self.far.peek() else {
            return false;
        };
        // Width adaptation from the window that just drained: widen while
        // a non-trivial share (> ~10%) of inserts overshot into the far
        // rung — far traffic pays heap costs twice (push + migrate), so
        // the window must cover the workload's typical look-ahead.
        // Tighten only when far went completely unused and the window was
        // mostly empty (over-wide buckets cost sort locality).
        if self.stat_far_routed * 8 > self.stat_bucket_routed {
            self.width = (self.width * 2.0).min(MAX_WIDTH);
        } else if self.stat_far_routed == 0
            && self.stat_bucket_routed > 0
            && self.stat_max_idx < NUM_BUCKETS / 8
        {
            self.width = (self.width * 0.5).max(MIN_WIDTH);
        }
        self.inv_width = 1.0 / self.width;
        self.stat_far_routed = 0;
        self.stat_bucket_routed = 0;
        self.stat_max_idx = 0;

        self.win_lo = top.time.as_secs();
        self.cursor = 0;
        while let Some(top) = self.far.peek() {
            let rel = (top.time.as_secs() - self.win_lo) * self.inv_width;
            if rel >= NUM_BUCKETS as f64 {
                break;
            }
            let e = self.far.pop().expect("peeked entry vanished");
            let idx = (rel as usize).min(NUM_BUCKETS - 1);
            self.stat_bucket_routed += 1;
            self.stat_max_idx = self.stat_max_idx.max(idx);
            self.buckets[idx].push(e);
        }
        debug_assert!(self.stat_bucket_routed > 0, "rewindow moved nothing");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(1.0), i)));
        }
    }

    /// The FIFO tie-breaking contract holds across interleaved
    /// schedule/pop at a single timestamp (the same-instant cascade the
    /// engine produces for lock hand-offs): schedule order == pop order.
    #[test]
    fn ties_break_fifo_interleaved_with_pops() {
        let mut q = EventQueue::new();
        let mut next = 0u32;
        let mut expect = 0u32;
        for _ in 0..8 {
            q.schedule(t(5.0), next);
            next += 1;
        }
        for _ in 0..100 {
            assert_eq!(q.pop(), Some((t(5.0), expect)));
            expect += 1;
            // Two new same-instant events per pop, then drain catches up.
            q.schedule(t(5.0), next);
            next += 1;
            q.schedule(t(5.0), next);
            next += 1;
            q.pop();
            expect += 1;
        }
        while let Some((time, tag)) = q.pop() {
            assert_eq!((time, tag), (t(5.0), expect));
            expect += 1;
        }
        assert_eq!(expect, next);
    }

    /// FIFO order survives events travelling through different rungs:
    /// equal-timestamp events scheduled far apart in queue life still
    /// pop in schedule order.
    #[test]
    fn ties_break_fifo_across_rungs() {
        let mut q = EventQueue::new();
        // Anchor the window early, push the target time into `far`.
        q.schedule(t(0.0), 0);
        for i in 1..=4 {
            q.schedule(t(1000.0), i); // far rung
        }
        assert_eq!(q.pop(), Some((t(0.0), 0)));
        // After draining, the window re-anchors at 1000.0; these land in
        // buckets/run (and `early` once draining starts) instead.
        q.schedule(t(1000.0), 5);
        assert_eq!(q.pop(), Some((t(1000.0), 1)));
        q.schedule(t(1000.0), 6); // behind the frontier → early rung
        for i in 2..=6 {
            assert_eq!(q.pop(), Some((t(1000.0), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
        // Double-cancel is a no-op.
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_earliest_live_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(5.0), "b");
        assert_eq!(q.peek_time(), Some(t(1.0)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
    }

    /// Stale handles stay harmless after their slot is recycled: the
    /// generation check must protect the new tenant.
    #[test]
    fn stale_cancel_cannot_reach_a_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        // The arena reuses a's slot for b.
        let b = q.schedule(t(2.0), "b");
        q.cancel(a); // stale: must NOT cancel b
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        // And a stale cancel of b (now fired) is a no-op too.
        q.cancel(b);
        assert!(q.is_empty());
        // Ids of distinct generations never compare equal.
        assert_ne!(a, b);
    }

    /// Cancelling everything and re-scheduling exercises the re-anchor
    /// path and slot reuse under a drained-but-not-swept calendar.
    #[test]
    fn mass_cancel_then_reuse() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..64).map(|i| q.schedule(t(i as f64), i)).collect();
        for id in ids {
            q.cancel(id);
        }
        assert_eq!(q.len(), 0);
        assert!(q.is_empty()); // sweeps all tombstones
        q.schedule(t(0.5), 999);
        assert_eq!(q.pop(), Some((t(0.5), 999)));
        assert!(q.is_empty());
    }

    /// Events scheduled in the past (behind every pop so far) still pop
    /// first — they ride the early rung.
    #[test]
    fn past_schedule_pops_before_pending_future() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), "later");
        q.schedule(t(9.0), "latest");
        assert_eq!(q.pop(), Some((t(5.0), "later")));
        q.schedule(t(1.0), "past");
        assert_eq!(q.pop(), Some((t(1.0), "past")));
        assert_eq!(q.pop(), Some((t(9.0), "latest")));
    }

    /// Huge time gaps force repeated window re-anchoring and width
    /// adaptation; order must hold throughout.
    #[test]
    fn sparse_far_future_events_pop_in_order() {
        let mut q = EventQueue::new();
        let times: Vec<f64> = (0..40).map(|i| (i as f64) * 97.3 + 0.001).collect();
        // Schedule in a scrambled but deterministic order.
        for k in 0..times.len() {
            let i = (k * 17) % times.len();
            q.schedule(t(times[i]), i);
        }
        let mut popped = Vec::new();
        while let Some((time, i)) = q.pop() {
            assert_eq!(time, t(times[i]));
            popped.push(i);
        }
        let mut expect: Vec<usize> = (0..times.len()).collect();
        expect.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
        assert_eq!(popped, expect);
    }
}
