//! Simulation statistics: time-weighted averages, counters, histograms.

use crate::time::SimTime;

/// A time-weighted statistic, e.g. queue length or number of busy servers.
///
/// Integrates `value * dt` so that `mean()` returns the time-average of the
/// tracked quantity over the observation window.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts tracking at time zero with an initial value.
    pub fn new(initial: f64) -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            value: initial,
            integral: 0.0,
            max: initial,
        }
    }

    /// Records that the tracked value changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.advance(now);
        self.value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Adds `delta` to the tracked value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Integrates up to `now` without changing the value.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_time, "time went backwards");
        self.integral += self.value * (now.as_secs() - self.last_time.as_secs());
        self.last_time = now;
    }

    /// Current instantaneous value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-average of the value over `[0, now]`.
    pub fn mean(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        if now.is_zero() {
            self.value
        } else {
            self.integral / now.as_secs()
        }
    }

    /// Raw integral of `value * dt` up to the last advance.
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

/// A plain event counter with an accumulated sum (e.g. total wait time).
#[derive(Debug, Clone, Default)]
pub struct Tally {
    count: u64,
    sum: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Statistics snapshot for an FCFS server resource.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Resource name.
    pub name: String,
    /// Number of service completions.
    pub completed: u64,
    /// Time-average number of busy servers.
    pub mean_busy: f64,
    /// Utilisation in `[0, 1]`: mean busy servers / capacity.
    pub utilisation: f64,
    /// Mean time a job spent waiting in the queue before service.
    pub mean_wait: f64,
    /// Maximum queue wait observed.
    pub max_wait: f64,
    /// Time-average queue length (excluding in-service jobs).
    pub mean_queue_len: f64,
}

/// Statistics snapshot for a shared-bandwidth link resource.
#[derive(Debug, Clone)]
pub struct LinkStats {
    /// Resource name.
    pub name: String,
    /// Total bytes moved over the link.
    pub bytes_transferred: f64,
    /// Number of completed transfers.
    pub completed: u64,
    /// Fraction of time at least one transfer was active.
    pub busy_fraction: f64,
    /// Achieved bandwidth over the whole run (`bytes / total_time`).
    pub achieved_bandwidth: f64,
    /// Achieved bandwidth while busy (`bytes / busy_time`).
    pub busy_bandwidth: f64,
}

/// Statistics snapshot for a keyed-lock resource.
#[derive(Debug, Clone)]
pub struct LockStats {
    /// Resource name.
    pub name: String,
    /// Number of successful acquisitions (immediate or after waiting).
    pub acquisitions: u64,
    /// Number of acquisitions that had to wait.
    pub contended: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(0.0);
        tw.set(t(1.0), 2.0); // 0 for 1s
        tw.set(t(3.0), 4.0); // 2 for 2s
                             // 4 for 1s -> integral = 0 + 4 + 4 = 8 over 4s
        assert!((tw.mean(t(4.0)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.max(), 4.0);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(1.0);
        tw.add(t(2.0), 3.0);
        assert_eq!(tw.current(), 4.0);
        // integral: 1*2 = 2; then 4*2 = 8 -> mean over 4s = 10/4
        assert!((tw.mean(t(4.0)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_at_zero() {
        let mut tw = TimeWeighted::new(7.0);
        assert_eq!(tw.mean(SimTime::ZERO), 7.0);
    }

    #[test]
    fn tally_basics() {
        let mut ta = Tally::new();
        assert_eq!(ta.mean(), 0.0);
        ta.record(1.0);
        ta.record(3.0);
        assert_eq!(ta.count(), 2);
        assert_eq!(ta.sum(), 4.0);
        assert_eq!(ta.mean(), 2.0);
        assert_eq!(ta.max(), 3.0);
    }
}

/// A fixed-bucket logarithmic histogram for latency-style observations
/// (seconds). Buckets are powers of two from 1 ns to ~1 ks, plus
/// underflow/overflow, which is plenty for scheduler-wait distributions.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
}

const HIST_BUCKETS: usize = 42; // 2^-30 s (~1 ns) .. 2^11 s, log2 steps
const HIST_MIN_EXP: i32 = -30;

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; HIST_BUCKETS + 2], // + underflow + overflow
            total: 0,
        }
    }

    fn bucket(seconds: f64) -> usize {
        if seconds <= 0.0 {
            return 0; // underflow bucket (includes exact zero)
        }
        let exp = seconds.log2().floor() as i32;
        if exp < HIST_MIN_EXP {
            0
        } else {
            let idx = (exp - HIST_MIN_EXP) as usize + 1;
            idx.min(HIST_BUCKETS + 1)
        }
    }

    /// Records one observation in seconds.
    pub fn record(&mut self, seconds: f64) {
        self.counts[Self::bucket(seconds)] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// An upper bound on the `q`-quantile (0 < q <= 1), or 0 when empty.
    /// Resolution is one power of two.
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    return 2.0f64.powi(HIST_MIN_EXP);
                }
                // Upper edge of bucket i.
                return 2.0f64.powi(HIST_MIN_EXP + i as i32);
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn quantiles_bound_observations() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-6); // 1 us .. 1 ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!((0.5e-3 / 2.0..=2.0e-3).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50);
        assert!(p99 <= 2.0e-3, "p99 {p99}");
    }

    #[test]
    fn zero_and_tiny_go_to_underflow() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(1e-12);
        assert_eq!(h.count(), 2);
        let q = h.quantile_upper_bound(1.0);
        assert!(q <= 1e-9 + 1e-15, "underflow bound {q}");
    }

    #[test]
    fn overflow_is_captured() {
        let mut h = LogHistogram::new();
        h.record(1e9); // beyond the last bucket
        assert_eq!(h.count(), 1);
        assert!(h.quantile_upper_bound(1.0) >= 2.0f64.powi(11));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.9), 0.0);
    }
}
