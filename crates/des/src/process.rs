//! The process abstraction.
//!
//! A simulated entity (a GPU thread block, a NOMAD node, a copy engine
//! client, …) is a [`Process`]: an explicit state machine whose `resume`
//! method is called whenever its previous blocking request completes. The
//! returned [`Block`] tells the engine what the process waits for next.
//!
//! This design avoids coroutines/async entirely: the borrow checker sees a
//! plain `&mut self` call, and determinism is trivial to audit.

use crate::resource::{LinkId, LockId, ServerId};
use crate::time::SimTime;

/// Identifier of a spawned process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Pid(pub(crate) usize);

impl Pid {
    /// The raw index of this process (stable for the simulation lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a process blocks on after a `resume` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Block {
    /// Sleep for a duration, then resume.
    Delay(SimTime),
    /// Enter the FCFS queue of `server`; once a slot is granted, hold it for
    /// `hold` and resume when the hold completes (acquire + serve + release).
    Service {
        /// Target server resource.
        server: ServerId,
        /// Service (hold) time once a slot is granted.
        hold: SimTime,
    },
    /// Move `bytes` over a processor-sharing link; resume at completion.
    Transfer {
        /// Target link resource.
        link: LinkId,
        /// Payload size in bytes.
        bytes: f64,
    },
    /// Acquire exclusive ownership of `key` within a keyed-lock resource;
    /// resume once granted. Release explicitly via [`Ctx::release_key`].
    AcquireKey {
        /// Target keyed-lock resource.
        lock: LockId,
        /// Which key to lock.
        key: usize,
    },
    /// The process has finished; it is dropped.
    Done,
}

/// Context handed to a process on every resume.
///
/// Provides the current simulated time and immediate (non-blocking) actions.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) immediate: &'a mut Vec<Immediate>,
}

/// Deferred non-blocking actions executed by the engine right after the
/// process yields (same simulated instant).
pub(crate) enum Immediate {
    ReleaseKey { lock: LockId, key: usize },
    Spawn(Box<dyn Process>),
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Releases a key previously acquired with [`Block::AcquireKey`]. The
    /// next waiter (if any) is granted the key at the current instant.
    pub fn release_key(&mut self, lock: LockId, key: usize) {
        self.immediate.push(Immediate::ReleaseKey { lock, key });
    }

    /// Spawns a new process at the current instant.
    pub fn spawn(&mut self, process: Box<dyn Process>) {
        self.immediate.push(Immediate::Spawn(process));
    }
}

/// A simulated entity. See the module docs.
pub trait Process {
    /// Called when the process starts and whenever its blocking request
    /// completes. Returns the next thing to block on.
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block;

    /// Optional human-readable label used in traces and panics.
    fn label(&self) -> &str {
        "process"
    }
}
