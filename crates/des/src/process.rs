//! The process abstraction.
//!
//! A simulated entity (a GPU thread block, a NOMAD node, a copy engine
//! client, …) is a [`Process`]: an explicit state machine whose `resume`
//! method is called whenever its previous blocking request completes. The
//! returned [`Block`] tells the engine what the process waits for next.
//!
//! This design avoids coroutines/async entirely: the borrow checker sees a
//! plain `&mut self` call, and determinism is trivial to audit.

use crate::resource::{LinkId, LockId, ServerId};
use crate::time::SimTime;

/// Identifier of a spawned process.
///
/// Generational: when a process finishes its arena slot is recycled for
/// later spawns, but the retired `Pid` keeps pointing at the old
/// generation, so a stale resume is detected instead of reaching the new
/// tenant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Pid {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

impl Pid {
    /// The raw slot index of this process. Stable while the process is
    /// alive; recycled for newly spawned processes after it finishes.
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

/// Free-list terminator for [`ProcArena`].
const NO_SLOT: u32 = u32::MAX;

enum ProcSlotState {
    /// Alive and parked between resumes.
    Occupied(Box<dyn Process>),
    /// Alive, temporarily taken out by the engine while `resume` runs
    /// (so `&mut self` cannot alias the engine state).
    Running,
    /// Retired; on the free list.
    Free { next_free: u32 },
}

struct ProcSlot {
    gen: u32,
    state: ProcSlotState,
}

/// Generational slab arena of live processes: O(1) spawn/retire with
/// slot reuse, so long-running simulations with process churn do not grow
/// a `Vec<Option<Box<dyn Process>>>` of dead tombstones forever.
#[derive(Default)]
pub(crate) struct ProcArena {
    slots: Vec<ProcSlot>,
    free_head: u32,
}

impl ProcArena {
    pub(crate) fn new() -> Self {
        ProcArena {
            slots: Vec::new(),
            free_head: NO_SLOT,
        }
    }

    /// Spawns a process into a recycled (or new) slot.
    pub(crate) fn insert(&mut self, process: Box<dyn Process>) -> Pid {
        if self.free_head != NO_SLOT {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            let ProcSlotState::Free { next_free } = slot.state else {
                unreachable!("free list points at a live process");
            };
            self.free_head = next_free;
            slot.state = ProcSlotState::Occupied(process);
            Pid { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("process arena exceeds u32 slots");
            self.slots.push(ProcSlot {
                gen: 0,
                state: ProcSlotState::Occupied(process),
            });
            Pid { idx, gen: 0 }
        }
    }

    /// Takes a live process out for a resume; returns `None` for stale or
    /// dead pids. The slot is marked `Running` until
    /// [`restore`](Self::restore) or [`retire`](Self::retire).
    pub(crate) fn take(&mut self, pid: Pid) -> Option<Box<dyn Process>> {
        let slot = self.slots.get_mut(pid.idx as usize)?;
        if slot.gen != pid.gen {
            return None;
        }
        match std::mem::replace(&mut slot.state, ProcSlotState::Running) {
            ProcSlotState::Occupied(p) => Some(p),
            other => {
                slot.state = other;
                None
            }
        }
    }

    /// Parks a process back after a resume that blocked.
    pub(crate) fn restore(&mut self, pid: Pid, process: Box<dyn Process>) {
        let slot = &mut self.slots[pid.idx as usize];
        debug_assert!(slot.gen == pid.gen);
        debug_assert!(matches!(slot.state, ProcSlotState::Running));
        slot.state = ProcSlotState::Occupied(process);
    }

    /// Retires a finished process: frees the slot for reuse and bumps the
    /// generation so outstanding pids to it go stale.
    pub(crate) fn retire(&mut self, pid: Pid) {
        let slot = &mut self.slots[pid.idx as usize];
        debug_assert!(slot.gen == pid.gen);
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = ProcSlotState::Free {
            next_free: self.free_head,
        };
        self.free_head = pid.idx;
    }
}

/// What a process blocks on after a `resume` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Block {
    /// Sleep for a duration, then resume.
    Delay(SimTime),
    /// Enter the FCFS queue of `server`; once a slot is granted, hold it for
    /// `hold` and resume when the hold completes (acquire + serve + release).
    Service {
        /// Target server resource.
        server: ServerId,
        /// Service (hold) time once a slot is granted.
        hold: SimTime,
    },
    /// Move `bytes` over a processor-sharing link; resume at completion.
    Transfer {
        /// Target link resource.
        link: LinkId,
        /// Payload size in bytes.
        bytes: f64,
    },
    /// Acquire exclusive ownership of `key` within a keyed-lock resource;
    /// resume once granted. Release explicitly via [`Ctx::release_key`].
    AcquireKey {
        /// Target keyed-lock resource.
        lock: LockId,
        /// Which key to lock.
        key: usize,
    },
    /// The process has finished; it is dropped.
    Done,
}

/// Context handed to a process on every resume.
///
/// Provides the current simulated time and immediate (non-blocking) actions.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) immediate: &'a mut Vec<Immediate>,
}

/// Deferred non-blocking actions executed by the engine right after the
/// process yields (same simulated instant).
pub(crate) enum Immediate {
    ReleaseKey { lock: LockId, key: usize },
    Spawn(Box<dyn Process>),
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Releases a key previously acquired with [`Block::AcquireKey`]. The
    /// next waiter (if any) is granted the key at the current instant.
    pub fn release_key(&mut self, lock: LockId, key: usize) {
        self.immediate.push(Immediate::ReleaseKey { lock, key });
    }

    /// Spawns a new process at the current instant.
    pub fn spawn(&mut self, process: Box<dyn Process>) {
        self.immediate.push(Immediate::Spawn(process));
    }
}

/// A simulated entity. See the module docs.
pub trait Process {
    /// Called when the process starts and whenever its blocking request
    /// completes. Returns the next thing to block on.
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block;

    /// Optional human-readable label used in traces and panics.
    fn label(&self) -> &str {
        "process"
    }
}
