//! Simulated resources.
//!
//! Three resource families cover everything the GPU/cluster models need:
//!
//! * [`Server`] — an FCFS queue with `c` identical servers and per-job
//!   service times. Models critical sections (LIBMF's global scheduling
//!   table), kernel-launch queues, and copy engines.
//! * [`SharedBandwidth`] — a processor-sharing link: `n` concurrent
//!   transfers each progress at `capacity / n`. Models GPU DRAM, CPU memory
//!   controllers, PCIe/NVLink, and cluster networks.
//! * [`KeyedLocks`] — an array of independent exclusive locks with FIFO
//!   waiters. Models the wavefront-update column-lock array.
//!
//! Resources are passive data structures; the [`crate::engine::Simulation`]
//! drives them and owns the event calendar.

use crate::process::Pid;
use crate::smallq::SmallDeque;
use crate::stats::{Tally, TimeWeighted};
use crate::time::SimTime;

/// Which resource family a [`ResourceNode`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// FCFS server ([`ServerId`]): `slots` parallel service slots.
    Server,
    /// Processor-sharing link ([`LinkId`]): transfers never queue, they
    /// share bandwidth, so `slots` is 0 (no grant limit).
    Link,
    /// Keyed-lock array ([`LockId`]): `slots` independent exclusive keys.
    Lock,
}

/// Static description of one registered resource, exported by
/// [`crate::Simulation::resource_topology`].
///
/// This is the engine-side half of the `cumf-analyze` deadlock pass:
/// the analyzer pairs these nodes with static acquisition-order models
/// of the processes that use them and proves the resulting wait-for
/// graph acyclic (or refutes it with a concrete cycle witness). Keeping
/// the node list an engine export — rather than a copy inside the
/// analyzer — means a configuration drift between the shipped
/// simulations and their certified models is a visible cross-check
/// failure, not a silently stale certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceNode {
    /// Resource family.
    pub kind: ResourceKind,
    /// Registered name (unique per family by convention).
    pub name: String,
    /// Concurrent grants the resource admits: server capacity or lock
    /// keys; `0` for processor-sharing links, which never block a
    /// requester.
    pub slots: usize,
}

/// Handle to an FCFS server resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ServerId(pub(crate) usize);

/// Handle to a shared-bandwidth link resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub(crate) usize);

/// Handle to a keyed-lock resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockId(pub(crate) usize);

// ---------------------------------------------------------------------------
// FCFS server
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct Server {
    pub(crate) name: String,
    capacity: usize,
    busy: usize,
    // (pid, hold, enqueue_time); inline for the common shallow queue.
    queue: SmallDeque<(Pid, SimTime, SimTime), 4>,
    pub(crate) busy_tw: TimeWeighted,
    pub(crate) queue_tw: TimeWeighted,
    pub(crate) waits: Tally,
    pub(crate) completed: u64,
    obs_waits: cumf_obs::Histogram,
    obs_queue: cumf_obs::Gauge,
}

impl Server {
    pub(crate) fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "server needs at least one slot");
        Server {
            name: name.into(),
            capacity,
            busy: 0,
            queue: SmallDeque::new(),
            busy_tw: TimeWeighted::new(0.0),
            queue_tw: TimeWeighted::new(0.0),
            waits: Tally::new(),
            completed: 0,
            obs_waits: cumf_obs::histogram(
                "cumf_des_server_wait_seconds",
                "Time processes waited for an FCFS server slot, simulated seconds",
            ),
            obs_queue: cumf_obs::gauge(
                "cumf_des_server_queue_depth",
                "Most recently observed FCFS server queue depth",
            ),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// A job requests service. Returns `true` if a slot was granted
    /// immediately (caller schedules the completion); otherwise the job is
    /// queued.
    pub(crate) fn request(&mut self, now: SimTime, pid: Pid, hold: SimTime) -> bool {
        if self.busy < self.capacity {
            self.busy += 1;
            self.busy_tw.set(now, self.busy as f64);
            self.waits.record(0.0);
            self.obs_waits.record(0.0);
            true
        } else {
            self.queue.push_back((pid, hold, now));
            self.queue_tw.set(now, self.queue.len() as f64);
            self.obs_queue.set(self.queue.len() as f64);
            false
        }
    }

    /// A job finished service. Returns the next queued job to start, if any
    /// (the caller schedules its completion event).
    pub(crate) fn complete(&mut self, now: SimTime) -> Option<(Pid, SimTime)> {
        debug_assert!(self.busy > 0);
        self.completed += 1;
        if let Some((pid, hold, enq)) = self.queue.pop_front() {
            self.queue_tw.set(now, self.queue.len() as f64);
            self.obs_queue.set(self.queue.len() as f64);
            let wait = now.as_secs() - enq.as_secs();
            self.waits.record(wait);
            self.obs_waits.record(wait);
            // Busy count unchanged: one leaves, one enters.
            self.busy_tw.advance(now);
            Some((pid, hold))
        } else {
            self.busy -= 1;
            self.busy_tw.set(now, self.busy as f64);
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Processor-sharing shared-bandwidth link
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TransferJob {
    pid: Pid,
    remaining: f64, // bytes
}

#[derive(Debug)]
pub(crate) struct SharedBandwidth {
    pub(crate) name: String,
    capacity: f64, // bytes per second
    jobs: Vec<TransferJob>,
    last_update: SimTime,
    pub(crate) busy_time: f64,
    pub(crate) bytes_done: f64,
    pub(crate) completed: u64,
}

/// Byte threshold under which a transfer counts as finished (guards against
/// floating-point residue).
const EPS_BYTES: f64 = 1e-6;

impl SharedBandwidth {
    pub(crate) fn new(name: impl Into<String>, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive"
        );
        SharedBandwidth {
            name: name.into(),
            capacity,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            busy_time: 0.0,
            bytes_done: 0.0,
            completed: 0,
        }
    }

    pub(crate) fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Per-job rate under processor sharing.
    fn rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.capacity / self.jobs.len() as f64
        }
    }

    /// Advances all in-flight transfers to `now`.
    pub(crate) fn update(&mut self, now: SimTime) {
        let dt = now.as_secs() - self.last_update.as_secs();
        debug_assert!(dt >= -1e-15, "link time went backwards");
        if dt > 0.0 && !self.jobs.is_empty() {
            let progress = self.rate() * dt;
            for job in &mut self.jobs {
                job.remaining -= progress;
            }
            self.busy_time += dt;
            self.bytes_done += progress * self.jobs.len() as f64;
        }
        self.last_update = now;
    }

    /// Adds a transfer. Caller must `update(now)` first (the engine does).
    pub(crate) fn add(&mut self, pid: Pid, bytes: f64) {
        debug_assert!(bytes > 0.0 && bytes.is_finite());
        self.jobs.push(TransferJob {
            pid,
            remaining: bytes,
        });
    }

    /// Time until the next transfer completes, if any transfer is active.
    pub(crate) fn next_completion_in(&self) -> Option<SimTime> {
        if self.jobs.is_empty() {
            return None;
        }
        let min_rem = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        let dt = (min_rem.max(0.0)) / self.rate();
        Some(SimTime::from_secs(dt))
    }

    /// Removes and returns all finished transfers. Caller must have called
    /// `update(now)` first.
    pub(crate) fn take_finished(&mut self) -> Vec<Pid> {
        let mut done = Vec::new();
        self.jobs.retain(|job| {
            if job.remaining <= EPS_BYTES {
                done.push(job.pid);
                false
            } else {
                true
            }
        });
        self.completed += done.len() as u64;
        done
    }

    pub(crate) fn active_jobs(&self) -> usize {
        self.jobs.len()
    }
}

// ---------------------------------------------------------------------------
// Keyed locks
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct KeySlot {
    held: bool,
    // Inline for the common 1–4-waiter contention case.
    waiters: SmallDeque<Pid, 4>,
}

#[derive(Debug)]
pub(crate) struct KeyedLocks {
    pub(crate) name: String,
    slots: Vec<KeySlot>,
    pub(crate) acquisitions: u64,
    pub(crate) contended: u64,
}

impl KeyedLocks {
    pub(crate) fn new(name: impl Into<String>, keys: usize) -> Self {
        KeyedLocks {
            name: name.into(),
            slots: (0..keys).map(|_| KeySlot::default()).collect(),
            acquisitions: 0,
            contended: 0,
        }
    }

    /// Attempts to acquire `key` for `pid`. Returns `true` if granted
    /// immediately; otherwise queues the pid as a waiter.
    pub(crate) fn acquire(&mut self, pid: Pid, key: usize) -> bool {
        let slot = &mut self.slots[key];
        if slot.held {
            slot.waiters.push_back(pid);
            self.contended += 1;
            false
        } else {
            slot.held = true;
            self.acquisitions += 1;
            true
        }
    }

    /// Releases `key`, handing it to the next FIFO waiter if present.
    /// Returns the pid to wake, if any.
    pub(crate) fn release(&mut self, key: usize) -> Option<Pid> {
        let slot = &mut self.slots[key];
        assert!(slot.held, "releasing a key that is not held (key {key})");
        if let Some(next) = slot.waiters.pop_front() {
            self.acquisitions += 1;
            Some(next) // Lock stays held, ownership transfers.
        } else {
            slot.held = false;
            None
        }
    }

    pub(crate) fn keys(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn pid(i: u32) -> Pid {
        Pid { idx: i, gen: 0 }
    }

    #[test]
    fn server_grants_up_to_capacity() {
        let mut s = Server::new("s", 2);
        assert!(s.request(t(0.0), pid(0), t(1.0)));
        assert!(s.request(t(0.0), pid(1), t(1.0)));
        assert!(!s.request(t(0.0), pid(2), t(1.0)));
        // First completion hands the slot to the queued job.
        let next = s.complete(t(1.0));
        assert_eq!(next, Some((pid(2), t(1.0))));
        assert_eq!(s.complete(t(1.0)), None);
        assert_eq!(s.completed, 2);
    }

    #[test]
    fn server_records_waits() {
        let mut s = Server::new("s", 1);
        assert!(s.request(t(0.0), pid(0), t(2.0)));
        assert!(!s.request(t(0.5), pid(1), t(2.0)));
        let _ = s.complete(t(2.0));
        assert_eq!(s.waits.count(), 2);
        assert!((s.waits.max() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_processor_sharing() {
        let mut l = SharedBandwidth::new("dram", 100.0); // 100 B/s
        l.update(t(0.0));
        l.add(pid(0), 100.0);
        // Alone: 1 second to finish.
        assert_eq!(l.next_completion_in(), Some(t(1.0)));
        // Second job arrives halfway: each now gets 50 B/s.
        l.update(t(0.5));
        l.add(pid(1), 100.0);
        // Job 0 has 50 B left at 50 B/s -> 1 s.
        assert_eq!(l.next_completion_in(), Some(t(1.0)));
        l.update(t(1.5));
        let done = l.take_finished();
        assert_eq!(done, vec![pid(0)]);
        // Job 1 has 50 B left, now alone at 100 B/s -> 0.5 s.
        assert_eq!(l.next_completion_in(), Some(t(0.5)));
        l.update(t(2.0));
        assert_eq!(l.take_finished(), vec![pid(1)]);
        assert_eq!(l.active_jobs(), 0);
        assert!((l.bytes_done - 200.0).abs() < 1e-6);
        assert!((l.busy_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn keyed_locks_fifo_handoff() {
        let mut k = KeyedLocks::new("cols", 4);
        assert!(k.acquire(pid(0), 2));
        assert!(!k.acquire(pid(1), 2));
        assert!(!k.acquire(pid(2), 2));
        assert!(k.acquire(pid(3), 3)); // independent key unaffected
        assert_eq!(k.release(2), Some(pid(1)));
        assert_eq!(k.release(2), Some(pid(2)));
        assert_eq!(k.release(2), None);
        assert_eq!(k.release(3), None);
        assert_eq!(k.acquisitions, 4);
        assert_eq!(k.contended, 2);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn releasing_free_key_panics() {
        let mut k = KeyedLocks::new("cols", 1);
        k.release(0);
    }
}
