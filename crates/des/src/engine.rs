//! The simulation engine: owns the clock, the event calendar, all resources
//! and all processes, and runs the event loop to completion.

use crate::event::{EventId, EventQueue};
use crate::process::{Block, Ctx, Immediate, Pid, ProcArena, Process};
use crate::resource::{
    KeyedLocks, LinkId, LockId, ResourceKind, ResourceNode, Server, ServerId, SharedBandwidth,
};
use crate::stats::{LinkStats, LockStats, ServerStats};
use crate::time::SimTime;

/// Events internal to the engine.
enum Ev {
    /// Resume a blocked/sleeping process.
    Resume(Pid),
    /// A server finished serving `pid` after holding a slot for `hold`.
    ServerDone {
        server: ServerId,
        pid: Pid,
        hold: SimTime,
    },
    /// Re-evaluate a shared-bandwidth link (some transfer may have finished).
    LinkTick { link: LinkId },
}

/// Calendar payload: the event plus the sim time it was scheduled at,
/// so the engine can attribute schedule→fire dwell time when probes
/// are on. One extra `SimTime` per queued event; no cost when
/// observability is disabled beyond the copy.
struct Scheduled {
    born: SimTime,
    ev: Ev,
}

/// Observability handles for the event-loop hot path. Registered once
/// per [`Simulation::run`] call (only when the global registry is
/// enabled) so the per-event work is plain atomic updates.
struct DesProbes {
    dequeue_resume: cumf_obs::Counter,
    dequeue_server_done: cumf_obs::Counter,
    dequeue_link_tick: cumf_obs::Counter,
    dwell_seconds: cumf_obs::Histogram,
    queue_occupancy: cumf_obs::Gauge,
}

impl DesProbes {
    fn new() -> Self {
        DesProbes {
            dequeue_resume: cumf_obs::counter(
                "cumf_des_dequeue_resume_total",
                "Resume events dequeued by the DES engine",
            ),
            dequeue_server_done: cumf_obs::counter(
                "cumf_des_dequeue_server_done_total",
                "ServerDone events dequeued by the DES engine",
            ),
            dequeue_link_tick: cumf_obs::counter(
                "cumf_des_dequeue_link_tick_total",
                "LinkTick events dequeued by the DES engine",
            ),
            dwell_seconds: cumf_obs::histogram(
                "cumf_des_event_dwell_seconds",
                "Sim-time from event schedule to fire (calendar dwell)",
            ),
            queue_occupancy: cumf_obs::gauge(
                "cumf_des_queue_occupancy",
                "Events pending in the DES calendar after each dequeue",
            ),
        }
    }

    /// Records one dequeue: event-type count, schedule→fire dwell, and
    /// the occupancy left behind in the calendar.
    fn observe(&self, ev: &Ev, born: SimTime, fired: SimTime, remaining: usize) {
        match ev {
            Ev::Resume(_) => self.dequeue_resume.inc(),
            Ev::ServerDone { .. } => self.dequeue_server_done.inc(),
            Ev::LinkTick { .. } => self.dequeue_link_tick.inc(),
        }
        self.dwell_seconds
            .record(fired.saturating_sub(born).as_secs());
        self.queue_occupancy.set(remaining as f64);
    }
}

/// Final report of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Per-server statistics.
    pub servers: Vec<ServerStats>,
    /// Per-link statistics.
    pub links: Vec<LinkStats>,
    /// Per-lock statistics.
    pub locks: Vec<LockStats>,
}

impl RunReport {
    /// Looks up a server's stats by name.
    pub fn server(&self, name: &str) -> Option<&ServerStats> {
        self.servers.iter().find(|s| s.name == name)
    }

    /// Looks up a link's stats by name.
    pub fn link(&self, name: &str) -> Option<&LinkStats> {
        self.links.iter().find(|l| l.name == name)
    }

    /// Looks up a lock array's stats by name.
    pub fn lock(&self, name: &str) -> Option<&LockStats> {
        self.locks.iter().find(|l| l.name == name)
    }
}

/// A discrete-event simulation: resources + processes + event calendar.
pub struct Simulation {
    clock: SimTime,
    queue: EventQueue<Scheduled>,
    processes: ProcArena,
    servers: Vec<Server>,
    links: Vec<SharedBandwidth>,
    link_tick: Vec<Option<EventId>>,
    locks: Vec<KeyedLocks>,
    immediates: Vec<Immediate>,
    events_processed: u64,
    live_processes: usize,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            processes: ProcArena::new(),
            servers: Vec::new(),
            links: Vec::new(),
            link_tick: Vec::new(),
            locks: Vec::new(),
            immediates: Vec::new(),
            events_processed: 0,
            live_processes: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Schedules an engine event, stamping it with the current clock so
    /// dwell time (schedule→fire) is attributable when probes are on.
    fn schedule_ev(&mut self, at: SimTime, ev: Ev) -> EventId {
        self.queue.schedule(
            at,
            Scheduled {
                born: self.clock,
                ev,
            },
        )
    }

    /// Adds an FCFS server with `capacity` parallel slots.
    pub fn add_server(&mut self, name: impl Into<String>, capacity: usize) -> ServerId {
        self.servers.push(Server::new(name, capacity));
        ServerId(self.servers.len() - 1)
    }

    /// Adds a processor-sharing link with `bytes_per_sec` total capacity.
    pub fn add_link(&mut self, name: impl Into<String>, bytes_per_sec: f64) -> LinkId {
        self.links.push(SharedBandwidth::new(name, bytes_per_sec));
        self.link_tick.push(None);
        LinkId(self.links.len() - 1)
    }

    /// Adds a keyed-lock array with `keys` independent exclusive locks.
    pub fn add_lock(&mut self, name: impl Into<String>, keys: usize) -> LockId {
        self.locks.push(KeyedLocks::new(name, keys));
        LockId(self.locks.len() - 1)
    }

    /// Capacity of a link in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0].capacity()
    }

    /// Number of transfers currently in flight on a link.
    pub fn link_active_jobs(&self, link: LinkId) -> usize {
        self.links[link.0].active_jobs()
    }

    /// Number of slots of a server.
    pub fn server_capacity(&self, server: ServerId) -> usize {
        self.servers[server.0].capacity()
    }

    /// Number of keys of a lock array.
    pub fn lock_keys(&self, lock: LockId) -> usize {
        self.locks[lock.0].keys()
    }

    /// Exports the static resource graph of this simulation: one
    /// [`ResourceNode`] per registered server, link, and keyed-lock
    /// array, in registration order within each family.
    ///
    /// The `cumf-analyze` deadlock pass consumes this to cross-check its
    /// static wait-for models against the resources the shipped
    /// simulations actually register — a model naming a resource the
    /// engine does not register (or disagreeing on its capacity) fails
    /// the analysis instead of certifying a fiction.
    pub fn resource_topology(&self) -> Vec<ResourceNode> {
        let mut nodes = Vec::new();
        for s in &self.servers {
            nodes.push(ResourceNode {
                kind: ResourceKind::Server,
                name: s.name.clone(),
                slots: s.capacity(),
            });
        }
        for l in &self.links {
            nodes.push(ResourceNode {
                kind: ResourceKind::Link,
                name: l.name.clone(),
                slots: 0,
            });
        }
        for k in &self.locks {
            nodes.push(ResourceNode {
                kind: ResourceKind::Lock,
                name: k.name.clone(),
                slots: k.keys(),
            });
        }
        nodes
    }

    /// Spawns a process; it first resumes at time zero (or at the current
    /// time if spawned mid-run).
    pub fn spawn(&mut self, process: Box<dyn Process>) -> Pid {
        let pid = self.processes.insert(process);
        self.live_processes += 1;
        self.schedule_ev(self.clock, Ev::Resume(pid));
        if cumf_obs::enabled() {
            cumf_obs::counter(
                "cumf_des_processes_spawned_total",
                "Processes spawned into DES simulations",
            )
            .inc();
        }
        pid
    }

    /// Spawns a process that first resumes at absolute time `at`.
    pub fn spawn_at(&mut self, at: SimTime, process: Box<dyn Process>) -> Pid {
        assert!(at >= self.clock, "cannot spawn in the past");
        let pid = self.processes.insert(process);
        self.live_processes += 1;
        self.schedule_ev(at, Ev::Resume(pid));
        pid
    }

    /// Runs until the event calendar drains or `horizon` is reached.
    /// Returns the final statistics report.
    pub fn run(&mut self, horizon: Option<SimTime>) -> RunReport {
        let events_at_entry = self.events_processed;
        let probes = if cumf_obs::enabled() {
            Some(DesProbes::new())
        } else {
            None
        };
        let mut run_span = cumf_obs::span("des", "run");
        while let Some(next_time) = self.queue.peek_time() {
            if let Some(h) = horizon {
                if next_time > h {
                    self.clock = h;
                    break;
                }
            }
            let (time, sched) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(time >= self.clock, "event calendar went backwards");
            self.clock = time;
            self.events_processed += 1;
            if let Some(p) = &probes {
                p.observe(&sched.ev, sched.born, time, self.queue.len());
            }
            // Fast path: `Resume` dominates every registered workload
            // (delays, lock hand-offs and child spawns all go through it),
            // so dispatch it before the full match — the virtual `resume`
            // call inside `step` is then the loop's only indirection.
            if let Ev::Resume(pid) = sched.ev {
                self.step(pid);
                continue;
            }
            match sched.ev {
                Ev::Resume(_) => unreachable!("handled by the fast path"),
                Ev::ServerDone { server, pid, hold } => {
                    self.record_service_span(server, hold);
                    if let Some((next_pid, hold)) = self.servers[server.0].complete(self.clock) {
                        let at = self.clock + hold;
                        self.schedule_ev(
                            at,
                            Ev::ServerDone {
                                server,
                                pid: next_pid,
                                hold,
                            },
                        );
                    }
                    self.step(pid);
                }
                Ev::LinkTick { link } => {
                    self.link_tick[link.0] = None;
                    self.links[link.0].update(self.clock);
                    let finished = self.links[link.0].take_finished();
                    self.reschedule_link(link);
                    for pid in finished {
                        self.step(pid);
                    }
                }
            }
        }
        if cumf_obs::enabled() {
            let events = self.events_processed - events_at_entry;
            cumf_obs::counter(
                "cumf_des_events_total",
                "Discrete events processed by the DES engine",
            )
            .add(events);
            cumf_obs::gauge(
                "cumf_des_sim_end_seconds",
                "Simulated end time of the most recent DES run, seconds",
            )
            .set(self.clock.as_secs());
            run_span.set_arg("events", events as f64);
        }
        drop(run_span);
        self.report()
    }

    /// Number of processes that have not yet returned [`Block::Done`].
    pub fn live_processes(&self) -> usize {
        self.live_processes
    }

    /// Drives one process forward until it issues a blocking request.
    fn step(&mut self, pid: Pid) {
        // Take the process out of the arena so `resume(&mut self)` cannot
        // alias the engine state it manipulates through `Ctx`.
        let mut process = match self.processes.take(pid) {
            Some(p) => p,
            // A resume may race with process completion only through engine
            // bugs; a stale or dead pid is a hard error (the generational
            // arena guarantees a recycled slot can never absorb it).
            None => panic!("resume for dead process {pid:?}"),
        };
        loop {
            let block = {
                let mut ctx = Ctx {
                    now: self.clock,
                    immediate: &mut self.immediates,
                };
                process.resume(&mut ctx)
            };
            self.drain_immediates();
            match block {
                Block::Delay(d) => {
                    self.schedule_ev(self.clock + d, Ev::Resume(pid));
                    break;
                }
                Block::Service { server, hold } => {
                    if self.servers[server.0].request(self.clock, pid, hold) {
                        let at = self.clock + hold;
                        self.schedule_ev(at, Ev::ServerDone { server, pid, hold });
                    }
                    break;
                }
                Block::Transfer { link, bytes } => {
                    if bytes <= 0.0 {
                        // Zero-byte transfers complete instantly: loop again.
                        continue;
                    }
                    self.links[link.0].update(self.clock);
                    self.links[link.0].add(pid, bytes);
                    self.reschedule_link(link);
                    break;
                }
                Block::AcquireKey { lock, key } => {
                    if self.locks[lock.0].acquire(pid, key) {
                        // Granted immediately: keep running.
                        continue;
                    }
                    break;
                }
                Block::Done => {
                    self.live_processes -= 1;
                    // Process dropped; its slot is recycled for the next
                    // spawn and the generation bump retires this pid.
                    self.processes.retire(pid);
                    return;
                }
            }
        }
        self.processes.restore(pid, process);
    }

    /// Records a completed server service period as a sim-clock trace span
    /// (one track per server). Called at the completion event, when both
    /// the start (`now - hold`) and the duration are known.
    fn record_service_span(&self, server: ServerId, hold: SimTime) {
        if cumf_obs::enabled() {
            let start = self.clock.as_secs() - hold.as_secs();
            cumf_obs::span_sim(
                "des",
                format!("service:{}", self.servers[server.0].name),
                server.0 as u32,
                start.max(0.0),
                hold.as_secs(),
                Vec::new(),
            );
        }
    }

    /// Applies non-blocking actions a process issued through its `Ctx`.
    fn drain_immediates(&mut self) {
        while let Some(action) = self.immediates.pop() {
            match action {
                Immediate::ReleaseKey { lock, key } => {
                    if let Some(waiter) = self.locks[lock.0].release(key) {
                        self.schedule_ev(self.clock, Ev::Resume(waiter));
                    }
                }
                Immediate::Spawn(process) => {
                    self.spawn(process);
                }
            }
        }
    }

    /// Re-schedules the single pending completion event of a link.
    fn reschedule_link(&mut self, link: LinkId) {
        if let Some(old) = self.link_tick[link.0].take() {
            self.queue.cancel(old);
        }
        if let Some(dt) = self.links[link.0].next_completion_in() {
            let id = self.schedule_ev(self.clock + dt, Ev::LinkTick { link });
            self.link_tick[link.0] = Some(id);
        }
    }

    /// Builds the statistics report as of the current clock.
    fn report(&mut self) -> RunReport {
        let now = self.clock;
        let total = now.as_secs();
        let servers = self
            .servers
            .iter_mut()
            .map(|s| {
                let mean_busy = s.busy_tw.mean(now);
                ServerStats {
                    name: s.name.clone(),
                    completed: s.completed,
                    mean_busy,
                    utilisation: if s.capacity() > 0 {
                        mean_busy / s.capacity() as f64
                    } else {
                        0.0
                    },
                    mean_wait: s.waits.mean(),
                    max_wait: s.waits.max(),
                    mean_queue_len: s.queue_tw.mean(now),
                }
            })
            .collect();
        let links = self
            .links
            .iter_mut()
            .map(|l| {
                l.update(now);
                LinkStats {
                    name: l.name.clone(),
                    bytes_transferred: l.bytes_done,
                    completed: l.completed,
                    busy_fraction: if total > 0.0 {
                        l.busy_time / total
                    } else {
                        0.0
                    },
                    achieved_bandwidth: if total > 0.0 {
                        l.bytes_done / total
                    } else {
                        0.0
                    },
                    busy_bandwidth: if l.busy_time > 0.0 {
                        l.bytes_done / l.busy_time
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let locks = self
            .locks
            .iter()
            .map(|l| LockStats {
                name: l.name.clone(),
                acquisitions: l.acquisitions,
                contended: l.contended,
            })
            .collect();
        RunReport {
            end_time: now,
            events: self.events_processed,
            servers,
            links,
            locks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// A process that sleeps `n` times for `dt` then finishes, recording the
    /// time of each wake-up.
    struct Sleeper {
        n: usize,
        dt: SimTime,
        wakes: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
    }

    impl Process for Sleeper {
        fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block {
            self.wakes.borrow_mut().push(ctx.now());
            if self.n == 0 {
                return Block::Done;
            }
            self.n -= 1;
            Block::Delay(self.dt)
        }
    }

    #[test]
    fn delays_advance_the_clock() {
        let wakes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.spawn(Box::new(Sleeper {
            n: 3,
            dt: t(1.5),
            wakes: wakes.clone(),
        }));
        let report = sim.run(None);
        assert_eq!(report.end_time, t(4.5));
        assert_eq!(
            *wakes.borrow(),
            vec![t(0.0), t(1.5), t(3.0), t(4.5)],
            "one wake at spawn plus one per delay"
        );
        assert_eq!(sim.live_processes(), 0);
    }

    /// A process that requests `rounds` service holds on a shared server.
    struct Contender {
        server: ServerId,
        hold: SimTime,
        rounds: usize,
        done_at: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
        started: bool,
    }

    impl Process for Contender {
        fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block {
            if self.started {
                self.rounds -= 1;
                if self.rounds == 0 {
                    self.done_at.borrow_mut().push(ctx.now());
                    return Block::Done;
                }
            }
            self.started = true;
            Block::Service {
                server: self.server,
                hold: self.hold,
            }
        }
    }

    #[test]
    fn single_server_serialises_holds() {
        let done = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let server = sim.add_server("cs", 1);
        for _ in 0..4 {
            sim.spawn(Box::new(Contender {
                server,
                hold: t(1.0),
                rounds: 1,
                done_at: done.clone(),
                started: false,
            }));
        }
        let report = sim.run(None);
        // 4 jobs x 1s each on one server -> finishes at 1,2,3,4.
        assert_eq!(*done.borrow(), vec![t(1.0), t(2.0), t(3.0), t(4.0)]);
        let s = report.server("cs").unwrap();
        assert_eq!(s.completed, 4);
        assert!((s.utilisation - 1.0).abs() < 1e-9);
        // Waits: 0 + 1 + 2 + 3 = 6 over 4 jobs.
        assert!((s.mean_wait - 1.5).abs() < 1e-9);
    }

    #[test]
    fn multi_server_runs_in_parallel() {
        let done = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let server = sim.add_server("cs", 4);
        for _ in 0..4 {
            sim.spawn(Box::new(Contender {
                server,
                hold: t(1.0),
                rounds: 1,
                done_at: done.clone(),
                started: false,
            }));
        }
        let report = sim.run(None);
        assert_eq!(report.end_time, t(1.0));
        assert_eq!(*done.borrow(), vec![t(1.0); 4]);
    }

    /// A process that transfers `bytes` once over a link then finishes.
    struct Mover {
        link: LinkId,
        bytes: f64,
        finished_at: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
        started: bool,
    }

    impl Process for Mover {
        fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block {
            if self.started {
                self.finished_at.borrow_mut().push(ctx.now());
                return Block::Done;
            }
            self.started = true;
            Block::Transfer {
                link: self.link,
                bytes: self.bytes,
            }
        }
    }

    #[test]
    fn bandwidth_is_shared_fairly() {
        let fin = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let link = sim.add_link("net", 100.0); // 100 B/s
        for _ in 0..2 {
            sim.spawn(Box::new(Mover {
                link,
                bytes: 100.0,
                finished_at: fin.clone(),
                started: false,
            }));
        }
        let report = sim.run(None);
        // Two 100 B transfers sharing 100 B/s finish together at t=2.
        assert_eq!(report.end_time, t(2.0));
        assert_eq!(fin.borrow().len(), 2);
        let l = report.link("net").unwrap();
        assert!((l.bytes_transferred - 200.0).abs() < 1e-6);
        assert!((l.achieved_bandwidth - 100.0).abs() < 1e-6);
        assert!((l.busy_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_transfers_slow_each_other() {
        let fin = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let link = sim.add_link("net", 100.0);
        sim.spawn(Box::new(Mover {
            link,
            bytes: 100.0,
            finished_at: fin.clone(),
            started: false,
        }));
        sim.spawn_at(
            t(0.5),
            Box::new(Mover {
                link,
                bytes: 100.0,
                finished_at: fin.clone(),
                started: false,
            }),
        );
        let report = sim.run(None);
        // Job A: 50 B alone (0.5 s), then shares: 50 B at 50 B/s -> done 1.5.
        // Job B: 50 B shared by 1.5, then alone: 50 B at 100 B/s -> done 2.0.
        let fin = fin.borrow();
        assert!((fin[0].as_secs() - 1.5).abs() < 1e-9);
        assert!((fin[1].as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(report.end_time, t(2.0));
    }

    /// Two workers ping-pong on a keyed lock.
    struct LockUser {
        lock: LockId,
        key: usize,
        hold: SimTime,
        rounds: usize,
        state: u8, // 0 = acquire, 1 = holding (delay), 2 = release+loop
        trace: std::rc::Rc<std::cell::RefCell<Vec<(usize, SimTime)>>>,
        id: usize,
    }

    impl Process for LockUser {
        fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block {
            loop {
                match self.state {
                    0 => {
                        self.state = 1;
                        return Block::AcquireKey {
                            lock: self.lock,
                            key: self.key,
                        };
                    }
                    1 => {
                        // Lock acquired; hold it for a while.
                        self.trace.borrow_mut().push((self.id, ctx.now()));
                        self.state = 2;
                        return Block::Delay(self.hold);
                    }
                    2 => {
                        ctx.release_key(self.lock, self.key);
                        self.rounds -= 1;
                        if self.rounds == 0 {
                            return Block::Done;
                        }
                        self.state = 0;
                        continue;
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn keyed_lock_serialises_critical_sections() {
        let trace = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let lock = sim.add_lock("cols", 1);
        for id in 0..2 {
            sim.spawn(Box::new(LockUser {
                lock,
                key: 0,
                hold: t(1.0),
                rounds: 2,
                state: 0,
                trace: trace.clone(),
                id,
            }));
        }
        let report = sim.run(None);
        // 4 critical sections of 1 s must serialise: end at t=4.
        assert_eq!(report.end_time, t(4.0));
        let trace = trace.borrow();
        let times: Vec<f64> = trace.iter().map(|(_, t)| t.as_secs()).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0]);
        // FIFO handoff alternates the two workers.
        let ids: Vec<usize> = trace.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 0, 1]);
    }

    #[test]
    fn horizon_stops_the_run() {
        let wakes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.spawn(Box::new(Sleeper {
            n: 1000,
            dt: t(1.0),
            wakes: wakes.clone(),
        }));
        let report = sim.run(Some(t(10.5)));
        assert_eq!(report.end_time, t(10.5));
        assert_eq!(wakes.borrow().len(), 11); // t = 0..=10
        assert_eq!(sim.live_processes(), 1);
    }

    #[test]
    fn zero_byte_transfer_completes_instantly() {
        struct ZeroMover {
            link: LinkId,
            started: bool,
        }
        impl Process for ZeroMover {
            fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
                if self.started {
                    return Block::Done;
                }
                self.started = true;
                Block::Transfer {
                    link: self.link,
                    bytes: 0.0,
                }
            }
        }
        let mut sim = Simulation::new();
        let link = sim.add_link("net", 1.0);
        sim.spawn(Box::new(ZeroMover {
            link,
            started: false,
        }));
        let report = sim.run(None);
        assert_eq!(report.end_time, t(0.0));
    }

    #[test]
    fn spawned_child_processes_run() {
        struct Parent {
            link: LinkId,
            spawned: bool,
        }
        struct Child {
            link: LinkId,
            started: bool,
        }
        impl Process for Child {
            fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
                if self.started {
                    return Block::Done;
                }
                self.started = true;
                Block::Transfer {
                    link: self.link,
                    bytes: 100.0,
                }
            }
        }
        impl Process for Parent {
            fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block {
                if !self.spawned {
                    self.spawned = true;
                    ctx.spawn(Box::new(Child {
                        link: self.link,
                        started: false,
                    }));
                }
                Block::Done
            }
        }
        let mut sim = Simulation::new();
        let link = sim.add_link("net", 100.0);
        sim.spawn(Box::new(Parent {
            link,
            spawned: false,
        }));
        let report = sim.run(None);
        assert_eq!(report.end_time, t(1.0));
        assert_eq!(report.link("net").unwrap().completed, 1);
    }

    /// Zero-duration zero-wait event storms must terminate (FIFO ordering).
    #[test]
    fn simultaneous_events_fire_in_fifo_order() {
        struct Tag {
            id: usize,
            wakes: std::rc::Rc<std::cell::RefCell<Vec<usize>>>,
        }
        impl Process for Tag {
            fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
                self.wakes.borrow_mut().push(self.id);
                Block::Done
            }
        }
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for id in 0..16 {
            sim.spawn(Box::new(Tag {
                id,
                wakes: order.clone(),
            }));
        }
        sim.run(None);
        assert_eq!(*order.borrow(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn resource_topology_exports_every_registered_resource() {
        let mut sim = Simulation::new();
        sim.add_server("scheduler", 1);
        sim.add_link("pcie", 1e9);
        sim.add_lock("columns", 64);
        sim.add_server("copy", 2);
        let topo = sim.resource_topology();
        assert_eq!(topo.len(), 4);
        let find = |name: &str| topo.iter().find(|n| n.name == name).unwrap();
        assert_eq!(find("scheduler").kind, ResourceKind::Server);
        assert_eq!(find("scheduler").slots, 1);
        assert_eq!(find("copy").slots, 2);
        assert_eq!(find("pcie").kind, ResourceKind::Link);
        assert_eq!(find("pcie").slots, 0, "PS links never block a requester");
        assert_eq!(find("columns").kind, ResourceKind::Lock);
        assert_eq!(find("columns").slots, 64);
    }
}
