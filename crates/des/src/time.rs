//! Simulated time.
//!
//! Simulated time is a non-negative `f64` measured in **seconds**. A newtype
//! keeps it from being confused with byte counts or rates, provides total
//! ordering (times are never NaN by construction), and carries unit helpers
//! for the nanosecond/microsecond quantities common in GPU modelling.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in seconds.
///
/// Construction is checked: negative or non-finite values panic, so every
/// `SimTime` in the system is a finite, non-negative number and the total
/// `Ord` implementation is sound.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds, panicking on negative or non-finite input.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// The raw value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The value in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is exactly time zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are finite by construction, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.6}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.as_millis())
        } else if self.0 >= 1e-6 {
            write!(f, "{:.3}us", self.as_micros())
        } else {
            write!(f, "{:.1}ns", self.as_nanos())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units_round_trip() {
        let t = SimTime::from_millis(1.5);
        assert!((t.as_secs() - 0.0015).abs() < 1e-12);
        assert!((t.as_micros() - 1500.0).abs() < 1e-9);
        assert!((SimTime::from_nanos(250.0).as_nanos() - 250.0).abs() < 1e-9);
        assert!((SimTime::from_micros(3.0).as_millis() - 0.003).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::ZERO.max(a), a);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(0.25);
        assert_eq!((a + b).as_secs(), 1.25);
        assert_eq!((a - b).as_secs(), 0.75);
        assert_eq!((a * 2.0).as_secs(), 2.0);
        assert_eq!((a / 4.0).as_secs(), 0.25);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn underflowing_sub_panics() {
        let _ = SimTime::from_secs(1.0) - SimTime::from_secs(2.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000000s");
        assert_eq!(format!("{}", SimTime::from_millis(2.0)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_micros(2.0)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_nanos(2.0)), "2.0ns");
    }
}
