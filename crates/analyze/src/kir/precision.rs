//! FP16 range/error analysis of the SGD update — abstract
//! interpretation over an interval domain plus a relative-error domain.
//!
//! §4 of the paper stores feature matrices in half precision to halve
//! Eq. 5's dominant `4k·sizeof(elem)` traffic term, asserting (without
//! proof) that binary16's range suffices for MF factors. This pass
//! makes that assertion checkable:
//!
//! * the **interval domain** tracks a sound magnitude bound on every
//!   factor element across epochs. One update `p' = p(1 − γλ) +
//!   γ·err·q` with `|err| ≤ R + k·M²` gives the transfer function
//!   `M' = M·|1 − γλ| + γ·(R + k·M²)·M`, with `γ` drawn from the
//!   actual LR schedule. If the bound never exceeds `F16::MAX` (65504)
//!   at a store point, **no overflow is possible** for any dataset
//!   within the declared rating bound — a proof, not a test;
//! * the **relative-error domain** compounds the per-store
//!   round-to-nearest-even bound (`ε ≤ 2⁻¹¹` in binary16's normal
//!   range) across every store a row sees, yielding a worst-case
//!   storage-error factor; it also flags *underflow risk* — the bound
//!   dipping into the subnormal range, where the relative-error
//!   guarantee degrades to an absolute `2⁻²⁵`;
//! * when the interval bound escapes, the pass does **not** just
//!   shrug: it searches for a concrete witness by running the real
//!   `cumf_core::kernel::sgd_update::<F16>` on adversarial inputs at
//!   the declared bounds and reports the first non-finite value.
//!
//! Three outcomes, all exercised by the campaign: a conservative
//! config is [`PrecisionVerdict::Proven`]; an adversarial LR spike is
//! [`PrecisionVerdict::Refuted`] with a concrete witness; and the
//! paper's aggressive Table-3 regime is honestly
//! [`PrecisionVerdict::Unknown`] — its worst-case bound diverges (the
//! quadratic `k·M²` error term compounds) while no concrete in-bounds
//! execution overflows, which is exactly the gap between worst-case
//! soundness and average-case behaviour.

use cumf_core::half::{F16_MAX_F32, F16_MIN_POSITIVE_NORMAL_F32};
use cumf_core::kernel::sgd_update;
use cumf_core::lrate::{LearningRate, Schedule};
use cumf_core::F16;

/// Per-store relative rounding error of binary16 RNE in the normal
/// range: `2⁻¹¹` (half an ulp of a 10-bit mantissa).
pub const F16_STORE_REL_ERR: f64 = 4.882_812_5e-4;

/// Analysis configuration: the training hyper-parameters the proof is
/// conditioned on.
#[derive(Debug, Clone)]
pub struct PrecisionConfig {
    /// Feature dimension.
    pub k: u32,
    /// Declared rating bound: every `|r| ≤ rating_bound`.
    pub rating_bound: f64,
    /// Regularisation λ.
    pub lambda: f64,
    /// Learning-rate schedule (γ_t per epoch).
    pub schedule: Schedule,
    /// Epochs to analyze.
    pub epochs: u32,
    /// How many updates touch one factor row per epoch (each one
    /// rounds the row through binary16 on write-back).
    pub updates_per_row_per_epoch: u32,
    /// Initial element magnitude bound (`√(1/k)` for the paper's init).
    pub init_bound: f64,
}

impl PrecisionConfig {
    /// A conservative, *provably* safe regime: ratings normalised to
    /// `[-1, 1]` and a small fixed rate. The worst-case growth per
    /// update is `1 + γ(R + k·M²)` ≈ 1.0002, so ten epochs stay many
    /// orders of magnitude below binary16's ceiling.
    pub fn safe_default(k: u32) -> Self {
        PrecisionConfig {
            k,
            rating_bound: 1.0,
            lambda: 0.05,
            schedule: Schedule::Fixed(1e-4),
            epochs: 10,
            updates_per_row_per_epoch: 50,
            init_bound: (1.0 / f64::from(k)).sqrt(),
        }
    }

    /// The paper's aggressive Table-3 regime (Netflix-like ratings,
    /// NomadDecay α = 0.08). Real training is stable here, but the
    /// worst-case interval bound diverges — the expected
    /// [`PrecisionVerdict::Unknown`] showcase.
    pub fn paper_aggressive(k: u32) -> Self {
        PrecisionConfig {
            k,
            rating_bound: 5.0,
            lambda: 0.05,
            schedule: Schedule::NomadDecay {
                alpha: 0.08,
                beta: 0.3,
            },
            epochs: 30,
            updates_per_row_per_epoch: 100,
            init_bound: (1.0 / f64::from(k)).sqrt(),
        }
    }

    /// An adversarial configuration: a spiked fixed learning rate with
    /// no meaningful regularisation. The `γ·k·M³` term explodes within
    /// a handful of updates; the pass must refute safety with a
    /// concrete overflow witness from the real binary16 kernel.
    pub fn adversarial_lr_spike(k: u32) -> Self {
        PrecisionConfig {
            k,
            rating_bound: 5.0,
            lambda: 1e-6,
            schedule: Schedule::Fixed(8.0),
            epochs: 30,
            updates_per_row_per_epoch: 100,
            init_bound: (1.0 / f64::from(k)).sqrt(),
        }
    }
}

/// A concrete overflow witness: running the real `sgd_update::<F16>`
/// kernel on in-bounds inputs produced a non-finite stored value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverflowWitness {
    /// Epoch (0-based) of the overflowing update.
    pub epoch: u32,
    /// Update index within the epoch.
    pub update: u32,
    /// Largest factor magnitude just before the fatal store.
    pub preceding_magnitude: f32,
}

/// Outcome of the precision analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecisionVerdict {
    /// Sound proof: no binary16 overflow is reachable under the config.
    Proven {
        /// Worst-case factor magnitude across all epochs.
        max_abs: f64,
        /// Compounded worst-case relative storage error.
        rel_err_bound: f64,
        /// True if the magnitude bound ever dipped below binary16's
        /// smallest positive normal (stores may land subnormal, where
        /// the relative-error guarantee degrades to absolute `2⁻²⁵`).
        subnormal_risk: bool,
    },
    /// Disproof: a concrete in-bounds execution overflows binary16.
    Refuted(OverflowWitness),
    /// The abstract bound diverges but the concrete witness search
    /// stayed finite within budget — the proof is inconclusive.
    Unknown {
        /// Epoch at which the abstract bound escaped `F16::MAX`.
        diverged_at_epoch: u32,
        /// The escaped bound.
        bound: f64,
    },
}

impl PrecisionVerdict {
    /// True only for a sound proof.
    pub fn proven(&self) -> bool {
        matches!(self, PrecisionVerdict::Proven { .. })
    }
}

impl std::fmt::Display for PrecisionVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecisionVerdict::Proven {
                max_abs,
                rel_err_bound,
                subnormal_risk,
            } => write!(
                f,
                "PROVEN: max |factor| ≤ {max_abs:.3e} < 65504, storage rel-err ≤ {rel_err_bound:.3e}{}",
                if *subnormal_risk { " (subnormal stores possible)" } else { "" }
            ),
            PrecisionVerdict::Refuted(w) => write!(
                f,
                "REFUTED: concrete overflow at epoch {}, update {} (|factor| {:.4e} → f16 Inf)",
                w.epoch, w.update, w.preceding_magnitude
            ),
            PrecisionVerdict::Unknown {
                diverged_at_epoch,
                bound,
            } => write!(
                f,
                "UNKNOWN: worst-case bound escaped to {bound:.3e} at epoch {diverged_at_epoch}; no concrete witness found"
            ),
        }
    }
}

/// One abstract SGD update on the magnitude bound `m`:
/// `|p'| ≤ |p|·|1 − γλ| + γ·(R + k·m²)·m`, then the store rounds
/// through binary16 (`×(1 + ε)`).
fn abstract_update(m: f64, k: f64, r: f64, gamma: f64, lambda: f64) -> f64 {
    let err_bound = r + k * m * m;
    let updated = m * (1.0 - gamma * lambda).abs() + gamma * err_bound * m;
    updated * (1.0 + F16_STORE_REL_ERR)
}

/// Runs the interval iteration; on escape, searches for a concrete
/// witness with the real binary16 kernel.
pub fn analyze_precision(cfg: &PrecisionConfig) -> PrecisionVerdict {
    let lr = LearningRate::new(cfg.schedule.clone());
    let k = f64::from(cfg.k);
    let mut m = cfg.init_bound;
    let mut max_abs = m;
    let mut rel_err = 0.0f64;
    let mut subnormal_risk = m < f64::from(F16_MIN_POSITIVE_NORMAL_F32);
    for epoch in 0..cfg.epochs {
        let gamma = f64::from(lr.gamma(epoch));
        for _ in 0..cfg.updates_per_row_per_epoch {
            m = abstract_update(m, k, cfg.rating_bound, gamma, cfg.lambda);
            rel_err = (1.0 + rel_err) * (1.0 + F16_STORE_REL_ERR) - 1.0;
            max_abs = max_abs.max(m);
            subnormal_risk |= m < f64::from(F16_MIN_POSITIVE_NORMAL_F32);
            if m.is_nan() || m > f64::from(F16_MAX_F32) {
                return match find_overflow_witness(cfg) {
                    Some(w) => PrecisionVerdict::Refuted(w),
                    None => PrecisionVerdict::Unknown {
                        diverged_at_epoch: epoch,
                        bound: m,
                    },
                };
            }
        }
    }
    PrecisionVerdict::Proven {
        max_abs,
        rel_err_bound: rel_err,
        subnormal_risk,
    }
}

/// Concrete witness search: drives the *real* half-precision kernel
/// (`sgd_update::<F16>`) with adversarial in-bounds inputs — both rows
/// at the initial bound, every rating pinned to `−R` so the error term
/// reinforces growth — and reports the first non-finite stored value.
pub fn find_overflow_witness(cfg: &PrecisionConfig) -> Option<OverflowWitness> {
    let kus = cfg.k as usize;
    let mut p: Vec<F16> = vec![F16::from_f32(cfg.init_bound as f32); kus];
    let mut q: Vec<F16> = vec![F16::from_f32(cfg.init_bound as f32); kus];
    let lr = LearningRate::new(cfg.schedule.clone());
    let r = -(cfg.rating_bound as f32);
    for epoch in 0..cfg.epochs {
        let gamma = lr.gamma(epoch);
        for update in 0..cfg.updates_per_row_per_epoch {
            let before = p
                .iter()
                .chain(q.iter())
                .map(|e| e.to_f32().abs())
                .fold(0.0f32, f32::max);
            sgd_update(&mut p, &mut q, r, gamma, cfg.lambda as f32);
            let overflowed = p.iter().chain(q.iter()).any(|e| !e.to_f32().is_finite());
            if overflowed {
                return Some(OverflowWitness {
                    epoch,
                    update,
                    preceding_magnitude: before,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_default_is_proven() {
        for k in [16, 64, 128] {
            match analyze_precision(&PrecisionConfig::safe_default(k)) {
                PrecisionVerdict::Proven {
                    max_abs,
                    rel_err_bound,
                    subnormal_risk,
                } => {
                    assert!(max_abs < 1.0, "k={k}: bound {max_abs}");
                    // 500 stores × 2⁻¹¹ compounds to ≈ 28 % worst case.
                    assert!(rel_err_bound < 0.3, "rel err {rel_err_bound}");
                    assert!(!subnormal_risk);
                }
                other => panic!("expected proof for k={k}, got {other}"),
            }
        }
    }

    #[test]
    fn lr_spike_is_refuted_with_concrete_witness() {
        match analyze_precision(&PrecisionConfig::adversarial_lr_spike(64)) {
            PrecisionVerdict::Refuted(w) => {
                assert!(w.preceding_magnitude.is_finite());
                assert_eq!(w.epoch, 0, "spike must blow up immediately");
            }
            other => panic!("expected refutation, got {other}"),
        }
    }

    #[test]
    fn aggressive_paper_regime_is_honestly_unknown() {
        // Worst-case bound diverges (quadratic error term) but the
        // concrete kernel stays bounded — neither proof nor refutation.
        match analyze_precision(&PrecisionConfig::paper_aggressive(64)) {
            PrecisionVerdict::Unknown {
                diverged_at_epoch, ..
            } => assert_eq!(diverged_at_epoch, 0),
            other => panic!("expected Unknown, got {other}"),
        }
    }

    #[test]
    fn abstract_bound_dominates_concrete_trajectory() {
        // Soundness spot-check: replay the concrete kernel alongside
        // the abstract iteration on the adversarial config — the bound
        // must dominate the true magnitude at every step until escape.
        let cfg = PrecisionConfig::adversarial_lr_spike(16);
        let kus = cfg.k as usize;
        let mut p: Vec<F16> = vec![F16::from_f32(cfg.init_bound as f32); kus];
        let mut q: Vec<F16> = vec![F16::from_f32(cfg.init_bound as f32); kus];
        let lr = LearningRate::new(cfg.schedule.clone());
        let mut m = cfg.init_bound;
        'outer: for epoch in 0..cfg.epochs {
            let gamma = lr.gamma(epoch);
            for _ in 0..cfg.updates_per_row_per_epoch {
                m = abstract_update(
                    m,
                    f64::from(cfg.k),
                    cfg.rating_bound,
                    f64::from(gamma),
                    cfg.lambda,
                );
                sgd_update(
                    &mut p,
                    &mut q,
                    -(cfg.rating_bound as f32),
                    gamma,
                    cfg.lambda as f32,
                );
                let concrete = p
                    .iter()
                    .chain(q.iter())
                    .map(|e| f64::from(e.to_f32().abs()))
                    .fold(0.0, f64::max);
                if !concrete.is_finite() || m > f64::from(F16_MAX_F32) {
                    break 'outer;
                }
                assert!(m >= concrete, "bound {m} below concrete {concrete}");
            }
        }
    }

    #[test]
    fn tiny_init_reports_subnormal_risk() {
        let mut cfg = PrecisionConfig::safe_default(16);
        cfg.init_bound = 1e-6; // below binary16's 2⁻¹⁴ normal floor
        match analyze_precision(&cfg) {
            PrecisionVerdict::Proven { subnormal_risk, .. } => assert!(subnormal_risk),
            other => panic!("expected proof with subnormal risk, got {other}"),
        }
    }
}
