//! # kir — a typed kernel IR for the SGD update inner loops
//!
//! A tiny straight-line intermediate representation into which the
//! paper's SGD update kernel (Algorithm 1) and the two baseline inner
//! loops (LIBMF's SSE CPU loop, BIDMach's column-major GPU loop) are
//! *lifted* by hand-written lifters. Three static passes interpret the
//! IR over abstract domains:
//!
//! * [`traffic`] — memory-traffic abstract interpretation: exact DRAM
//!   bytes per update as a closed form in `k` and the storage precision,
//!   cross-checked against [`cumf_gpu_sim::SgdUpdateCost`] **and**
//!   against the bytes the DES executor actually charges;
//! * [`coalesce`] — per-warp cache-line footprint of every vector
//!   access, validated against the simulator's line-granular
//!   [`cumf_gpu_sim::lines_touched`] accounting;
//! * [`precision`] — interval + relative-error abstract domains proving
//!   (or refuting, with a concrete witness) that FP16 feature storage
//!   cannot overflow binary16 for given rating bounds and LR schedule.
//!
//! The IR is deliberately small: one sample load, vector loads/stores
//! with symbolic address patterns, casts, fused multiply-adds, and one
//! tree reduction. That is the entire data path of Eq. 5's cost model
//! (`bytes = 12 + 4k·sizeof(elem)`, `flops = 6k + Σ k/2^i`), so every
//! pass can be exact rather than approximate.

pub mod coalesce;
pub mod precision;
pub mod traffic;

/// Scalar element datatype carried by a register or buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// IEEE 754 binary32.
    F32,
    /// IEEE 754 binary16 (storage only; arithmetic is always `F32`).
    F16,
}

impl Dtype {
    /// Storage bytes per element.
    pub fn bytes(self) -> u32 {
        match self {
            Dtype::F32 => 4,
            Dtype::F16 => 2,
        }
    }

    /// Human name, matching `Element::NAME`.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F16 => "f16",
        }
    }
}

/// A DRAM-resident buffer the kernel can address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Buf {
    /// The COO sample stream `(u, v, r)`.
    Samples,
    /// The user factor matrix `P` (row `u`, length `k`).
    P,
    /// The item factor matrix `Q` (row `v`, length `k`).
    Q,
}

/// How a warp's 32 lanes map onto the `k` elements of a vector access.
///
/// The coalescing pass derives cache-line counts from this; the traffic
/// pass ignores it (DRAM bytes depend only on element count × width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Lane `l` of iteration `j` touches element `32·j + l` of a
    /// contiguous row — cuMF_SGD's layout, fully coalesced.
    CoalescedRow,
    /// Lane `l` touches element `(32·j + l) · stride_elems` — an
    /// array-of-structures / column-major layout (BIDMach's factor
    /// storage viewed per-sample), uncoalesced for `stride_elems > 1`.
    Strided {
        /// Element distance between consecutive lanes' addresses.
        stride_elems: u32,
    },
    /// Every lane reads the same scalar (the rating broadcast).
    Broadcast,
}

/// A virtual vector register of `k` lanes (f32 arithmetic width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// One IR instruction. Programs are straight-line: the per-sample inner
/// loop body, with the `k`-element loops implicit in the vector ops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// Load the 12-byte COO sample `(u: u32, v: u32, r: f32)`.
    LoadSample,
    /// Load the `k`-element row of `buf` into `dst` (storage dtype).
    LoadVec {
        /// Source buffer.
        buf: Buf,
        /// Storage element type in DRAM.
        dtype: Dtype,
        /// Warp address pattern.
        access: Access,
        /// Destination register.
        dst: Reg,
    },
    /// Convert `src` between storage and arithmetic dtypes (register
    /// file only — zero DRAM traffic, zero counted flops).
    Cast {
        /// Source register.
        src: Reg,
        /// Source dtype.
        from: Dtype,
        /// Destination dtype.
        to: Dtype,
        /// Destination register.
        dst: Reg,
    },
    /// `dst[e] ← dst[e] ⊙ fma(a[e], b[e])` — one fused multiply-add per
    /// element, i.e. 2 flops × k. The three Fmas of the update kernel
    /// (dot accumulate, p-update, q-update) are exactly Eq. 5's `6k`.
    Fma {
        /// Accumulator register.
        dst: Reg,
        /// First multiplicand.
        a: Reg,
        /// Second multiplicand.
        b: Reg,
    },
    /// Tree-reduce `src` to a scalar (the warp shuffle reduction):
    /// `Σ_{i≥1} ⌊k/2^i⌋` adds — Eq. 5's reduction term.
    Reduce {
        /// Register holding the partial products.
        src: Reg,
    },
    /// Store `src` back to the `k`-element row of `buf`.
    StoreVec {
        /// Destination buffer.
        buf: Buf,
        /// Storage element type in DRAM.
        dtype: Dtype,
        /// Warp address pattern.
        access: Access,
        /// Source register.
        src: Reg,
    },
}

/// A lifted inner loop: one program = one SGD update (one rating).
#[derive(Debug, Clone)]
pub struct Program {
    /// Which kernel this was lifted from.
    pub name: &'static str,
    /// Feature vector length.
    pub k: u32,
    /// Storage precision of the factor matrices.
    pub elem: Dtype,
    /// Straight-line instruction sequence.
    pub insts: Vec<Inst>,
}

/// Lifts `cumf_core::kernel::sgd_update::<E>` — Algorithm 1's inner
/// loop as the GPU executes it. The portable Rust kernel calls
/// `to_f32` on every element twice (once in the dot product, once in
/// the update loop); on the GPU the second read hits the register file,
/// which the lift makes explicit: the second `LoadVec` pair targets the
/// *same destination registers*, which the traffic interpreter
/// recognises as register-resident (0 DRAM bytes).
pub fn lift_sgd_update(k: u32, elem: Dtype) -> Program {
    let (rp, rq, acc, pn, qn) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    let coal = Access::CoalescedRow;
    let mut insts = vec![
        Inst::LoadSample,
        // Dot-product phase: p·q with per-element FMAs + tree reduce.
        Inst::LoadVec {
            buf: Buf::P,
            dtype: elem,
            access: coal,
            dst: rp,
        },
        Inst::LoadVec {
            buf: Buf::Q,
            dtype: elem,
            access: coal,
            dst: rq,
        },
    ];
    if elem == Dtype::F16 {
        insts.push(Inst::Cast {
            src: rp,
            from: Dtype::F16,
            to: Dtype::F32,
            dst: rp,
        });
        insts.push(Inst::Cast {
            src: rq,
            from: Dtype::F16,
            to: Dtype::F32,
            dst: rq,
        });
    }
    insts.extend([
        Inst::Fma {
            dst: acc,
            a: rp,
            b: rq,
        },
        Inst::Reduce { src: acc },
        // Update phase: the kernel re-reads p[e] and q[e]; same rows,
        // same registers — register-resident on hardware.
        Inst::LoadVec {
            buf: Buf::P,
            dtype: elem,
            access: coal,
            dst: rp,
        },
        Inst::LoadVec {
            buf: Buf::Q,
            dtype: elem,
            access: coal,
            dst: rq,
        },
    ]);
    if elem == Dtype::F16 {
        // The portable kernel converts on every read; the conversions
        // are register-file ops (no traffic, uncounted flops).
        insts.push(Inst::Cast {
            src: rp,
            from: Dtype::F16,
            to: Dtype::F32,
            dst: rp,
        });
        insts.push(Inst::Cast {
            src: rq,
            from: Dtype::F16,
            to: Dtype::F32,
            dst: rq,
        });
    }
    insts.extend([
        Inst::Fma {
            dst: pn,
            a: rp,
            b: rq,
        }, // p += γ(err·q − λp)
        Inst::Fma {
            dst: qn,
            a: rq,
            b: rp,
        }, // q += γ(err·p_old − λq)
    ]);
    if elem == Dtype::F16 {
        insts.push(Inst::Cast {
            src: pn,
            from: Dtype::F32,
            to: Dtype::F16,
            dst: pn,
        });
        insts.push(Inst::Cast {
            src: qn,
            from: Dtype::F32,
            to: Dtype::F16,
            dst: qn,
        });
    }
    insts.extend([
        Inst::StoreVec {
            buf: Buf::P,
            dtype: elem,
            access: coal,
            src: pn,
        },
        Inst::StoreVec {
            buf: Buf::Q,
            dtype: elem,
            access: coal,
            src: qn,
        },
    ]);
    Program {
        name: "sgd_update",
        k,
        elem,
        insts,
    }
}

/// Lifts LIBMF's SSE inner loop (§2.2 baseline). Identical data path to
/// the GPU kernel — contiguous rows, SIMD over the row — so it charges
/// the same Eq. 5 traffic; the difference is all in the time model
/// (cache hierarchy), not the per-update byte count.
pub fn lift_libmf_inner(k: u32) -> Program {
    let mut p = lift_sgd_update(k, Dtype::F32);
    p.name = "libmf_inner";
    p
}

/// Lifts BIDMach's per-sample view (§2.2 baseline). BIDMach stores
/// factor matrices column-major, so consecutive elements of one row sit
/// `stride` rows apart in memory: every lane of a warp touches a
/// different cache line. Same byte count as Eq. 5, catastrophically
/// worse line footprint — the coalescing pass must flag every vector
/// access of this program.
pub fn lift_bidmach_inner(k: u32, stride_elems: u32) -> Program {
    let mut p = lift_sgd_update(k, Dtype::F32);
    p.name = "bidmach_inner";
    for inst in &mut p.insts {
        match inst {
            Inst::LoadVec { access, .. } | Inst::StoreVec { access, .. } => {
                *access = Access::Strided { stride_elems };
            }
            _ => {}
        }
    }
    p
}

/// A type-checking error: the program is not a well-formed SGD update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError(pub String);

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kir type error: {}", self.0)
    }
}

/// Checks a lifted program: every register is defined before use and
/// carries `F32` when it reaches arithmetic; loads/stores agree with the
/// program's storage dtype; exactly one sample load; both factor rows
/// are written back. The passes require a checked program.
pub fn type_check(p: &Program) -> Result<(), TypeError> {
    use std::collections::BTreeMap;
    let err = |m: String| Err(TypeError(m));
    if p.k == 0 {
        return err("k must be positive".into());
    }
    let mut regs: BTreeMap<u8, Dtype> = BTreeMap::new();
    let mut sample_loads = 0u32;
    let mut stored: Vec<Buf> = Vec::new();
    for (i, inst) in p.insts.iter().enumerate() {
        match *inst {
            Inst::LoadSample => sample_loads += 1,
            Inst::LoadVec { dtype, dst, .. } => {
                if dtype != p.elem {
                    return err(format!(
                        "inst {i}: load dtype {:?} != program elem {:?}",
                        dtype, p.elem
                    ));
                }
                regs.insert(dst.0, dtype);
            }
            Inst::Cast { src, from, to, dst } => {
                match regs.get(&src.0) {
                    None => return err(format!("inst {i}: cast of undefined register r{}", src.0)),
                    Some(&d) if d != from => {
                        return err(format!(
                            "inst {i}: cast-from {:?} but r{} holds {:?}",
                            from, src.0, d
                        ))
                    }
                    Some(_) => {}
                }
                regs.insert(dst.0, to);
            }
            Inst::Fma { dst, a, b } => {
                for r in [a, b] {
                    match regs.get(&r.0) {
                        None => return err(format!("inst {i}: fma reads undefined register r{}", r.0)),
                        Some(Dtype::F16) => {
                            return err(format!(
                                "inst {i}: fma operand r{} is f16 — arithmetic must be f32 (missing cast)",
                                r.0
                            ))
                        }
                        Some(Dtype::F32) => {}
                    }
                }
                regs.insert(dst.0, Dtype::F32);
            }
            Inst::Reduce { src } => match regs.get(&src.0) {
                None => return err(format!("inst {i}: reduce of undefined register r{}", src.0)),
                Some(Dtype::F16) => {
                    return err(format!("inst {i}: reduce of f16 register r{}", src.0))
                }
                Some(Dtype::F32) => {}
            },
            Inst::StoreVec {
                buf, dtype, src, ..
            } => {
                if dtype != p.elem {
                    return err(format!(
                        "inst {i}: store dtype {:?} != program elem {:?}",
                        dtype, p.elem
                    ));
                }
                match regs.get(&src.0) {
                    None => {
                        return err(format!("inst {i}: store of undefined register r{}", src.0))
                    }
                    Some(&d) if d != dtype => {
                        return err(format!(
                            "inst {i}: store wants {:?} but r{} holds {:?} (missing cast)",
                            dtype, src.0, d
                        ))
                    }
                    Some(_) => {}
                }
                stored.push(buf);
            }
        }
    }
    if sample_loads != 1 {
        return err(format!("{sample_loads} sample loads (want exactly 1)"));
    }
    for buf in [Buf::P, Buf::Q] {
        if !stored.contains(&buf) {
            return err(format!("{buf:?} row is never written back"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lifts_type_check() {
        for k in [1, 16, 31, 64, 128] {
            type_check(&lift_sgd_update(k, Dtype::F32)).unwrap();
            type_check(&lift_sgd_update(k, Dtype::F16)).unwrap();
            type_check(&lift_libmf_inner(k)).unwrap();
            type_check(&lift_bidmach_inner(k, 4096)).unwrap();
        }
    }

    #[test]
    fn f16_lift_inserts_casts_both_ways() {
        let p = lift_sgd_update(32, Dtype::F16);
        let casts: Vec<_> = p
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Cast { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            casts,
            vec![
                (Dtype::F16, Dtype::F32),
                (Dtype::F16, Dtype::F32),
                (Dtype::F16, Dtype::F32),
                (Dtype::F16, Dtype::F32),
                (Dtype::F32, Dtype::F16),
                (Dtype::F32, Dtype::F16),
            ]
        );
    }

    #[test]
    fn missing_cast_is_a_type_error() {
        let mut p = lift_sgd_update(16, Dtype::F16);
        // Strip the casts: f16 registers now reach the Fma directly.
        p.insts.retain(|i| !matches!(i, Inst::Cast { .. }));
        let e = type_check(&p).unwrap_err();
        assert!(e.0.contains("f16"), "{e}");
    }

    #[test]
    fn missing_writeback_is_a_type_error() {
        let mut p = lift_sgd_update(16, Dtype::F32);
        p.insts
            .retain(|i| !matches!(i, Inst::StoreVec { buf: Buf::Q, .. }));
        let e = type_check(&p).unwrap_err();
        assert!(e.0.contains('Q'), "{e}");
    }

    #[test]
    fn bidmach_lift_is_fully_strided() {
        let p = lift_bidmach_inner(64, 1000);
        for inst in &p.insts {
            if let Inst::LoadVec { access, .. } | Inst::StoreVec { access, .. } = inst {
                assert_eq!(*access, Access::Strided { stride_elems: 1000 });
            }
        }
    }
}
