//! Coalescing / cache-line footprint analysis over [`kir`](super)
//! programs.
//!
//! For every vector access that reaches DRAM, the pass replays one
//! warp's address stream — 32 lanes per iteration, `⌈k/32⌉` iterations
//! — and counts distinct L1 cache lines using the **simulator's own**
//! line-granular primitive, [`cumf_gpu_sim::lines_touched`]. That makes
//! the analysis correct by construction with respect to the memory
//! model it certifies: there is one definition of "lines touched" in
//! the workspace and both the simulator and this pass call it.
//!
//! cuMF_SGD's row-contiguous layout yields the ideal
//! `⌈k·sizeof(elem)/line⌉` lines per row; BIDMach's column-major view
//! makes every lane touch a different line (`32×` expansion), which the
//! pass flags as uncoalesced — §2.2's qualitative claim made exact.

use super::{Access, Buf, Inst, Program};
use cumf_gpu_sim::{lines_touched, WARP_SIZE};
use std::collections::BTreeSet;

/// Line footprint of one DRAM vector access.
#[derive(Debug, Clone)]
pub struct AccessFootprint {
    /// Human description, e.g. `"load P (CoalescedRow)"`.
    pub desc: String,
    /// Distinct cache lines one warp touches servicing this access.
    pub lines: u64,
    /// Lines a perfectly coalesced access of the same volume would
    /// touch: `⌈k·sizeof(elem)/line_bytes⌉` (at an aligned base).
    pub ideal_lines: u64,
    /// `lines == ideal_lines`.
    pub coalesced: bool,
}

/// Whole-program coalescing report.
#[derive(Debug, Clone)]
pub struct CoalesceReport {
    /// Program name.
    pub name: &'static str,
    /// Feature dimension.
    pub k: u32,
    /// L1 line size used (the paper GPUs: 128 B).
    pub line_bytes: u32,
    /// Per-access footprints (register-resident reloads excluded — they
    /// touch zero lines).
    pub accesses: Vec<AccessFootprint>,
    /// Total lines per update across all DRAM accesses.
    pub total_lines: u64,
    /// Total under perfect coalescing.
    pub ideal_total: u64,
    /// Descriptions of accesses that failed the coalescing check.
    pub uncoalesced: Vec<String>,
}

impl CoalesceReport {
    /// True when every DRAM access is perfectly coalesced.
    pub fn fully_coalesced(&self) -> bool {
        self.uncoalesced.is_empty()
    }

    /// Line-traffic expansion over the ideal layout (1.0 = perfect).
    pub fn expansion(&self) -> f64 {
        self.total_lines as f64 / self.ideal_total as f64
    }
}

impl std::fmt::Display for CoalesceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} k={}: {} lines/update (ideal {}, {:.1}× expansion), {}",
            self.name,
            self.k,
            self.total_lines,
            self.ideal_total,
            self.expansion(),
            if self.fully_coalesced() {
                "fully coalesced".to_string()
            } else {
                format!("{} UNCOALESCED accesses", self.uncoalesced.len())
            }
        )
    }
}

/// Distinct lines one warp touches for a `k`-element access of
/// `elem_bytes`-wide elements with the given pattern, starting at an
/// aligned row base. Enumerates every lane of every iteration and feeds
/// each lane's `(address, width)` through the simulator's
/// [`lines_touched`] — no independent line arithmetic to drift.
fn warp_lines(k: u32, elem_bytes: u32, access: Access, line_bytes: u32) -> u64 {
    let (k, b, line) = (u64::from(k), u64::from(elem_bytes), line_bytes);
    let mut lines: BTreeSet<u64> = BTreeSet::new();
    let mut touch = |addr: u64, len: u64| {
        let first = addr / u64::from(line);
        for l in 0..lines_touched(addr, len, line) {
            lines.insert(first + l);
        }
    };
    match access {
        Access::Broadcast => touch(0, b),
        Access::CoalescedRow => {
            // Each iteration services 32 consecutive elements: one
            // contiguous span per iteration.
            let mut e = 0;
            while e < k {
                let w = (k - e).min(WARP_SIZE as u64);
                touch(e * b, w * b);
                e += w;
            }
        }
        Access::Strided { stride_elems } => {
            for e in 0..k {
                touch(e * u64::from(stride_elems) * b, b);
            }
        }
    }
    lines.len() as u64
}

/// Runs the coalescing pass over a type-checked program.
pub fn analyze_coalescing(p: &Program, line_bytes: u32) -> CoalesceReport {
    let elem_bytes = p.elem.bytes();
    let row_bytes = u64::from(p.k) * u64::from(elem_bytes);
    let ideal = lines_touched(0, row_bytes, line_bytes);
    let mut resident: BTreeSet<Buf> = BTreeSet::new();
    let mut accesses = Vec::new();
    for inst in &p.insts {
        let (verb, buf, access) = match *inst {
            Inst::LoadVec { buf, access, .. } => {
                if !resident.insert(buf) {
                    continue; // register-resident: zero lines
                }
                ("load", buf, access)
            }
            Inst::StoreVec { buf, access, .. } => ("store", buf, access),
            _ => continue,
        };
        let lines = warp_lines(p.k, elem_bytes, access, line_bytes);
        accesses.push(AccessFootprint {
            desc: format!("{verb} {buf:?} ({access:?})"),
            lines,
            ideal_lines: ideal,
            coalesced: lines == ideal,
        });
    }
    let total_lines = accesses.iter().map(|a| a.lines).sum();
    let ideal_total = accesses.iter().map(|a| a.ideal_lines).sum();
    let uncoalesced = accesses
        .iter()
        .filter(|a| !a.coalesced)
        .map(|a| a.desc.clone())
        .collect();
    CoalesceReport {
        name: p.name,
        k: p.k,
        line_bytes,
        accesses,
        total_lines,
        ideal_total,
        uncoalesced,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lift_bidmach_inner, lift_sgd_update, Dtype};
    use super::*;

    #[test]
    fn sgd_update_is_fully_coalesced() {
        for k in [16, 31, 64, 128] {
            for elem in [Dtype::F32, Dtype::F16] {
                let r = analyze_coalescing(&lift_sgd_update(k, elem), 128);
                assert!(r.fully_coalesced(), "{r}");
                // 2 DRAM loads + 2 stores, each at the ideal line count.
                assert_eq!(r.accesses.len(), 4);
                let row = u64::from(k) * u64::from(elem.bytes());
                assert_eq!(r.total_lines, 4 * lines_touched(0, row, 128));
                assert!((r.expansion() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k128_f32_touches_four_lines_per_row() {
        // 128 elements × 4 B = 512 B = 4 lines of 128 B — the paper's
        // canonical configuration streams whole lines, nothing wasted.
        let r = analyze_coalescing(&lift_sgd_update(128, Dtype::F32), 128);
        assert!(r.accesses.iter().all(|a| a.lines == 4));
    }

    #[test]
    fn bidmach_column_major_is_flagged_uncoalesced() {
        // Stride of 4096 elements: every lane its own line — 32 lines
        // per warp iteration where 1 would do.
        let r = analyze_coalescing(&lift_bidmach_inner(64, 4096), 128);
        assert!(!r.fully_coalesced());
        assert_eq!(r.uncoalesced.len(), 4, "{r}");
        // k=64 f32: ideal 2 lines/access; strided touches 64 lines.
        assert_eq!(r.total_lines, 4 * 64);
        assert!(r.expansion() > 30.0, "expansion {}", r.expansion());
    }

    #[test]
    fn small_stride_partially_coalesces() {
        // Stride 2 (AoS pairs): half of each line is wasted — exactly
        // 2× line expansion, still flagged.
        let r = analyze_coalescing(&lift_bidmach_inner(64, 2), 128);
        assert!(!r.fully_coalesced());
        assert!((r.expansion() - 2.0).abs() < 1e-12, "{}", r.expansion());
    }

    #[test]
    fn warp_lines_agrees_with_simulator_span_accounting() {
        // For contiguous access the per-iteration union must equal the
        // simulator's single-span count over the whole row.
        for (k, b) in [(16u32, 4u32), (31, 2), (33, 4), (128, 2), (97, 4)] {
            let by_warp = warp_lines(k, b, Access::CoalescedRow, 128);
            let by_span = lines_touched(0, u64::from(k) * u64::from(b), 128);
            assert_eq!(by_warp, by_span, "k={k} b={b}");
        }
    }
}
