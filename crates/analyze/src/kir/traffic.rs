//! Memory-traffic abstract interpretation over [`kir`](super) programs.
//!
//! The abstract domain is a closed-form linear expression in `k`
//! ([`LinExpr`]) plus a register-residency map: a `LoadVec` whose
//! destination row is already register-resident (loaded earlier in the
//! same update, as the kernel's second read of `p`/`q` is) charges zero
//! DRAM bytes. Interpretation is exact, not approximate — the IR has no
//! branches — so the derived bytes-per-update must agree **bit-for-bit**
//! with two independent witnesses:
//!
//! 1. the analytical cost model [`SgdUpdateCost::bytes`] (Eq. 5), and
//! 2. the bytes the DES executor *actually charges* while simulating a
//!    real epoch ([`cumf_gpu_sim::ThroughputResult::bytes_charged`]).
//!
//! [`cross_check`] runs all three and refuses to certify on any drift;
//! [`cross_check_with_model`] accepts an arbitrary (possibly broken)
//! model so the campaign can prove the checker refutes a wrong constant
//! with a concrete byte delta.

use super::{Buf, Dtype, Inst, Program};
use cumf_gpu_sim::executor::{simulate_throughput, SchedulerModel, ThroughputConfig};
use cumf_gpu_sim::{Precision, RatingAccess, SgdUpdateCost};
use std::collections::BTreeSet;

/// A linear form `konst + per_k · k` over byte counts — the closed-form
/// result of abstract interpretation, before substituting a concrete `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinExpr {
    /// Constant term, bytes (the 12-byte COO sample, or a cache line).
    pub konst: u64,
    /// Coefficient of `k`, bytes per feature element.
    pub per_k: u64,
}

impl LinExpr {
    /// Substitutes a concrete `k`.
    pub fn eval(&self, k: u32) -> u64 {
        self.konst + self.per_k * u64::from(k)
    }
}

impl std::fmt::Display for LinExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} + {}k", self.konst, self.per_k)
    }
}

/// Result of interpreting one program's memory traffic.
#[derive(Debug, Clone)]
pub struct TrafficSummary {
    /// Program name.
    pub name: &'static str,
    /// Feature dimension the program was lifted at.
    pub k: u32,
    /// DRAM bytes per update, closed form in `k`.
    pub bytes: LinExpr,
    /// Flops per update at this `k` (not linear in `k`: the tree
    /// reduction contributes `Σ ⌊k/2^i⌋`).
    pub flops: u64,
    /// Element loads the *source* executes (the portable kernel reads
    /// each row twice: dot product + update loop) — `4k` for the SGD
    /// update.
    pub element_loads: u64,
    /// Element loads that reach DRAM after register residency — `2k`.
    pub dram_element_loads: u64,
    /// Element stores (always reach DRAM) — `2k`.
    pub element_stores: u64,
}

/// Interprets a type-checked program over the traffic domain.
///
/// `rating` selects the sample-stream pattern: `Streamed` charges the
/// raw 12 bytes, `RandomLine` a full cache line (Hogwild!'s random
/// rating access defeats the streaming prefetcher).
pub fn interpret_traffic(p: &Program, rating: RatingAccess) -> TrafficSummary {
    let elem_bytes = u64::from(p.elem.bytes());
    let k = u64::from(p.k);
    let mut resident: BTreeSet<Buf> = BTreeSet::new();
    let mut konst = 0u64;
    let mut per_k = 0u64;
    let (mut loads, mut dram_loads, mut stores) = (0u64, 0u64, 0u64);
    let mut flops = 0u64;
    for inst in &p.insts {
        match *inst {
            Inst::LoadSample => {
                konst += match rating {
                    RatingAccess::Streamed => 12,
                    RatingAccess::RandomLine { line_bytes } => u64::from(line_bytes).max(12),
                };
            }
            Inst::LoadVec { buf, .. } => {
                loads += k;
                if resident.insert(buf) {
                    // First touch this update: k elements stream from DRAM.
                    dram_loads += k;
                    per_k += elem_bytes;
                }
                // Already resident: the GPU reads the register file; the
                // portable kernel's duplicate `to_f32` costs nothing here.
            }
            Inst::Cast { .. } => {} // register file only
            Inst::Fma { .. } => flops += 2 * k,
            Inst::Reduce { .. } => {
                let mut width = k;
                while width > 1 {
                    width /= 2;
                    flops += width;
                }
            }
            Inst::StoreVec { .. } => {
                stores += k;
                per_k += elem_bytes;
            }
        }
    }
    TrafficSummary {
        name: p.name,
        k: p.k,
        bytes: LinExpr { konst, per_k },
        flops,
        element_loads: loads,
        dram_element_loads: dram_loads,
        element_stores: stores,
    }
}

/// Verdict of the three-way kernel ↔ cost-model ↔ simulator agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckVerdict {
    /// All three byte counts (and both flop counts) agree bit-for-bit.
    Certified,
    /// Two legs disagree; carries the concrete delta.
    Refuted {
        /// Which comparison failed (`"kir vs model bytes"`, …).
        leg: &'static str,
        /// The kernel-IR-derived value (ground truth).
        expected: u64,
        /// The disagreeing value.
        got: u64,
    },
}

impl CheckVerdict {
    /// Signed delta `got − expected` for a refutation, `0` otherwise.
    pub fn delta(&self) -> i64 {
        match self {
            CheckVerdict::Certified => 0,
            CheckVerdict::Refuted { expected, got, .. } => *got as i64 - *expected as i64,
        }
    }
}

/// One cost cross-check: kir-derived traffic vs an analytical model vs
/// the executor's charged bytes for a real simulated epoch.
#[derive(Debug, Clone)]
pub struct CostCrossCheck {
    /// Feature dimension.
    pub k: u32,
    /// Storage precision name.
    pub precision: &'static str,
    /// Bytes/update derived by the abstract interpreter.
    pub kir_bytes: u64,
    /// Bytes/update claimed by the model under test.
    pub model_bytes: u64,
    /// Updates the executor simulated.
    pub executor_updates: u64,
    /// Total bytes the executor charged over those updates.
    pub executor_bytes: u64,
    /// Flops/update derived by the abstract interpreter.
    pub kir_flops: u64,
    /// Flops/update claimed by the model under test.
    pub model_flops: u64,
    /// Closed form backing `kir_bytes`.
    pub closed_form: LinExpr,
    /// First failing leg, or `Certified`.
    pub verdict: CheckVerdict,
}

impl CostCrossCheck {
    /// True when every leg agreed.
    pub fn certified(&self) -> bool {
        self.verdict == CheckVerdict::Certified
    }
}

impl std::fmt::Display for CostCrossCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.verdict {
            CheckVerdict::Certified => write!(
                f,
                "k={} {}: certified — {} B/update ({}), {} flops; executor charged {} B over {} updates",
                self.k,
                self.precision,
                self.kir_bytes,
                self.closed_form,
                self.kir_flops,
                self.executor_bytes,
                self.executor_updates,
            ),
            CheckVerdict::Refuted { leg, expected, got } => write!(
                f,
                "k={} {}: REFUTED on {leg} — expected {expected}, got {got} (Δ {:+} B)",
                self.k,
                self.precision,
                *got as i64 - *expected as i64,
            ),
        }
    }
}

fn executor_witness(cost: SgdUpdateCost, updates: u64) -> (u64, u64) {
    let r = simulate_throughput(&ThroughputConfig {
        workers: 8,
        total_bandwidth: 240e9,
        cost,
        scheduler: SchedulerModel::BatchHogwild {
            batch: 256,
            per_batch_overhead_s: 1e-7,
        },
        total_updates: updates,
    });
    (r.updates, r.bytes_charged)
}

/// Cross-checks the SGD update kernel at `(k, elem)` against an
/// arbitrary `(model_bytes, model_flops)` claim and against the DES
/// executor charging `exec_cost` per update. The real campaign passes
/// [`SgdUpdateCost`] for both; the broken-twin campaign passes a model
/// with a wrong constant and must see a refutation.
pub fn cross_check_with_model(
    k: u32,
    elem: Dtype,
    rating: RatingAccess,
    model_bytes: u64,
    model_flops: u64,
    exec_cost: SgdUpdateCost,
) -> CostCrossCheck {
    let program = super::lift_sgd_update(k, elem);
    super::type_check(&program).expect("lifted program must type-check");
    let t = interpret_traffic(&program, rating);
    let kir_bytes = t.bytes.eval(k);
    let (executor_updates, executor_bytes) = executor_witness(exec_cost, 10_000);
    let verdict = if kir_bytes != model_bytes {
        CheckVerdict::Refuted {
            leg: "kir vs model bytes",
            expected: kir_bytes,
            got: model_bytes,
        }
    } else if t.flops != model_flops {
        CheckVerdict::Refuted {
            leg: "kir vs model flops",
            expected: t.flops,
            got: model_flops,
        }
    } else if executor_bytes != executor_updates * kir_bytes {
        CheckVerdict::Refuted {
            leg: "kir vs executor bytes",
            expected: executor_updates * kir_bytes,
            got: executor_bytes,
        }
    } else {
        CheckVerdict::Certified
    };
    CostCrossCheck {
        k,
        precision: elem.name(),
        kir_bytes,
        model_bytes,
        executor_updates,
        executor_bytes,
        kir_flops: t.flops,
        model_flops,
        closed_form: t.bytes,
        verdict,
    }
}

/// The real three-way check: kernel IR vs [`SgdUpdateCost`] vs the DES
/// executor, all at `(k, elem, rating)`. Drift anywhere is a refutation.
pub fn cross_check(k: u32, elem: Dtype, rating: RatingAccess) -> CostCrossCheck {
    let precision = match elem {
        Dtype::F32 => Precision::F32,
        Dtype::F16 => Precision::F16,
    };
    let cost = SgdUpdateCost {
        k,
        precision,
        rating_access: rating,
    };
    cross_check_with_model(k, elem, rating, cost.bytes(), cost.flops(), cost)
}

/// The deliberately broken twin: a cost model that forgot the `q`-row
/// write-back (`3k` elements instead of `4k`). [`cross_check_with_model`]
/// must refute it with a concrete `Δ = −k·sizeof(elem)` byte delta.
pub fn broken_twin_bytes(k: u32, elem: Dtype) -> u64 {
    12 + 3 * u64::from(k) * u64::from(elem.bytes())
}

#[cfg(test)]
mod tests {
    use super::super::{lift_bidmach_inner, lift_libmf_inner, lift_sgd_update};
    use super::*;

    #[test]
    fn closed_form_matches_eq5_for_both_precisions() {
        for k in [8, 16, 31, 64, 128] {
            let t32 = interpret_traffic(&lift_sgd_update(k, Dtype::F32), RatingAccess::Streamed);
            assert_eq!(
                t32.bytes,
                LinExpr {
                    konst: 12,
                    per_k: 16
                }
            );
            assert_eq!(t32.bytes.eval(k), SgdUpdateCost::cpu_f32(k).bytes());
            let t16 = interpret_traffic(&lift_sgd_update(k, Dtype::F16), RatingAccess::Streamed);
            assert_eq!(
                t16.bytes,
                LinExpr {
                    konst: 12,
                    per_k: 8
                }
            );
            // `cumf(k)` is the paper's half-precision default config.
            assert_eq!(t16.bytes.eval(k), SgdUpdateCost::cumf(k).bytes());
            // Register residency: 4k source loads, 2k DRAM loads, 2k stores.
            let k64 = u64::from(k);
            assert_eq!(t32.element_loads, 4 * k64);
            assert_eq!(t32.dram_element_loads, 2 * k64);
            assert_eq!(t32.element_stores, 2 * k64);
            assert_eq!(t32.flops, SgdUpdateCost::cpu_f32(k).flops());
        }
    }

    #[test]
    fn baseline_lifts_charge_the_same_bytes() {
        // LIBMF and BIDMach move the same bytes per update — the paper's
        // §2.2 point is that layout changes *lines*, not bytes.
        let t_libmf = interpret_traffic(&lift_libmf_inner(64), RatingAccess::Streamed);
        let t_bidmach = interpret_traffic(&lift_bidmach_inner(64, 4096), RatingAccess::Streamed);
        assert_eq!(t_libmf.bytes, t_bidmach.bytes);
        assert_eq!(t_libmf.bytes.eval(64), SgdUpdateCost::cpu_f32(64).bytes());
    }

    #[test]
    fn random_line_rating_charges_a_full_line() {
        let t = interpret_traffic(
            &lift_sgd_update(16, Dtype::F32),
            RatingAccess::RandomLine { line_bytes: 128 },
        );
        assert_eq!(
            t.bytes,
            LinExpr {
                konst: 128,
                per_k: 16
            }
        );
    }

    #[test]
    fn three_way_check_certifies_the_real_model() {
        for k in [16, 31, 64, 128] {
            for elem in [Dtype::F32, Dtype::F16] {
                let c = cross_check(k, elem, RatingAccess::Streamed);
                assert!(c.certified(), "{c}");
                assert_eq!(c.executor_bytes, c.executor_updates * c.kir_bytes);
            }
        }
    }

    #[test]
    fn broken_twin_is_refuted_with_concrete_delta() {
        let k = 64;
        let cost = SgdUpdateCost::cpu_f32(k);
        let c = cross_check_with_model(
            k,
            Dtype::F32,
            RatingAccess::Streamed,
            broken_twin_bytes(k, Dtype::F32),
            cost.flops(),
            cost,
        );
        assert!(!c.certified());
        // The twin under-counts by exactly one k-row of f32: −256 B.
        assert_eq!(c.verdict.delta(), -(u64::from(k) as i64 * 4));
        assert!(c.to_string().contains("REFUTED"), "{c}");
    }

    #[test]
    fn executor_drift_is_refuted() {
        // Charge the executor a *different* cost than the model claims:
        // the third leg must catch it even when legs one and two agree.
        let k = 16;
        let cost = SgdUpdateCost::cpu_f32(k);
        let c = cross_check_with_model(
            k,
            Dtype::F32,
            RatingAccess::Streamed,
            cost.bytes(),
            cost.flops(),
            SgdUpdateCost::cpu_f32(k + 1),
        );
        assert!(matches!(
            c.verdict,
            CheckVerdict::Refuted {
                leg: "kir vs executor bytes",
                ..
            }
        ));
    }
}
