//! Drivers for the Eraser-style dynamic lockset sanitizer
//! (`cumf_core::sanitize`, compiled in via the `sanitize` feature).
//!
//! The sanitizer instruments `StripedFactors::with_row_locked` and the
//! lock-free `AtomicFactors` row accesses; these drivers run the two real
//! threaded executors under it and check the expected signal on each
//! side:
//!
//! * [`striped_scenario`] — the lock-striped executor: every shared row
//!   access holds its stripe lock, so every candidate lockset stays
//!   non-empty and the sanitizer must report **zero** races;
//! * [`hogwild_scenario`] — the batch-Hogwild! executor: row accesses are
//!   deliberately lock-free (the paper's point is that SGD tolerates the
//!   races), so on collision-heavy data the sanitizer must report **at
//!   least one** empty lockset. A positive control: if this scenario went
//!   quiet, the instrumentation would be dead, not the code correct.

use std::sync::{Arc, Mutex};

use cumf_core::concurrent::{striped_locked_epoch, threaded_hogwild_epoch};
use cumf_core::concurrent::{AtomicFactors, StripedFactors};
use cumf_core::feature::FactorMatrix;
use cumf_core::sanitize;
use cumf_data::coo::CooMatrix;
use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

/// Result of one sanitizer scenario.
#[derive(Debug, Clone)]
pub struct SanitizerCase {
    /// Scenario name.
    pub scenario: String,
    /// Whether races were expected.
    pub expect_races: bool,
    /// Number of racy locations reported.
    pub races: usize,
    /// Rendered reports (empty when none).
    pub reports: Vec<String>,
}

impl SanitizerCase {
    /// The case passes when the signal matches the expectation.
    pub fn pass(&self) -> bool {
        (self.races > 0) == self.expect_races
    }
}

impl std::fmt::Display for SanitizerCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = if self.pass() { "ok" } else { "FAIL" };
        write!(
            f,
            "[{status}] {}: {} racy location(s), expected {}",
            self.scenario,
            self.races,
            if self.expect_races { "some" } else { "none" }
        )?;
        for r in self.reports.iter().take(3) {
            write!(f, "\n    {r}")?;
        }
        Ok(())
    }
}

/// The sanitizer keeps process-global state; scenarios must not overlap
/// (two concurrent `set_enabled(true)` calls would clear each other's
/// observations). All drivers serialize on this gate.
fn gate() -> &'static Mutex<()> {
    static GATE: Mutex<()> = Mutex::new(());
    &GATE
}

/// Collision-heavy dataset: a tiny `m`×`n` matrix with `nnz` samples, so
/// concurrent workers repeatedly hit the same factor rows.
fn collision_data(m: u32, n: u32, nnz: usize, seed: u64) -> CooMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = CooMatrix::new(m, n);
    for _ in 0..nnz {
        data.push(
            rng.gen_range(0..m),
            rng.gen_range(0..n),
            rng.gen_range(-1.0f32..1.0),
        );
    }
    data
}

/// Runs the lock-striped executor under the sanitizer. Expected: zero
/// races — every instrumented access holds its stripe lock.
pub fn striped_scenario(seed: u64) -> SanitizerCase {
    let _gate = gate().lock().unwrap();
    let data = collision_data(4, 4, 20_000, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xab);
    let pm = FactorMatrix::<f32>::random_init(4, 8, &mut rng);
    let qm = FactorMatrix::<f32>::random_init(4, 8, &mut rng);
    let p = StripedFactors::from_matrix(&pm, 2);
    let q = StripedFactors::from_matrix(&qm, 2);

    sanitize::set_enabled(true);
    let updates = striped_locked_epoch(&data, &p, &q, 4, 64, 0.05, 0.05);
    sanitize::set_enabled(false);
    let reports = sanitize::take_reports();

    assert_eq!(
        updates as usize,
        data.nnz(),
        "executor must run every update"
    );
    SanitizerCase {
        scenario: "striped-locked executor (4 threads, stripe locks held)".to_string(),
        expect_races: false,
        races: reports.len(),
        reports: reports.iter().map(|r| r.to_string()).collect(),
    }
}

/// Runs the lock-free batch-Hogwild! executor under the sanitizer on
/// collision-heavy data. Expected: at least one empty lockset (retries a
/// few epochs in case the scheduler serialized the tiny run).
pub fn hogwild_scenario(seed: u64) -> SanitizerCase {
    let _gate = gate().lock().unwrap();
    let data = collision_data(2, 2, 50_000, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xcd);
    let pm = FactorMatrix::<f32>::random_init(2, 8, &mut rng);
    let qm = FactorMatrix::<f32>::random_init(2, 8, &mut rng);
    let p = Arc::new(AtomicFactors::from_matrix(&pm));
    let q = Arc::new(AtomicFactors::from_matrix(&qm));

    sanitize::set_enabled(true);
    let mut reports = Vec::new();
    // One epoch virtually always suffices; retry in case the OS scheduler
    // let a single thread drain the whole counter.
    for _ in 0..5 {
        threaded_hogwild_epoch(&data, &p, &q, 4, 64, 0.01, 0.05);
        reports = sanitize::take_reports();
        if !reports.is_empty() {
            break;
        }
    }
    sanitize::set_enabled(false);

    SanitizerCase {
        scenario: "batch-hogwild executor (4 threads, lock-free rows)".to_string(),
        expect_races: true,
        races: reports.len(),
        reports: reports.iter().map(|r| r.to_string()).collect(),
    }
}

/// Both scenarios, in order.
pub fn run(seed: u64) -> Vec<SanitizerCase> {
    vec![striped_scenario(seed), hogwild_scenario(seed)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_scenarios_give_the_expected_signal() {
        for case in run(0xE5A5E5) {
            assert!(case.pass(), "{case}");
        }
    }
}
