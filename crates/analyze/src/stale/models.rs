//! Interleaving models validating the claimed staleness bounds.
//!
//! One parametric [`StaleModel`] covers every update-path shape the
//! asynchrony IR describes: `W` writers repeatedly read a snapshot of
//! their assigned rows and commit a write back, with the path's
//! synchronisation edge ([`BarrierKind`] / per-row locks) gating how far
//! writers drift apart. The state tracks, per row, a *version counter*
//! bumped on every commit; the staleness a commit observes is simply
//! `version_at_commit − version_at_snapshot` — the number of other
//! writers' commits that landed between the read and the write it feeds.
//! The model invariant asserts the maximum observed staleness never
//! exceeds the path's certified τ, so [`crate::mc::check`] exhaustively
//! validates (or refutes, with a replayable schedule) every bound the
//! static certifier claims.

use crate::mc::Model;

/// The barrier edge gating a writer's next read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// No barrier: writers free-run (broken twins, disjoint grids).
    None,
    /// Lockstep rounds: a writer may start update `d` only when every
    /// writer has completed `d` updates (the stale-additive engine).
    Round,
    /// Epoch join: a writer may start an update in epoch `e` only when
    /// every writer has completed epoch `e − 1` (the threaded executor).
    Epoch,
}

/// A parametric staleness model: `writers` virtual threads, each
/// performing `updates_per_epoch × epochs` snapshot-read/commit update
/// pairs against up to two shared row-version cells.
#[derive(Debug, Clone)]
pub struct StaleModel {
    /// Model name for reports (`solver-hogwild`, `twin/...`).
    pub name: &'static str,
    /// Virtual writer threads.
    pub writers: usize,
    /// Rows each writer touches per update, indexed by writer id.
    /// Row indices are `0` or `1` (two shared cells suffice to model
    /// shared, disjoint, and overlapping footprints).
    pub assignment: &'static [&'static [usize]],
    /// Updates per writer per epoch (the epoch-join barrier interval).
    pub updates_per_epoch: u16,
    /// Epochs each writer runs.
    pub epochs: u16,
    /// The synchronisation edge gating reads.
    pub barrier: BarrierKind,
    /// Whether each update holds its rows' locks across the whole
    /// read-modify-write (the striped paths).
    pub locked: bool,
    /// The τ the static certifier claims for this path; the invariant
    /// `max observed staleness ≤ claimed_tau` is what the checker
    /// validates over all interleavings.
    pub claimed_tau: u16,
}

/// Per-writer local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriterState {
    /// Completed updates.
    done: u16,
    /// 0 = before read (lock-acquire first when `locked`), then read,
    /// then commit; wraps back to 0 after each update.
    phase: u8,
    /// Row versions snapshotted by the pending update's read.
    snaps: [u16; 2],
}

/// Global state: shared row versions + locks + every writer's program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StaleState {
    /// Commit counter per shared row.
    version: [u16; 2],
    /// Lock holder per row: 0 = free, `w + 1` = held by writer `w`.
    lock: [u8; 2],
    /// Writer-local states.
    writers: Vec<WriterState>,
    /// Largest staleness any commit has observed so far.
    max_observed: u16,
    /// Row on which `max_observed` was observed.
    worst_row: u8,
}

impl StaleModel {
    fn rows_of(&self, w: usize) -> &'static [usize] {
        self.assignment[w]
    }

    fn quota(&self) -> u16 {
        self.updates_per_epoch * self.epochs
    }

    /// Whether writer `w` may *start* its next update in `s` (barrier
    /// gating; lock availability is handled separately).
    fn barrier_open(&self, s: &StaleState, w: usize) -> bool {
        let d = s.writers[w].done;
        match self.barrier {
            BarrierKind::None => true,
            // Lockstep: everyone must have completed d updates.
            BarrierKind::Round => s.writers.iter().all(|v| v.done >= d),
            // Epoch join: everyone must have reached w's epoch boundary.
            BarrierKind::Epoch => {
                let boundary = (d / self.updates_per_epoch) * self.updates_per_epoch;
                s.writers.iter().all(|v| v.done >= boundary)
            }
        }
    }
}

impl Model for StaleModel {
    type State = StaleState;

    fn name(&self) -> &'static str {
        self.name
    }

    fn threads(&self) -> usize {
        self.writers
    }

    fn initial(&self) -> StaleState {
        StaleState {
            version: [0, 0],
            lock: [0, 0],
            writers: vec![
                WriterState {
                    done: 0,
                    phase: 0,
                    snaps: [0, 0],
                };
                self.writers
            ],
            max_observed: 0,
            worst_row: 0,
        }
    }

    fn enabled(&self, s: &StaleState, w: usize) -> bool {
        let ws = &s.writers[w];
        if ws.done >= self.quota() {
            return false;
        }
        if ws.phase == 0 {
            if !self.barrier_open(s, w) {
                return false;
            }
            if self.locked {
                // First step of a locked update atomically takes every
                // touched row's lock (the canonical ascending-stripe
                // order makes the multi-lock acquire deadlock-free; the
                // deadlock certifier owns that proof, so the staleness
                // model may treat it as one step).
                return self.rows_of(w).iter().all(|&r| s.lock[r] == 0);
            }
        }
        true
    }

    fn step(&self, s: &StaleState, w: usize) -> StaleState {
        let mut n = s.clone();
        let phase = s.writers[w].phase;
        let rows = self.rows_of(w);
        // Phase layout: locked = acquire, read, commit+release;
        // lock-free = read, commit.
        let read_phase = u8::from(self.locked);
        let commit_phase = read_phase + 1;
        if self.locked && phase == 0 {
            for &r in rows {
                n.lock[r] = w as u8 + 1;
            }
            n.writers[w].phase = 1;
        } else if phase == read_phase {
            for &r in rows {
                n.writers[w].snaps[r] = s.version[r];
            }
            n.writers[w].phase = commit_phase;
        } else {
            debug_assert_eq!(phase, commit_phase);
            for &r in rows {
                let observed = s.version[r] - s.writers[w].snaps[r];
                if observed > n.max_observed {
                    n.max_observed = observed;
                    n.worst_row = r as u8;
                }
                n.version[r] = s.version[r] + 1;
            }
            if self.locked {
                for &r in rows {
                    n.lock[r] = 0;
                }
            }
            n.writers[w].phase = 0;
            n.writers[w].done += 1;
        }
        n
    }

    fn done(&self, s: &StaleState, w: usize) -> bool {
        s.writers[w].done >= self.quota() && s.writers[w].phase == 0
    }

    fn invariant(&self, s: &StaleState) -> Result<(), String> {
        if s.max_observed > self.claimed_tau {
            return Err(format!(
                "observed staleness {} on row {} exceeds certified τ = {}",
                s.max_observed, s.worst_row, self.claimed_tau
            ));
        }
        Ok(())
    }
}

/// Rows shared by every writer (the Hogwild shapes).
pub const SHARED_1: &[&[usize]] = &[&[0], &[0], &[0]];
/// Two writers, both updating the same two rows (the two-row path).
pub const SHARED_2X2: &[&[usize]] = &[&[0, 1], &[0, 1]];
/// Two writers on disjoint rows (an independent grid wave).
pub const DISJOINT: &[&[usize]] = &[&[0], &[1]];
/// Two writers whose blocks overlap on row 0 (the broken grid twin).
pub const OVERLAPPING: &[&[usize]] = &[&[0], &[0]];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::check;
    use crate::MC_STATE_BUDGET;

    #[test]
    fn round_barrier_bounds_staleness_at_w_minus_one() {
        let m = StaleModel {
            name: "round-test",
            writers: 3,
            assignment: SHARED_1,
            updates_per_epoch: 2,
            epochs: 1,
            barrier: BarrierKind::Round,
            locked: false,
            claimed_tau: 2,
        };
        let out = check(&m, MC_STATE_BUDGET);
        assert!(out.verified(), "{out}");

        // τ − 1 must be refutable, else the bound is not tight.
        let tight = StaleModel {
            claimed_tau: 1,
            ..m
        };
        let out = check(&tight, MC_STATE_BUDGET);
        assert!(out.violation.is_some(), "τ = W−1 must be tight");
    }

    #[test]
    fn epoch_join_bounds_staleness_at_quota_times_w_minus_one() {
        let m = StaleModel {
            name: "epoch-test",
            writers: 2,
            assignment: SHARED_1,
            updates_per_epoch: 2,
            epochs: 2,
            barrier: BarrierKind::Epoch,
            locked: false,
            claimed_tau: 2,
        };
        let out = check(&m, MC_STATE_BUDGET);
        assert!(out.verified(), "{out}");
        let tight = StaleModel {
            claimed_tau: 1,
            ..m
        };
        assert!(
            check(&tight, MC_STATE_BUDGET).violation.is_some(),
            "τ = (W−1)×quota must be tight"
        );
    }

    #[test]
    fn locks_and_disjoint_rows_mean_zero_staleness() {
        let locked = StaleModel {
            name: "locked-test",
            writers: 2,
            assignment: SHARED_2X2,
            updates_per_epoch: 2,
            epochs: 1,
            barrier: BarrierKind::None,
            locked: true,
            claimed_tau: 0,
        };
        assert!(check(&locked, MC_STATE_BUDGET).verified());

        let disjoint = StaleModel {
            name: "disjoint-test",
            writers: 2,
            assignment: DISJOINT,
            updates_per_epoch: 2,
            epochs: 1,
            barrier: BarrierKind::None,
            locked: false,
            claimed_tau: 0,
        };
        assert!(check(&disjoint, MC_STATE_BUDGET).verified());
    }

    #[test]
    fn unsynchronized_sharing_is_caught() {
        let m = StaleModel {
            name: "unsynced-test",
            writers: 2,
            assignment: OVERLAPPING,
            updates_per_epoch: 2,
            epochs: 1,
            barrier: BarrierKind::None,
            locked: false,
            claimed_tau: 0,
        };
        let out = check(&m, MC_STATE_BUDGET);
        let v = out.violation.expect("unsynced sharing must violate τ=0");
        assert!(v.detail.contains("exceeds certified τ"), "{}", v.detail);
    }
}
