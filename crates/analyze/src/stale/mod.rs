//! Static staleness & asynchrony certifier for every lock-free update
//! path the workspace ships.
//!
//! Hogwild-style execution is sound only under *bounded staleness*: the
//! number of writes another worker can publish to a factor row between
//! a read and the write that read feeds must be finite, and small
//! enough that the configured learning rate cannot compound the
//! overshoot (§7.5's `s ≪ min(m, n)` precondition). The asynchrony IR
//! and the bound derivation live in `cumf_core::stale`; this module is
//! the analyzer that *validates* them:
//!
//! * [`shipped_paths`] instantiates every entry of
//!   [`cumf_core::concurrent::UPDATE_PATHS`] — the in-source
//!   annotations next to the executors, the staleness analogue of
//!   `LOCK_SITES` — as a concrete `PathSpec` plus a small interleaving
//!   model ([`models::StaleModel`]), panicking on drift (a path with no
//!   model, an unrecognised footprint/sync shape, or a claimed τ the IR
//!   does not reproduce). The partitioned path is additionally
//!   cross-checked against a real [`cumf_core::partition::Grid`] wave
//!   schedule: every concurrently-scheduled block pair must be Eq. 6
//!   independent with disjoint row/column ranges.
//! * [`certify_path`] computes τ from the IR, exhaustively
//!   model-checks the claim with [`crate::mc::check`] (the invariant
//!   "observed staleness ≤ τ" over *all* interleavings), and emits the
//!   lr·τ certificate for a reference schedule.
//! * [`broken_twins`] seeds three deliberately-broken variants —
//!   unsynchronised column writers on a shared stripe, the
//!   `thread_batch` path with its epoch barrier removed, and a
//!   partitioned grid whose blocks overlap — and [`refute_twin`]
//!   must produce a [`StalenessWitness`] whose schedule replays to the
//!   excess staleness in the checker, because a certifier that cannot
//!   refute the twins proves nothing about the paths.

pub mod models;

pub use models::{BarrierKind, StaleModel};

use crate::mc::{self, CheckOutcome};
use crate::{SectionResult, MC_STATE_BUDGET};
use cumf_core::concurrent::UPDATE_PATHS;
use cumf_core::lrate::Schedule;
use cumf_core::partition::{schedule_epoch, Grid};
use cumf_core::stale::{
    certify_staleness, staleness_bound, Footprint, PathSpec, StaleCert, SyncEdge, SyncKind,
};
use cumf_data::CooMatrix;
use cumf_rng::{ChaCha8Rng, SeedableRng};

/// The reference configuration every shipped path's lr·τ condition is
/// certified against in the section report: the paper's Netflix-scale
/// learning rate schedule over a matrix with `min(m, n)` = 1000.
pub const REF_MIN_DIM: u32 = 1000;
/// Reference epochs for the lr·τ certificate.
pub const REF_EPOCHS: u32 = 20;

fn ref_schedule() -> Schedule {
    Schedule::paper_default(0.08, 0.3)
}

/// One shipped update path, fully instantiated: the in-source
/// annotation, the concrete spec the bound is computed from, and the
/// interleaving model that validates the bound.
pub struct ShippedPath {
    /// The concrete asynchrony-IR instance.
    pub spec: PathSpec,
    /// The interleaving model claiming `spec`'s τ.
    pub model: StaleModel,
}

fn drift(msg: &str) -> ! {
    panic!("{msg} — the static model drifted from the code");
}

/// Every shipped update path, built from the in-source annotations.
/// Panics on any drift between the annotations and the models here.
pub fn shipped_paths() -> Vec<ShippedPath> {
    let mut paths = Vec::new();
    for anno in UPDATE_PATHS {
        let model = match anno.path {
            "solver-hogwild" => StaleModel {
                name: "solver-hogwild",
                writers: 3,
                assignment: models::SHARED_1,
                updates_per_epoch: 2,
                epochs: 1,
                barrier: BarrierKind::Round,
                locked: false,
                claimed_tau: 2,
            },
            "batch-hogwild-threaded" => StaleModel {
                name: "batch-hogwild-threaded",
                writers: 3,
                assignment: models::SHARED_1,
                updates_per_epoch: 1,
                epochs: 2,
                barrier: BarrierKind::Epoch,
                locked: false,
                claimed_tau: 2,
            },
            "striped-epoch" => StaleModel {
                name: "striped-epoch",
                writers: 2,
                assignment: models::SHARED_1,
                updates_per_epoch: 2,
                epochs: 1,
                barrier: BarrierKind::None,
                locked: true,
                claimed_tau: 0,
            },
            "two-row-update" => StaleModel {
                name: "two-row-update",
                writers: 2,
                assignment: models::SHARED_2X2,
                updates_per_epoch: 2,
                epochs: 1,
                barrier: BarrierKind::None,
                locked: true,
                claimed_tau: 0,
            },
            "partitioned-grid" => {
                cross_check_grid_independence();
                StaleModel {
                    name: "partitioned-grid",
                    writers: 2,
                    assignment: models::DISJOINT,
                    updates_per_epoch: 2,
                    epochs: 1,
                    barrier: BarrierKind::None,
                    locked: false,
                    claimed_tau: 0,
                }
            }
            other => drift(&format!(
                "update path `{other}` is annotated in cumf_core::concurrent::UPDATE_PATHS \
                 but has no staleness model"
            )),
        };
        // The model's shape must encode exactly what the annotation
        // claims, or the exhaustive check validates the wrong thing.
        let shape_ok = match (anno.footprint, anno.sync) {
            (Footprint::SharedRows, SyncKind::RoundBarrier) => {
                model.barrier == BarrierKind::Round && !model.locked
            }
            (Footprint::SharedRows, SyncKind::EpochJoin) => {
                model.barrier == BarrierKind::Epoch && !model.locked
            }
            (Footprint::RowLocked, SyncKind::LockRelease) => model.locked,
            (Footprint::DisjointRows, SyncKind::GridIndependence) => {
                !model.locked && disjoint_assignment(model.assignment)
            }
            _ => false,
        };
        if !shape_ok {
            drift(&format!(
                "update path `{}` claims {}/{} but its model encodes a different shape",
                anno.path,
                anno.footprint.name(),
                anno.sync.name()
            ));
        }
        let interval = match anno.sync {
            SyncKind::RoundBarrier => SyncEdge::Barrier { interval: 1 },
            SyncKind::EpochJoin => SyncEdge::Barrier {
                interval: u64::from(model.updates_per_epoch),
            },
            SyncKind::LockRelease => SyncEdge::LockRelease,
            // Disjoint row sets need no cross-writer edge: the
            // disjointness itself is the guarantee (and it is what the
            // grid cross-check above validates).
            SyncKind::GridIndependence => SyncEdge::Unsynced,
        };
        let spec = PathSpec {
            name: anno.path,
            writers: model.writers as u32,
            footprint: anno.footprint,
            sync: interval,
            min_dim: REF_MIN_DIM,
            anchor: anno.anchor,
        };
        match staleness_bound(&spec) {
            Some(tau) if tau == u64::from(model.claimed_tau) => {}
            other => drift(&format!(
                "update path `{}`: the IR derives τ = {other:?} but the model claims {}",
                anno.path, model.claimed_tau
            )),
        }
        paths.push(ShippedPath { spec, model });
    }
    if paths.len() < 5 {
        drift(&format!(
            "only {} update paths are annotated; the workspace ships 5",
            paths.len()
        ));
    }
    paths
}

fn disjoint_assignment(assignment: &[&[usize]]) -> bool {
    for (i, a) in assignment.iter().enumerate() {
        for b in &assignment[i + 1..] {
            if a.iter().any(|r| b.contains(r)) {
                return false;
            }
        }
    }
    true
}

/// Validates the `partitioned-grid` annotation against the real
/// scheduler: builds a grid over a dense synthetic matrix, draws a wave
/// schedule, and requires every concurrently-scheduled block pair to be
/// Eq. 6 independent with disjoint row *and* column coordinate ranges —
/// the exact property the `DisjointRows` footprint encodes.
fn cross_check_grid_independence() {
    let mut coo = CooMatrix::new(8, 6);
    for u in 0..8u32 {
        for v in 0..6u32 {
            coo.push(u, v, 1.0);
        }
    }
    let grid = Grid::build(&coo, 2, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(0x57A1E);
    let waves = schedule_epoch(&grid, 2, &mut rng);
    for wave in &waves.waves {
        let live: Vec<_> = wave.iter().flatten().collect();
        for (i, &&a) in live.iter().enumerate() {
            for &&b in &live[i + 1..] {
                if !Grid::independent(a, b) {
                    drift(&format!(
                        "wave schedule co-ran dependent blocks {a:?} and {b:?}"
                    ));
                }
                let rows_disjoint = grid.row_range(a.bi).end <= grid.row_range(b.bi).start
                    || grid.row_range(b.bi).end <= grid.row_range(a.bi).start;
                let cols_disjoint = grid.col_range(a.bj).end <= grid.col_range(b.bj).start
                    || grid.col_range(b.bj).end <= grid.col_range(a.bj).start;
                if !rows_disjoint || !cols_disjoint {
                    drift(&format!(
                        "independent blocks {a:?} and {b:?} share coordinate ranges"
                    ));
                }
            }
        }
    }
}

/// A staleness refutation: the interleaving that drives a path's
/// observed staleness past its claimed τ, replayable in the checker.
#[derive(Debug, Clone)]
pub struct StalenessWitness {
    /// The refuted path or twin.
    pub path: &'static str,
    /// The τ the (broken) annotation claimed.
    pub claimed_tau: u64,
    /// What the interleaving observed.
    pub detail: String,
    /// Thread ids from the initial state to the violating state.
    pub schedule: Vec<usize>,
    /// Whether re-stepping `schedule` through the model reproduces the
    /// violation (a witness that does not replay proves nothing).
    pub replays: bool,
}

impl std::fmt::Display for StalenessWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} (claimed τ = {}, schedule of {} steps{})",
            self.path,
            self.detail,
            self.claimed_tau,
            self.schedule.len(),
            if self.replays {
                ", replays"
            } else {
                ", DOES NOT REPLAY"
            }
        )
    }
}

/// Outcome of certifying one shipped path.
pub enum PathOutcome {
    /// τ finite, exhaustively validated, lr·τ condition holds.
    Certified {
        /// The lr·τ certificate for the reference configuration.
        cert: StaleCert,
        /// The exhaustive validation of the bound.
        mc: CheckOutcome,
    },
    /// The bound (or the lr·τ condition) was refuted.
    Refuted(StalenessWitness),
}

impl PathOutcome {
    /// True when the path certified.
    pub fn certified(&self) -> bool {
        matches!(self, PathOutcome::Certified { .. })
    }
}

/// Certifies one shipped path: exhaustive interleaving validation of
/// the claimed τ, then the lr·τ certificate against the reference
/// schedule.
pub fn certify_path(path: &ShippedPath) -> PathOutcome {
    let out = mc::check(&path.model, MC_STATE_BUDGET);
    if let Some(v) = &out.violation {
        return PathOutcome::Refuted(witness_from_violation(
            &path.model,
            v.detail.clone(),
            v.schedule.clone(),
        ));
    }
    if out.truncated {
        return PathOutcome::Refuted(StalenessWitness {
            path: path.model.name,
            claimed_tau: u64::from(path.model.claimed_tau),
            detail: format!("state budget exhausted after {} states", out.states),
            schedule: Vec::new(),
            replays: false,
        });
    }
    match certify_staleness(&path.spec, &ref_schedule(), REF_EPOCHS) {
        cumf_core::stale::StaleVerdict::Certified(cert) => PathOutcome::Certified { cert, mc: out },
        cumf_core::stale::StaleVerdict::Refuted(w) => PathOutcome::Refuted(StalenessWitness {
            path: path.model.name,
            claimed_tau: u64::from(path.model.claimed_tau),
            detail: w.detail,
            schedule: Vec::new(),
            replays: false,
        }),
    }
}

fn witness_from_violation(
    model: &StaleModel,
    detail: String,
    schedule: Vec<usize>,
) -> StalenessWitness {
    // A witness must replay: re-step its schedule from the initial
    // state and require the invariant to fail at the end.
    let mut s = mc::Model::initial(model);
    for &tid in &schedule {
        s = mc::Model::step(model, &s, tid);
    }
    let replays = mc::Model::invariant(model, &s).is_err();
    StalenessWitness {
        path: model.name,
        claimed_tau: u64::from(model.claimed_tau),
        detail,
        schedule,
        replays,
    }
}

/// The refutation campaign: three broken twins of the shipped paths,
/// each claiming the τ its (sabotaged) synchronisation would earn.
pub fn broken_twins() -> Vec<StaleModel> {
    vec![
        // The striped stripe protocol with its locks deleted: two
        // column writers race on a shared stripe, still claiming the
        // lock path's τ = 0.
        StaleModel {
            name: "twin/shared-stripe-columns",
            writers: 2,
            assignment: models::SHARED_1,
            updates_per_epoch: 2,
            epochs: 1,
            barrier: BarrierKind::None,
            locked: false,
            claimed_tau: 0,
        },
        // The thread_batch executor with the epoch join removed:
        // free-running writers, still claiming the join's
        // τ = (W−1) × quota = 2.
        StaleModel {
            name: "twin/batch-no-barrier",
            writers: 3,
            assignment: models::SHARED_1,
            updates_per_epoch: 1,
            epochs: 2,
            barrier: BarrierKind::None,
            locked: false,
            claimed_tau: 2,
        },
        // A partitioned grid whose block assignment overlaps on a row,
        // still claiming grid independence's τ = 0.
        StaleModel {
            name: "twin/overlapping-grid",
            writers: 2,
            assignment: models::OVERLAPPING,
            updates_per_epoch: 2,
            epochs: 1,
            barrier: BarrierKind::None,
            locked: false,
            claimed_tau: 0,
        },
    ]
}

/// Refutes one broken twin: the checker must find an interleaving whose
/// observed staleness exceeds the claimed τ, and the witness schedule
/// must replay. Returns `None` if the twin (wrongly) verifies.
pub fn refute_twin(twin: &StaleModel) -> Option<StalenessWitness> {
    let out = mc::check(twin, MC_STATE_BUDGET);
    let v = out.violation?;
    Some(witness_from_violation(twin, v.detail, v.schedule))
}

/// Runs the full staleness campaign as an analyzer section: every
/// shipped update path must certify (finite τ, exhaustively validated,
/// lr·τ condition under the reference schedule), every broken twin must
/// be refuted with a replayable witness.
pub fn run_section() -> SectionResult {
    let mut lines = Vec::new();
    let mut pass = true;
    let mut certified = 0usize;
    let mut refuted = 0usize;

    for path in shipped_paths() {
        match certify_path(&path) {
            PathOutcome::Certified { cert, mc } => {
                certified += 1;
                lines.push(format!("[ok] certified: {cert}"));
                lines.push(format!(
                    "[ok] validated: {} states, {} transitions — observed staleness ≤ τ in \
                     every interleaving",
                    mc.states, mc.transitions
                ));
            }
            PathOutcome::Refuted(w) => {
                pass = false;
                lines.push(format!("[FAIL] shipped path refuted: {w}"));
            }
        }
    }

    for twin in broken_twins() {
        match refute_twin(&twin) {
            Some(w) => {
                let ok = w.replays;
                pass &= ok;
                refuted += usize::from(ok);
                lines.push(format!("[{}] refuted: {w}", if ok { "ok" } else { "FAIL" }));
            }
            None => {
                pass = false;
                lines.push(format!(
                    "[FAIL] broken twin {} was certified — the certifier refutes nothing",
                    twin.name
                ));
            }
        }
    }

    lines.push(format!(
        "{certified} update paths certified, {refuted} broken twins refuted"
    ));

    SectionResult {
        name: "staleness",
        pass,
        ran: true,
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_passes_end_to_end() {
        let s = run_section();
        assert!(s.ran);
        assert!(s.pass, "{:#?}", s.lines);
        assert!(s.lines.iter().any(|l| l.contains("certified")));
        assert!(s.lines.iter().any(|l| l.contains("refuted")));
        assert!(s
            .lines
            .iter()
            .any(|l| l.contains("5 update paths certified, 3 broken twins refuted")));
    }

    #[test]
    fn every_shipped_path_is_certified_with_finite_tau() {
        let paths = shipped_paths();
        assert_eq!(paths.len(), 5, "the workspace ships five update paths");
        for p in paths {
            let tau = staleness_bound(&p.spec).expect("shipped τ must be finite");
            assert_eq!(tau, u64::from(p.model.claimed_tau));
            let out = certify_path(&p);
            match out {
                PathOutcome::Certified { cert, mc } => {
                    assert!(cert.lr_tau < 1.0, "{cert}");
                    assert!(mc.verified(), "{mc}");
                }
                PathOutcome::Refuted(w) => panic!("{} refuted: {w}", p.spec.name),
            }
        }
    }

    #[test]
    fn every_broken_twin_is_refuted_with_replayable_witness() {
        let twins = broken_twins();
        assert!(twins.len() >= 3, "refutation campaign needs ≥3 twins");
        for twin in twins {
            let w = refute_twin(&twin)
                .unwrap_or_else(|| panic!("broken twin {} must not certify", twin.name));
            assert!(
                w.replays,
                "{}: witness must replay in the checker",
                twin.name
            );
            assert!(!w.schedule.is_empty(), "{}: empty schedule", twin.name);
            assert!(
                w.detail.contains("exceeds certified τ"),
                "{}: {}",
                twin.name,
                w.detail
            );
        }
    }

    #[test]
    fn tau_bounds_are_tight() {
        // Claiming one less than the certified τ must flip each
        // lock-free shipped path to refuted: the bound is exact, not
        // merely safe.
        for mut p in shipped_paths() {
            if p.model.claimed_tau == 0 {
                continue;
            }
            p.model.claimed_tau -= 1;
            let out = mc::check(&p.model, MC_STATE_BUDGET);
            assert!(
                out.violation.is_some(),
                "{}: τ − 1 should be refutable",
                p.spec.name
            );
        }
    }
}
