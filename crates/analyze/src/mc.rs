//! A homegrown loom-style interleaving model checker.
//!
//! [`check`] exhaustively explores every thread interleaving of a small
//! concurrent [`Model`] by depth-first search over its state graph, with
//! state hashing so each distinct global state is expanded once. A model
//! is a transition system: `N` virtual threads, each a small program whose
//! *steps* are exactly the shared-memory operations of the code being
//! modelled (one atomic op, one lock acquisition, one cell write per
//! step — the granularity real hardware interleaves at).
//!
//! The checker mechanically establishes, for every reachable state:
//!
//! * **invariants** — a [`Model::invariant`] violation is returned with
//!   the exact schedule (sequence of thread ids) that reaches it;
//! * **deadlock-freedom** — a non-final state where no thread can step is
//!   reported as a deadlock, again with the schedule;
//! * **reachability** — [`Model::probe`] marks states of interest (e.g.
//!   "the reader observed a torn row"), and the outcome records whether
//!   any reachable state satisfied it.
//!
//! This is the executable form of the two `unsafe impl Send/Sync` SAFETY
//! comments in `cumf_core::concurrent`: instead of prose asserting the
//! canonical lock order cannot deadlock and stripe locks prevent torn
//! rows, [`crate::models`] encodes those protocols and the checker proves
//! the claims over *all* interleavings (or exhibits a counterexample — see
//! the deliberately-broken model variants in the tests).
//!
//! No external dependencies: DFS, a `HashSet` of visited states, and a
//! schedule trail. Small models (a handful of threads, a few shared
//! cells) stay well under a million states.

use std::collections::HashSet;
use std::hash::Hash;

/// A finite concurrent transition system to check.
pub trait Model {
    /// Global state: shared memory plus every thread's local state. Must
    /// be cheap to clone and hashable (drives the visited set).
    type State: Clone + Eq + Hash;

    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Number of virtual threads.
    fn threads(&self) -> usize;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Whether thread `tid` can take a step in `state` (false when blocked
    /// on a lock, or done).
    fn enabled(&self, state: &Self::State, tid: usize) -> bool;

    /// Thread `tid`'s next step from `state`. Only called when enabled;
    /// must perform exactly one shared-memory operation.
    fn step(&self, state: &Self::State, tid: usize) -> Self::State;

    /// Whether thread `tid` has finished its program in `state`.
    fn done(&self, state: &Self::State, tid: usize) -> bool;

    /// The safety invariant; return a description of the violation.
    fn invariant(&self, state: &Self::State) -> Result<(), String>;

    /// Optional reachability probe ("a state like this exists").
    fn probe(&self, _state: &Self::State) -> bool {
        false
    }
}

/// What kind of defect a counterexample demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A state where no thread can step but not all threads are done.
    Deadlock,
    /// A state failing [`Model::invariant`].
    Invariant,
}

/// A counterexample: the defect plus the exact schedule reaching it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Deadlock or invariant violation.
    pub kind: ViolationKind,
    /// Human-readable description of the bad state.
    pub detail: String,
    /// Thread ids in execution order from the initial state to the bad
    /// state — replay this schedule to reproduce.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} (schedule {:?})",
            match self.kind {
                ViolationKind::Deadlock => "deadlock",
                ViolationKind::Invariant => "invariant violation",
            },
            self.detail,
            self.schedule
        )
    }
}

/// Everything one exhaustive exploration produced.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Model name.
    pub model: &'static str,
    /// Virtual threads explored.
    pub threads: usize,
    /// Distinct global states visited.
    pub states: usize,
    /// Transitions executed (edges of the interleaving graph).
    pub transitions: usize,
    /// Longest schedule from the initial state.
    pub max_depth: usize,
    /// Distinct terminal (all-threads-done) states reached.
    pub terminal_states: usize,
    /// Whether any reachable state satisfied [`Model::probe`].
    pub probe_reached: bool,
    /// First counterexample found, if any (`None` = the model is clean).
    pub violation: Option<Violation>,
    /// True if exploration stopped at the state budget — the verdict then
    /// covers only the explored prefix.
    pub truncated: bool,
}

impl CheckOutcome {
    /// Clean and fully explored: no violation, not truncated.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

impl std::fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} threads, {} states, {} transitions, depth {}, {} terminal",
            self.model,
            self.threads,
            self.states,
            self.transitions,
            self.max_depth,
            self.terminal_states
        )?;
        if self.truncated {
            write!(f, " [TRUNCATED]")?;
        }
        match &self.violation {
            Some(v) => write!(f, " — {v}"),
            None => write!(f, " — no deadlock, no invariant violation"),
        }
    }
}

/// Exhaustively explores `model`'s interleavings (up to `max_states`
/// distinct states) and returns what it found. Exploration stops at the
/// first violation, which carries its reproducing schedule.
pub fn check<M: Model>(model: &M, max_states: usize) -> CheckOutcome {
    let n = model.threads();
    let mut outcome = CheckOutcome {
        model: model.name(),
        threads: n,
        states: 0,
        transitions: 0,
        max_depth: 0,
        terminal_states: 0,
        probe_reached: false,
        violation: None,
        truncated: false,
    };
    let mut visited: HashSet<M::State> = HashSet::new();
    let mut stack: Vec<(M::State, Vec<usize>)> = vec![(model.initial(), Vec::new())];
    while let Some((state, schedule)) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if visited.len() > max_states {
            outcome.truncated = true;
            break;
        }
        outcome.states += 1;
        outcome.max_depth = outcome.max_depth.max(schedule.len());
        if let Err(detail) = model.invariant(&state) {
            outcome.violation = Some(Violation {
                kind: ViolationKind::Invariant,
                detail,
                schedule,
            });
            break;
        }
        if model.probe(&state) {
            outcome.probe_reached = true;
        }
        let mut stepped = false;
        for tid in 0..n {
            if model.enabled(&state, tid) {
                stepped = true;
                outcome.transitions += 1;
                let next = model.step(&state, tid);
                let mut sched = schedule.clone();
                sched.push(tid);
                stack.push((next, sched));
            }
        }
        if !stepped {
            if (0..n).all(|t| model.done(&state, t)) {
                outcome.terminal_states += 1;
            } else {
                outcome.violation = Some(Violation {
                    kind: ViolationKind::Deadlock,
                    detail: format!(
                        "threads {:?} blocked forever",
                        (0..n)
                            .filter(|&t| !model.done(&state, t))
                            .collect::<Vec<_>>()
                    ),
                    schedule,
                });
                break;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a virtual non-atomic counter twice
    /// (load then store): the checker must find the lost update via the
    /// invariant "final value == 4", and count interleavings properly.
    struct LostUpdate;

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct LuState {
        counter: u8,
        // 0 = before load, 1 = loaded (reg holds value), 2.. repeat; 4 = done
        pc: [u8; 2],
        reg: [u8; 2],
    }

    impl Model for LostUpdate {
        type State = LuState;
        fn name(&self) -> &'static str {
            "lost-update"
        }
        fn threads(&self) -> usize {
            2
        }
        fn initial(&self) -> LuState {
            LuState {
                counter: 0,
                pc: [0, 0],
                reg: [0, 0],
            }
        }
        fn enabled(&self, s: &LuState, t: usize) -> bool {
            s.pc[t] < 4
        }
        fn step(&self, s: &LuState, t: usize) -> LuState {
            let mut n = s.clone();
            if matches!(s.pc[t], 0 | 2) {
                n.reg[t] = s.counter; // load
            } else {
                n.counter = s.reg[t] + 1; // store
            }
            n.pc[t] += 1;
            n
        }
        fn done(&self, s: &LuState, t: usize) -> bool {
            s.pc[t] == 4
        }
        fn invariant(&self, s: &LuState) -> Result<(), String> {
            if (0..2).all(|t| self.done(s, t)) && s.counter != 4 {
                return Err(format!("lost update: final counter {} != 4", s.counter));
            }
            Ok(())
        }
    }

    #[test]
    fn finds_lost_update_with_schedule() {
        let out = check(&LostUpdate, 100_000);
        let v = out
            .violation
            .expect("non-atomic increment must lose updates");
        assert_eq!(v.kind, ViolationKind::Invariant);
        assert!(v.detail.contains("lost update"), "{}", v.detail);
        // The schedule must actually replay to the violation.
        let mut s = LostUpdate.initial();
        for &tid in &v.schedule {
            s = LostUpdate.step(&s, tid);
        }
        assert!(LostUpdate.invariant(&s).is_err());
    }

    /// The same program with an atomic increment (single step) is clean.
    struct AtomicUpdate;

    impl Model for AtomicUpdate {
        type State = (u8, [u8; 2]);
        fn name(&self) -> &'static str {
            "atomic-update"
        }
        fn threads(&self) -> usize {
            2
        }
        fn initial(&self) -> Self::State {
            (0, [0, 0])
        }
        fn enabled(&self, s: &Self::State, t: usize) -> bool {
            s.1[t] < 2
        }
        fn step(&self, s: &Self::State, t: usize) -> Self::State {
            let mut n = *s;
            n.0 += 1;
            n.1[t] += 1;
            n
        }
        fn done(&self, s: &Self::State, t: usize) -> bool {
            s.1[t] == 2
        }
        fn invariant(&self, s: &Self::State) -> Result<(), String> {
            if (0..2).all(|t| self.done(s, t)) && s.0 != 4 {
                return Err(format!("final {} != 4", s.0));
            }
            Ok(())
        }
    }

    #[test]
    fn atomic_variant_is_verified_exhaustively() {
        let out = check(&AtomicUpdate, 100_000);
        assert!(out.verified(), "{out}");
        assert_eq!(out.terminal_states, 1, "one terminal state: counter = 4");
        assert!(
            out.states >= 9,
            "all (pc0, pc1) combinations: {}",
            out.states
        );
    }

    #[test]
    fn truncation_is_reported() {
        let out = check(&AtomicUpdate, 3);
        assert!(out.truncated);
        assert!(!out.verified());
    }
}
