//! Concrete [`Model`]s of the concurrency protocols in
//! `cumf_core::concurrent`, checked exhaustively by [`crate::mc::check`].
//!
//! Each protocol comes in two variants: the one the real code uses (which
//! the checker must verify clean over *all* interleavings) and a
//! deliberately broken twin (which the checker must refute with a
//! concrete schedule). The broken twins keep the checker honest — a
//! checker that passes everything proves nothing.
//!
//! | model | real-code anchor | claim |
//! |---|---|---|
//! | [`LockOrderModel`] | threaded executor's canonical P-then-Q stripe order | deadlock-free |
//! | [`RowModel`] | `StripedFactors::with_row_locked` | no torn k-cell row reads |
//! | [`CellModel`] | `AtomicFactors` f32-in-`AtomicU32` cells | no torn single-cell reads |
//! | [`WorkClaimModel`] | batch-Hogwild! `fetch_add` work claiming | claims exact: disjoint + complete |

use crate::mc::Model;

// ---------------------------------------------------------------------------
// Lock ordering
// ---------------------------------------------------------------------------

/// Two threads each acquire a P-factor stripe lock and a Q-factor stripe
/// lock around one SGD update, then release both. In the canonical
/// variant both threads honour the P-then-Q order used by the threaded
/// executor; in the reversed variant thread 1 acquires Q first —
/// the classic ABBA deadlock the canonical order exists to rule out.
pub struct LockOrderModel {
    canonical: bool,
}

impl LockOrderModel {
    /// The protocol as implemented: every thread locks P before Q.
    pub fn canonical() -> Self {
        LockOrderModel { canonical: true }
    }

    /// The broken twin: thread 1 locks Q before P.
    pub fn reversed() -> Self {
        LockOrderModel { canonical: false }
    }

    /// Lock acquisition order for `tid`: `[first, second]` where 0 is the
    /// shared P stripe and 1 is the shared Q stripe.
    fn order(&self, tid: usize) -> [usize; 2] {
        if tid == 1 && !self.canonical {
            [1, 0]
        } else {
            [0, 1]
        }
    }
}

/// Global state of [`LockOrderModel`]: who owns each stripe lock
/// (`None` = free) and each thread's program counter.
///
/// Thread program: 0 = acquire first lock, 1 = acquire second,
/// 2 = release second, 3 = release first, 4 = done. (The SGD update
/// itself touches no other shared state, so it needs no step.)
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LockOrderState {
    owner: [Option<u8>; 2],
    pc: [u8; 2],
}

impl Model for LockOrderModel {
    type State = LockOrderState;

    fn name(&self) -> &'static str {
        if self.canonical {
            "striped-lock-order/canonical"
        } else {
            "striped-lock-order/reversed"
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn initial(&self) -> LockOrderState {
        LockOrderState {
            owner: [None, None],
            pc: [0, 0],
        }
    }

    fn enabled(&self, s: &LockOrderState, t: usize) -> bool {
        let order = self.order(t);
        match s.pc[t] {
            0 => s.owner[order[0]].is_none(),
            1 => s.owner[order[1]].is_none(),
            2 | 3 => true,
            _ => false,
        }
    }

    fn step(&self, s: &LockOrderState, t: usize) -> LockOrderState {
        let mut n = s.clone();
        let order = self.order(t);
        match s.pc[t] {
            0 => n.owner[order[0]] = Some(t as u8),
            1 => n.owner[order[1]] = Some(t as u8),
            2 => n.owner[order[1]] = None,
            3 => n.owner[order[0]] = None,
            _ => unreachable!("step on done thread"),
        }
        n.pc[t] += 1;
        n
    }

    fn done(&self, s: &LockOrderState, t: usize) -> bool {
        s.pc[t] == 4
    }

    fn invariant(&self, s: &LockOrderState) -> Result<(), String> {
        // Mutual exclusion is structural here; check it anyway so the
        // model itself is validated, not just deadlock-freedom.
        for (lock, owner) in s.owner.iter().enumerate() {
            if let Some(o) = owner {
                let order = self.order(*o as usize);
                let holds = match s.pc[*o as usize] {
                    1 | 3 => order[0] == lock,
                    2 => order[0] == lock || order[1] == lock,
                    _ => false,
                };
                if !holds {
                    return Err(format!("lock {lock} owned by thread {o} not holding it"));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Torn row reads under the stripe lock
// ---------------------------------------------------------------------------

/// A writer updates every cell of a k=2 factor row (0 → 1, one cell per
/// step) while a reader loads the row cell by cell. In the locked
/// variant both critical sections run under the row's stripe lock, as
/// `StripedFactors::with_row_locked` does; the unlocked twin models
/// accessing the row without the stripe guard.
///
/// Claim (locked): the reader only ever observes `[0, 0]` or `[1, 1]` —
/// never a torn row. The unlocked twin must *reach* a torn read
/// (verified via [`Model::probe`]), demonstrating the lock is load-bearing.
pub struct RowModel {
    locked: bool,
}

impl RowModel {
    /// Row access under the stripe lock (the real protocol).
    pub fn locked() -> Self {
        RowModel { locked: true }
    }

    /// Row access with the guard removed.
    pub fn unlocked() -> Self {
        RowModel { locked: false }
    }
}

/// State of [`RowModel`]: the two row cells, the stripe lock owner, each
/// thread's program counter, and the reader's registers.
///
/// Locked programs — writer: acquire, write cell 0, write cell 1,
/// release (pc 0..4); reader: acquire, read cell 0, read cell 1, release.
/// Unlocked programs skip the acquire/release steps (pc 0..2).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RowState {
    cells: [u8; 2],
    owner: Option<u8>,
    pc: [u8; 2],
    regs: [u8; 2],
}

const WRITER: usize = 0;
const READER: usize = 1;

impl RowModel {
    fn steps(&self) -> u8 {
        if self.locked {
            4
        } else {
            2
        }
    }

    /// Maps pc to the memory op index: with locking, pc 1 and 2 are the
    /// cell accesses; without, pc 0 and 1 are.
    fn cell_index(&self, pc: u8) -> Option<usize> {
        if self.locked {
            match pc {
                1 => Some(0),
                2 => Some(1),
                _ => None,
            }
        } else {
            match pc {
                0 => Some(0),
                1 => Some(1),
                _ => None,
            }
        }
    }

    fn reader_finished(&self, s: &RowState) -> bool {
        // The reader has both registers populated once past its last read.
        s.pc[READER] >= if self.locked { 3 } else { 2 }
    }
}

impl Model for RowModel {
    type State = RowState;

    fn name(&self) -> &'static str {
        if self.locked {
            "stripe-torn-row/locked"
        } else {
            "stripe-torn-row/unlocked"
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn initial(&self) -> RowState {
        RowState {
            cells: [0, 0],
            owner: None,
            pc: [0, 0],
            regs: [0, 0],
        }
    }

    fn enabled(&self, s: &RowState, t: usize) -> bool {
        if s.pc[t] >= self.steps() {
            return false;
        }
        if self.locked && s.pc[t] == 0 {
            return s.owner.is_none();
        }
        true
    }

    fn step(&self, s: &RowState, t: usize) -> RowState {
        let mut n = s.clone();
        if self.locked {
            match s.pc[t] {
                0 => n.owner = Some(t as u8),
                3 => n.owner = None,
                pc => {
                    let c = self.cell_index(pc).unwrap();
                    if t == WRITER {
                        n.cells[c] = 1;
                    } else {
                        n.regs[c] = s.cells[c];
                    }
                }
            }
        } else {
            let c = self.cell_index(s.pc[t]).unwrap();
            if t == WRITER {
                n.cells[c] = 1;
            } else {
                n.regs[c] = s.cells[c];
            }
        }
        n.pc[t] += 1;
        n
    }

    fn done(&self, s: &RowState, t: usize) -> bool {
        s.pc[t] == self.steps()
    }

    fn invariant(&self, s: &RowState) -> Result<(), String> {
        // Only the locked protocol promises untorn rows.
        if self.locked && self.reader_finished(s) && s.regs[0] != s.regs[1] {
            return Err(format!("torn row read: regs {:?}", s.regs));
        }
        Ok(())
    }

    fn probe(&self, s: &RowState) -> bool {
        // Interesting state for the unlocked twin: a completed torn read.
        self.reader_finished(s) && s.regs[0] != s.regs[1]
    }
}

// ---------------------------------------------------------------------------
// Torn single-cell reads: AtomicU32 vs two half-word stores
// ---------------------------------------------------------------------------

/// A writer replaces one f32 factor cell (both bytes-halves 0 → 1) while
/// a reader loads it. The atomic variant models `AtomicFactors`' whole-word
/// `AtomicU32` store (one step); the split twin models a hypothetical
/// two-half-word store, where the reader can observe a value that was
/// never written.
///
/// Claim (atomic): the reader only observes the old or the new value —
/// justifying the f32-bit-cast-in-`AtomicU32` representation over any
/// narrower encoding.
pub struct CellModel {
    atomic: bool,
}

impl CellModel {
    /// Whole-word atomic store, as `AtomicFactors` does.
    pub fn atomic() -> Self {
        CellModel { atomic: true }
    }

    /// The broken twin: the store is split into two half-word writes.
    pub fn split() -> Self {
        CellModel { atomic: false }
    }
}

/// State of [`CellModel`]: the cell's two halves, thread pcs, and the
/// reader's snapshot (`None` until the read happens; reads are always a
/// single whole-word load).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CellState {
    halves: [u8; 2],
    pc: [u8; 2],
    snapshot: Option<[u8; 2]>,
}

impl Model for CellModel {
    type State = CellState;

    fn name(&self) -> &'static str {
        if self.atomic {
            "atomic-cell/whole-word"
        } else {
            "atomic-cell/split-halves"
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn initial(&self) -> CellState {
        CellState {
            halves: [0, 0],
            pc: [0, 0],
            snapshot: None,
        }
    }

    fn enabled(&self, s: &CellState, t: usize) -> bool {
        s.pc[t] < self.writer_steps(t)
    }

    fn step(&self, s: &CellState, t: usize) -> CellState {
        let mut n = s.clone();
        if t == WRITER {
            if self.atomic {
                n.halves = [1, 1];
            } else {
                n.halves[s.pc[t] as usize] = 1;
            }
        } else {
            n.snapshot = Some(s.halves);
        }
        n.pc[t] += 1;
        n
    }

    fn done(&self, s: &CellState, t: usize) -> bool {
        s.pc[t] == self.writer_steps(t)
    }

    fn invariant(&self, s: &CellState) -> Result<(), String> {
        if let Some(snap) = s.snapshot {
            let torn = snap != [0, 0] && snap != [1, 1];
            if self.atomic && torn {
                return Err(format!("torn cell read: {snap:?}"));
            }
        }
        Ok(())
    }

    fn probe(&self, s: &CellState) -> bool {
        matches!(s.snapshot, Some(snap) if snap != [0, 0] && snap != [1, 1])
    }
}

impl CellModel {
    fn writer_steps(&self, t: usize) -> u8 {
        if t == WRITER && !self.atomic {
            2
        } else {
            1
        }
    }
}

// ---------------------------------------------------------------------------
// Work-claiming counter exactness
// ---------------------------------------------------------------------------

/// Threads claim batches of sample indices from a shared cursor, as the
/// batch-Hogwild! threaded executor does with `fetch_add`. The atomic
/// variant models `fetch_add` as one indivisible step; the split twin
/// models a read-then-write cursor (two steps), which double-claims.
///
/// Claim (atomic): over every interleaving, the per-thread claimed sets
/// are pairwise disjoint at all times and their union covers all `n`
/// samples once all threads finish — the counter is *exact*, so no SGD
/// update is lost or applied twice.
pub struct WorkClaimModel {
    n: u32,
    batch: u32,
    threads: usize,
    atomic: bool,
}

impl WorkClaimModel {
    /// `fetch_add` claiming of `n` samples in `batch`-sized chunks.
    pub fn atomic(n: u32, batch: u32, threads: usize) -> Self {
        assert!(n <= 16, "claim sets are 16-bit masks");
        assert!(batch > 0);
        WorkClaimModel {
            n,
            batch,
            threads,
            atomic: true,
        }
    }

    /// The broken twin: cursor load and store are separate steps.
    pub fn split(n: u32, batch: u32, threads: usize) -> Self {
        WorkClaimModel {
            atomic: false,
            ..Self::atomic(n, batch, threads)
        }
    }

    fn claim_mask(&self, from: u32) -> u16 {
        let to = (from + self.batch).min(self.n);
        let mut mask = 0u16;
        for i in from..to {
            mask |= 1 << i;
        }
        mask
    }
}

/// State of [`WorkClaimModel`]: the shared cursor, each thread's claimed
/// bitmask, and (split twin only) the pending loaded cursor value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WorkClaimState {
    cursor: u32,
    claimed: Vec<u16>,
    pending: Vec<Option<u32>>,
    finished: Vec<bool>,
}

impl Model for WorkClaimModel {
    type State = WorkClaimState;

    fn name(&self) -> &'static str {
        if self.atomic {
            "work-claim/fetch-add"
        } else {
            "work-claim/read-then-write"
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn initial(&self) -> WorkClaimState {
        WorkClaimState {
            cursor: 0,
            claimed: vec![0; self.threads],
            pending: vec![None; self.threads],
            finished: vec![false; self.threads],
        }
    }

    fn enabled(&self, s: &WorkClaimState, t: usize) -> bool {
        !s.finished[t]
    }

    fn step(&self, s: &WorkClaimState, t: usize) -> WorkClaimState {
        let mut n = s.clone();
        if self.atomic {
            let from = s.cursor;
            if from >= self.n {
                n.finished[t] = true;
            } else {
                n.cursor = from + self.batch;
                n.claimed[t] |= self.claim_mask(from);
            }
        } else {
            match s.pending[t] {
                None => {
                    // Load the cursor; exhaustion is visible at the load.
                    if s.cursor >= self.n {
                        n.finished[t] = true;
                    } else {
                        n.pending[t] = Some(s.cursor);
                    }
                }
                Some(from) => {
                    // Store back and claim — another thread may have
                    // loaded the same `from` in between.
                    n.cursor = from + self.batch;
                    n.claimed[t] |= self.claim_mask(from);
                    n.pending[t] = None;
                }
            }
        }
        n
    }

    fn done(&self, s: &WorkClaimState, t: usize) -> bool {
        s.finished[t]
    }

    fn invariant(&self, s: &WorkClaimState) -> Result<(), String> {
        // Pairwise disjointness must hold in every state, not just at the
        // end — a transient double-claim is already a duplicated update.
        for a in 0..self.threads {
            for b in (a + 1)..self.threads {
                let overlap = s.claimed[a] & s.claimed[b];
                if overlap != 0 {
                    return Err(format!(
                        "samples {overlap:#06x} claimed by both thread {a} and thread {b}"
                    ));
                }
            }
        }
        if s.finished.iter().all(|&f| f) {
            let union: u16 = s.claimed.iter().fold(0, |acc, &m| acc | m);
            let all = self.claim_mask_full();
            if union != all {
                return Err(format!(
                    "samples {:#06x} never claimed by any thread",
                    all & !union
                ));
            }
        }
        Ok(())
    }
}

impl WorkClaimModel {
    fn claim_mask_full(&self) -> u16 {
        let mut mask = 0u16;
        for i in 0..self.n {
            mask |= 1 << i;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::{check, ViolationKind};

    const BUDGET: usize = 1_000_000;

    #[test]
    fn canonical_lock_order_is_deadlock_free() {
        let out = check(&LockOrderModel::canonical(), BUDGET);
        assert!(out.verified(), "{out}");
        assert!(out.states > 4, "must actually interleave: {}", out.states);
    }

    #[test]
    fn reversed_lock_order_deadlocks_with_schedule() {
        let out = check(&LockOrderModel::reversed(), BUDGET);
        let v = out.violation.expect("ABBA order must deadlock");
        assert_eq!(v.kind, ViolationKind::Deadlock);
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn stripe_lock_prevents_torn_rows() {
        let out = check(&RowModel::locked(), BUDGET);
        assert!(out.verified(), "{out}");
        assert!(!out.probe_reached, "no torn read may be reachable");
    }

    #[test]
    fn unlocked_rows_tear() {
        let out = check(&RowModel::unlocked(), BUDGET);
        assert!(
            out.violation.is_none(),
            "no invariant claimed when unlocked"
        );
        assert!(
            out.probe_reached,
            "torn read must be reachable without the lock"
        );
    }

    #[test]
    fn atomic_cell_never_tears() {
        let out = check(&CellModel::atomic(), BUDGET);
        assert!(out.verified(), "{out}");
        assert!(!out.probe_reached);
    }

    #[test]
    fn split_cell_tears() {
        let out = check(&CellModel::split(), BUDGET);
        assert!(
            out.probe_reached,
            "half-word stores must produce a torn value"
        );
    }

    #[test]
    fn fetch_add_claims_are_exact() {
        for (n, batch, threads) in [(4, 1, 2), (6, 2, 3), (5, 2, 2)] {
            let out = check(&WorkClaimModel::atomic(n, batch, threads), BUDGET);
            assert!(out.verified(), "n={n} batch={batch} t={threads}: {out}");
        }
    }

    #[test]
    fn read_then_write_double_claims() {
        let out = check(&WorkClaimModel::split(4, 1, 2), BUDGET);
        let v = out.violation.expect("split cursor must double-claim");
        assert_eq!(v.kind, ViolationKind::Invariant);
        assert!(v.detail.contains("claimed by both"), "{}", v.detail);
    }
}
