//! Static deadlock & liveness certifier for every blocking protocol the
//! workspace ships.
//!
//! The engine layers hold locks in three places: the striped factor
//! matrices in `cumf-core` (`striped_locked_epoch` and the two-row
//! update path), the `TrainSupervisor` watchdog around faulted PCIe
//! transfers, and the DES resource configurations (`ServerId`/`LinkId`/
//! `LockId` with their `SmallDeque` waiter lists) that the GPU machine
//! model and the bench pipeline instantiate. Each of those protocols is
//! modelled here *statically* — no instrumentation, no execution of the
//! real code — as a tiny acquisition-order IR ([`ClassSpec`] lock
//! classes + [`SiteSpec`] held→acquires sites), mirroring how
//! [`crate::models`] encodes the stripe protocols for the interleaving
//! checker.
//!
//! Two passes run over every protocol:
//!
//! * **Order** ([`graph`]) — builds the global lock-order graph and
//!   either proves it acyclic (a topological certificate, digested with
//!   FNV-1a like `ConflictCert`/`CostCert`, and cross-validated by
//!   exhaustively model-checking the acquisition paths with the PR 3
//!   checker) or emits a [`graph::DeadlockWitness`]: the concrete cycle
//!   with source-anchored sites and a minimal schedule that replays to a
//!   dead state through [`crate::mc::check`].
//! * **Liveness** ([`liveness`]) — under the documented FIFO contract of
//!   `cumf_des::SmallDeque` (a waiter's queue position strictly
//!   decreases on every grant), bounds the grant delay of every class
//!   and the longest wait chain from any entry site, then checks that
//!   watchdog timeouts *strictly* dominate that chain. A timeout at or
//!   below the certified chain is a [`liveness::StarvationWitness`]: the
//!   watchdog can fire on a healthy queue.
//!
//! The honest protocols ([`protocols::shipped_protocols`]) must all
//! certify; the refutation campaign ([`protocols::broken_twins`]) seeds
//! ABBA stripe acquisition, a cyclic server→link→server DES
//! configuration, a descending two-row twin, and a watchdog shorter than
//! its certified wait chain — each must be refuted with a concrete
//! witness, because an analyzer that cannot refute the twins proves
//! nothing about the protocols.

pub mod graph;
pub mod liveness;
pub mod protocols;

pub use graph::{DeadlockCert, DeadlockWitness, LockSeqModel, OrderVerdict};
pub use liveness::{LivenessCert, LivenessVerdict, StarvationWitness};

use crate::SectionResult;

/// One lock class: a set of interchangeable resources acquired under a
/// single position in the global order (a stripe family, a DES server,
/// a link, a keyed-lock array).
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name, unique within the protocol (e.g. `"P.stripe"`,
    /// `"server:scheduler"`).
    pub name: String,
    /// Source anchor of the resource's definition or registration.
    pub anchor: String,
    /// Concurrent grants the class admits: mutex/stripe = 1, FCFS
    /// server = capacity, keyed locks = key count, `0` for
    /// processor-sharing links (which never block a requester).
    pub slots: usize,
    /// Certified per-grant hold time in seconds (the critical-section
    /// service time the liveness bound is computed from).
    pub hold_s: f64,
    /// Worst-case simultaneous waiters the shipped configuration can
    /// produce (bounded by the thread/process count).
    pub max_waiters: usize,
}

/// One acquisition site: "while holding `held` (or nothing), the
/// protocol acquires `acquires`". Sites are the edges of the lock-order
/// graph; `held == None` marks a protocol entry point.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Class index held at this site, or `None` for an entry site.
    pub held: Option<usize>,
    /// Class index acquired at this site.
    pub acquires: usize,
    /// Source anchor (`path::function`) of the acquisition.
    pub anchor: String,
    /// Why the site exists / what the code is doing there.
    pub note: String,
}

/// A watchdog guarding the protocol: it aborts a wait after
/// `timeout_s`. Liveness requires the timeout to strictly dominate the
/// longest certified wait chain, else the watchdog fires on healthy
/// contention.
#[derive(Debug, Clone)]
pub struct WatchdogSpec {
    /// Abort threshold in seconds.
    pub timeout_s: f64,
    /// Source anchor of the watchdog.
    pub anchor: String,
}

/// Retry/backoff envelope around the protocol (the supervisor's
/// rollback path): recorded in the liveness certificate so the total
/// bounded-retry budget is part of the certified story.
#[derive(Debug, Clone)]
pub struct RetrySpec {
    /// Maximum attempts before giving up.
    pub max_attempts: u32,
    /// Sum of all backoff delays across those attempts, seconds.
    pub total_backoff_s: f64,
}

/// A complete static model of one blocking protocol.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Protocol name (`striped-epoch`, `des/wavefront`, `twin/...`).
    pub name: &'static str,
    /// Lock classes, indexed by [`SiteSpec::held`]/[`SiteSpec::acquires`].
    pub classes: Vec<ClassSpec>,
    /// Acquisition sites (lock-order graph edges + entry points).
    pub sites: Vec<SiteSpec>,
    /// Watchdog guarding waits, if the protocol has one.
    pub watchdog: Option<WatchdogSpec>,
    /// Retry envelope, if the protocol has one.
    pub retry: Option<RetrySpec>,
}

impl Protocol {
    /// The class name for index `c` (for report lines and witnesses).
    pub fn class_name(&self, c: usize) -> &str {
        &self.classes[c].name
    }
}

/// What the two passes concluded about one protocol.
#[derive(Debug, Clone)]
pub enum ProtocolOutcome {
    /// Order proven acyclic *and* every waiter's grant bounded with the
    /// watchdog (if any) strictly dominating the wait chain.
    Certified {
        /// The acyclicity certificate.
        order: DeadlockCert,
        /// The bounded-wait certificate.
        live: LivenessCert,
    },
    /// The lock-order graph has a cycle; the witness carries the cycle,
    /// its source-anchored sites, and a replayable minimal schedule.
    Deadlocked(DeadlockWitness),
    /// Order is fine but a watchdog timeout does not dominate the
    /// certified wait chain.
    Starved {
        /// The (valid) acyclicity certificate.
        order: DeadlockCert,
        /// The starvation counterexample.
        witness: StarvationWitness,
    },
}

impl ProtocolOutcome {
    /// True when the protocol is fully certified.
    pub fn certified(&self) -> bool {
        matches!(self, ProtocolOutcome::Certified { .. })
    }
}

/// Runs the order pass, then (only on an acyclic order) the liveness
/// pass.
pub fn analyze_protocol(p: &Protocol) -> ProtocolOutcome {
    match graph::analyze_order(p) {
        OrderVerdict::Cyclic(w) => ProtocolOutcome::Deadlocked(w),
        OrderVerdict::Acyclic(order) => match liveness::analyze_liveness(p, &order) {
            LivenessVerdict::Live(live) => ProtocolOutcome::Certified { order, live },
            LivenessVerdict::Starved(witness) => ProtocolOutcome::Starved { order, witness },
        },
    }
}

/// Runs the full deadlock/liveness campaign as an analyzer section:
/// every shipped protocol must certify, every broken twin must be
/// refuted with a concrete, replayable witness.
pub fn run_section() -> SectionResult {
    let mut lines = Vec::new();
    let mut pass = true;
    let mut certified = 0usize;
    let mut refuted = 0usize;

    for p in protocols::shipped_protocols() {
        match analyze_protocol(&p) {
            ProtocolOutcome::Certified { order, live } => {
                certified += 1;
                lines.push(format!("[ok] certified: {order}"));
                lines.push(format!("[ok] live: {live}"));
            }
            ProtocolOutcome::Deadlocked(w) => {
                pass = false;
                lines.push(format!("[FAIL] shipped protocol deadlocks: {w}"));
            }
            ProtocolOutcome::Starved { witness, .. } => {
                pass = false;
                lines.push(format!("[FAIL] shipped protocol starves: {witness}"));
            }
        }
    }

    for p in protocols::broken_twins() {
        match analyze_protocol(&p) {
            ProtocolOutcome::Certified { .. } => {
                pass = false;
                lines.push(format!(
                    "[FAIL] broken twin {} was certified — the analyzer refutes nothing",
                    p.name
                ));
            }
            ProtocolOutcome::Deadlocked(w) => {
                let ok = w.replays;
                pass &= ok;
                refuted += usize::from(ok);
                lines.push(format!("[{}] refuted: {w}", if ok { "ok" } else { "FAIL" }));
            }
            ProtocolOutcome::Starved { witness, .. } => {
                let ok = witness.timeout_s <= witness.grant_by_s;
                pass &= ok;
                refuted += usize::from(ok);
                lines.push(format!(
                    "[{}] refuted: {witness}",
                    if ok { "ok" } else { "FAIL" }
                ));
            }
        }
    }

    lines.push(format!(
        "{certified} shipped protocols certified, {refuted} broken twins refuted"
    ));

    SectionResult {
        name: "deadlock",
        pass,
        ran: true,
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_passes_end_to_end() {
        let s = run_section();
        assert!(s.ran);
        assert!(s.pass, "{:#?}", s.lines);
        assert!(s.lines.iter().any(|l| l.contains("certified")));
        assert!(s.lines.iter().any(|l| l.contains("refuted")));
    }

    #[test]
    fn every_shipped_protocol_is_certified() {
        for p in protocols::shipped_protocols() {
            let out = analyze_protocol(&p);
            assert!(out.certified(), "{} not certified: {out:?}", p.name);
        }
    }

    #[test]
    fn every_broken_twin_is_refuted() {
        let twins = protocols::broken_twins();
        assert!(twins.len() >= 3, "refutation campaign needs ≥3 twins");
        for p in twins {
            let out = analyze_protocol(&p);
            match out {
                ProtocolOutcome::Certified { .. } => {
                    panic!("broken twin {} must not certify", p.name)
                }
                ProtocolOutcome::Deadlocked(w) => {
                    assert!(w.replays, "{}: witness must replay in the checker", p.name);
                    assert!(w.cycle.len() >= 2, "{}: cycle too short", p.name);
                }
                ProtocolOutcome::Starved { witness, .. } => {
                    assert!(
                        witness.timeout_s <= witness.grant_by_s,
                        "{}: starvation witness must show timeout ≤ grant bound",
                        p.name
                    );
                }
            }
        }
    }
}
