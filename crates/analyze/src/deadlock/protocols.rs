//! Static models of every shipped blocking protocol, plus the broken
//! twins the refutation campaign must reject.
//!
//! The models are anchored in the real code two ways. The stripe
//! protocols are built from `cumf_core::concurrent::LOCK_SITES` — the
//! annotation table maintained *next to* the lock acquisitions it
//! describes, so a new acquisition path without an annotation is a
//! visible review smell. The DES protocols build the actual shipped
//! `Simulation` configurations and read the resource inventory back
//! through `Simulation::resource_topology()`; a model naming a resource
//! the simulation no longer registers panics instead of silently
//! certifying a stale topology.

use super::{ClassSpec, Protocol, RetrySpec, SiteSpec, WatchdogSpec};
use cumf_core::faults::SupervisorConfig;
use cumf_des::{ResourceKind, ResourceNode, Simulation};
use cumf_serve::ServeConfig;

/// Certified stripe critical-section time: the epoch loop holds a
/// stripe for one k≤128 row update (a few hundred FLOPs), comfortably
/// under a microsecond on any target.
const STRIPE_HOLD_S: f64 = 1e-6;

/// Worst-case simultaneous waiters on one stripe: every other thread of
/// the widest shipped executor configuration (32 threads).
const STRIPE_WAITERS: usize = 31;

fn class_index(
    classes: &mut Vec<ClassSpec>,
    name: &str,
    anchor: &str,
    slots: usize,
    hold_s: f64,
    max_waiters: usize,
) -> usize {
    if let Some(i) = classes.iter().position(|c| c.name == name) {
        return i;
    }
    classes.push(ClassSpec {
        name: name.to_string(),
        anchor: anchor.to_string(),
        slots,
        hold_s,
        max_waiters,
    });
    classes.len() - 1
}

/// Builds a protocol from the in-source annotation table in
/// `cumf_core::concurrent` (all stripe classes: 1 slot, stripe hold).
fn from_core_sites(name: &'static str) -> Protocol {
    let mut classes = Vec::new();
    let mut sites = Vec::new();
    for anno in cumf_core::concurrent::LOCK_SITES
        .iter()
        .filter(|s| s.protocol == name)
    {
        let acquires = class_index(
            &mut classes,
            anno.acquires,
            anno.anchor,
            1,
            STRIPE_HOLD_S,
            STRIPE_WAITERS,
        );
        let held = anno.held.map(|h| {
            class_index(
                &mut classes,
                h,
                anno.anchor,
                1,
                STRIPE_HOLD_S,
                STRIPE_WAITERS,
            )
        });
        sites.push(SiteSpec {
            held,
            acquires,
            anchor: anno.anchor.to_string(),
            note: anno.note.to_string(),
        });
    }
    assert!(
        !sites.is_empty(),
        "no annotated sites for {name} in cumf_core::concurrent::LOCK_SITES"
    );
    Protocol {
        name,
        classes,
        sites,
        watchdog: None,
        retry: None,
    }
}

fn kind_prefix(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Server => "server",
        ResourceKind::Link => "link",
        ResourceKind::Lock => "lock",
    }
}

/// A class backed by a resource the shipped simulation actually
/// registers; panics on drift between model and simulation.
fn des_class(
    topo: &[ResourceNode],
    kind: ResourceKind,
    name: &str,
    hold_s: f64,
    max_waiters: usize,
    anchor: &str,
) -> ClassSpec {
    let node = topo
        .iter()
        .find(|n| n.kind == kind && n.name == name)
        .unwrap_or_else(|| {
            panic!("resource {name:?} ({kind:?}) not registered in the shipped simulation — the static model drifted from the code")
        });
    ClassSpec {
        name: format!("{}:{}", kind_prefix(kind), node.name),
        anchor: anchor.to_string(),
        slots: node.slots,
        hold_s,
        max_waiters,
    }
}

fn entry(acquires: usize, anchor: &str, note: &str) -> SiteSpec {
    SiteSpec {
        held: None,
        acquires,
        anchor: anchor.to_string(),
        note: note.to_string(),
    }
}

/// LIBMF global scheduling table: 64 workers funnel through the 1-slot
/// `scheduler` server between batches (the §4.1 contention argument —
/// this is the critical section that saturates at ~30 workers).
fn des_global_table() -> Protocol {
    let mut sim = Simulation::new();
    sim.add_server("scheduler", 1);
    let topo = sim.resource_topology();
    let classes = vec![des_class(
        &topo,
        ResourceKind::Server,
        "scheduler",
        1e-7,
        63,
        "crates/gpu-sim/src/executor.rs::build_global_table",
    )];
    let sites = vec![entry(
        0,
        "crates/gpu-sim/src/executor.rs::Worker::resume",
        "every worker queues on the scheduling-table critical section between batches; \
         nothing else is held while waiting",
    )];
    Protocol {
        name: "des/global-table",
        classes,
        sites,
        watchdog: None,
        retry: None,
    }
}

/// Wavefront column locking: workers take one key of the `columns`
/// keyed-lock array at a time. The executor *releases* its held column
/// before requesting the next (`held_col.take()` + `release_key`
/// precede the next `Block::AcquireKey`), so there is no hold-and-wait
/// edge at all — the order graph is entry-only by construction.
fn des_wavefront() -> Protocol {
    let mut sim = Simulation::new();
    sim.add_lock("columns", 64);
    let topo = sim.resource_topology();
    let classes = vec![des_class(
        &topo,
        ResourceKind::Lock,
        "columns",
        1e-6,
        31,
        "crates/gpu-sim/src/executor.rs::build_wavefront",
    )];
    let sites = vec![entry(
        0,
        "crates/gpu-sim/src/executor.rs::Worker::resume",
        "release-before-acquire: the held column key is released before the next \
         AcquireKey, so no key is held while waiting (the ≥2×-columns grid assert \
         additionally keeps contention per key low)",
    )];
    Protocol {
        name: "des/wavefront",
        classes,
        sites,
        watchdog: None,
        retry: None,
    }
}

/// The bench pipeline: 64 Contenders on a 4-slot server, 64 Movers on a
/// PS link. The two populations are disjoint, so both classes are
/// independent entry sites.
fn des_bench_pipeline() -> Protocol {
    let mut sim = Simulation::new();
    sim.add_server("cs", 4);
    sim.add_link("pcie", 1e9);
    let topo = sim.resource_topology();
    let classes = vec![
        des_class(
            &topo,
            ResourceKind::Server,
            "cs",
            1e-6,
            63,
            "crates/bench/src/suite.rs::des_contention",
        ),
        des_class(
            &topo,
            ResourceKind::Link,
            "pcie",
            4096.0 / 1e9,
            63,
            "crates/bench/src/suite.rs::des_transfer",
        ),
    ];
    let sites = vec![
        entry(
            0,
            "crates/bench/src/suite.rs::Contender::resume",
            "contenders hold nothing while queueing for a service slot",
        ),
        entry(
            1,
            "crates/bench/src/suite.rs::Mover::resume",
            "movers share link bandwidth; PS transfers never block",
        ),
    ];
    Protocol {
        name: "des/bench-pipeline",
        classes,
        sites,
        watchdog: None,
        retry: None,
    }
}

/// The supervised PCIe transfer: a 1 MiB partition on a 1 GB/s PS link
/// with up to 3 concurrent transfers, guarded by the `TrainSupervisor`
/// stall watchdog and its bounded retry/backoff envelope. Liveness must
/// show the default timeout strictly dominates the certified wait chain
/// (~4.2 ms at a 4-way bandwidth share).
fn supervisor_transfer(watchdog_timeout_s: Option<f64>) -> Protocol {
    let anno = SupervisorConfig::default().liveness_anno();
    let mut sim = Simulation::new();
    sim.add_link("pcie", 1e9);
    let topo = sim.resource_topology();
    let classes = vec![des_class(
        &topo,
        ResourceKind::Link,
        "pcie",
        1_048_576.0 / 1e9,
        3,
        "crates/core/src/faults/retry.rs::detect_stall",
    )];
    let sites = vec![entry(
        0,
        "crates/core/src/faults/supervisor.rs::TrainSupervisor::run",
        "the supervisor races each partition transfer against the stall watchdog; \
         nothing is held while the transfer progresses",
    )];
    Protocol {
        name: if watchdog_timeout_s.is_some() {
            "twin/watchdog-short"
        } else {
            "supervisor-transfer"
        },
        classes,
        sites,
        watchdog: Some(WatchdogSpec {
            timeout_s: watchdog_timeout_s.unwrap_or(anno.timeout_s),
            anchor: anno.anchor.to_string(),
        }),
        retry: Some(RetrySpec {
            max_attempts: anno.max_attempts,
            total_backoff_s: anno.total_backoff_s,
        }),
    }
}

/// The serving scatter-gather read path: every request queues on a
/// shard's replica service slots holding nothing (entry-only order
/// graph), raced against the per-request deadline. The numbers come
/// from `cumf_serve::ServeConfig::default().liveness_anno()`, so the
/// model moves in lockstep with the shipped configuration: the deadline
/// must strictly dominate the certified worst-case wait chain
/// (ceil(31 waiters / 8 slots) × 1 ms hold + 1 ms = 5 ms ≪ 50 ms).
fn serve_request(deadline_override: Option<f64>) -> Protocol {
    let anno = ServeConfig::default().liveness_anno();
    let classes = vec![ClassSpec {
        name: "serve:shard-read".to_string(),
        anchor: anno.anchor.to_string(),
        slots: anno.slots as usize,
        hold_s: anno.hold_s,
        max_waiters: anno.max_waiters as usize,
    }];
    let sites = vec![entry(
        0,
        "crates/serve/src/service.rs::Sim::enqueue_read",
        "scatter-gather: a request queues on a shard's replica slots holding nothing; \
         partial results compose into a degraded answer, so no read waits on another",
    )];
    Protocol {
        name: if deadline_override.is_some() {
            "twin/serve-deadline-short"
        } else {
            "serve-request"
        },
        classes,
        sites,
        watchdog: Some(WatchdogSpec {
            timeout_s: deadline_override.unwrap_or(anno.deadline_s),
            anchor: anno.anchor.to_string(),
        }),
        retry: Some(RetrySpec {
            max_attempts: anno.retry_attempts.max(1),
            total_backoff_s: anno.retry_total_backoff_s,
        }),
    }
}

/// Every blocking protocol the workspace ships; all must certify.
pub fn shipped_protocols() -> Vec<Protocol> {
    vec![
        from_core_sites("striped-epoch"),
        from_core_sites("two-row-update"),
        des_global_table(),
        des_wavefront(),
        des_bench_pipeline(),
        supervisor_transfer(None),
        serve_request(None),
    ]
}

/// Deliberately broken variants; none may certify, and each must yield
/// a concrete (replayable) witness.
pub fn broken_twins() -> Vec<Protocol> {
    let mut twins = Vec::new();

    // (1) ABBA stripe acquisition: one epoch family acquires Q before
    // P. The honest protocol's canonical P-then-Q order is seeded with
    // its mirror image — the classic 2-cycle.
    let mut abba = from_core_sites("striped-epoch");
    abba.name = "twin/striped-abba";
    let (p, q) = (0, 1);
    abba.sites.push(entry(
        q,
        "twin::reversed_epoch",
        "seeded: reversed family enters on Q.stripe",
    ));
    abba.sites.push(SiteSpec {
        held: Some(q),
        acquires: p,
        anchor: "twin::reversed_epoch".to_string(),
        note: "seeded: acquires P.stripe while holding Q.stripe".to_string(),
    });
    twins.push(abba);

    // (2) Descending two-row update: the ordered_stripes() sort is
    // dropped, so one caller locks (hi, lo) against the honest (lo, hi).
    let mut desc = from_core_sites("two-row-update");
    desc.name = "twin/two-row-descending";
    let (lo, hi) = (0, 1);
    desc.sites.push(entry(
        hi,
        "twin::descending_update",
        "seeded: update path without ordered_stripes(), entering on the higher stripe",
    ));
    desc.sites.push(SiteSpec {
        held: Some(hi),
        acquires: lo,
        anchor: "twin::descending_update".to_string(),
        note: "seeded: acquires stripe.lo while holding stripe.hi".to_string(),
    });
    twins.push(desc);

    // (3) Cyclic DES pipeline: a staging config where each process
    // holds its stage (misusing the PS transfer slot as a held
    // resource) while requesting the next — server → link → server →
    // back, a 3-cycle.
    let mut sim = Simulation::new();
    sim.add_server("stage-in", 1);
    sim.add_link("bus", 1e9);
    sim.add_server("stage-out", 1);
    let topo = sim.resource_topology();
    let classes = vec![
        des_class(
            &topo,
            ResourceKind::Server,
            "stage-in",
            1e-6,
            3,
            "twin::cyclic_pipeline",
        ),
        des_class(
            &topo,
            ResourceKind::Link,
            "bus",
            4096.0 / 1e9,
            3,
            "twin::cyclic_pipeline",
        ),
        des_class(
            &topo,
            ResourceKind::Server,
            "stage-out",
            1e-6,
            3,
            "twin::cyclic_pipeline",
        ),
    ];
    let sites = vec![
        entry(0, "twin::cyclic_pipeline", "ingest claims its input stage"),
        SiteSpec {
            held: Some(0),
            acquires: 1,
            anchor: "twin::cyclic_pipeline::ingest".to_string(),
            note: "seeded: holds stage-in while claiming a bus transfer slot".to_string(),
        },
        SiteSpec {
            held: Some(1),
            acquires: 2,
            anchor: "twin::cyclic_pipeline::mover".to_string(),
            note: "seeded: holds the bus while claiming stage-out".to_string(),
        },
        SiteSpec {
            held: Some(2),
            acquires: 0,
            anchor: "twin::cyclic_pipeline::drain".to_string(),
            note: "seeded: holds stage-out while re-claiming stage-in (feedback loop)".to_string(),
        },
    ];
    twins.push(Protocol {
        name: "twin/des-cyclic",
        classes,
        sites,
        watchdog: None,
        retry: None,
    });

    // (4) Watchdog shorter than the certified wait chain: the 1 ms
    // timeout fires before the ~4.2 ms bound of a 4-way shared 1 MiB
    // transfer.
    twins.push(supervisor_transfer(Some(1e-3)));

    // (5) Serve deadline shorter than the certified shard wait chain: a
    // 2 ms deadline fires before the 5 ms worst-case queue+service
    // bound, so healthy contention alone would finalize requests
    // degraded. The certifier must starve this twin.
    twins.push(serve_request(Some(2e-3)));

    twins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock::{analyze_protocol, ProtocolOutcome};

    #[test]
    fn ships_seven_protocols_and_five_twins() {
        assert_eq!(shipped_protocols().len(), 7);
        assert_eq!(broken_twins().len(), 5);
    }

    #[test]
    fn stripe_protocols_come_from_the_in_source_annotations() {
        let p = from_core_sites("striped-epoch");
        assert_eq!(p.classes.len(), 2);
        assert!(p.sites.iter().all(|s| s.anchor.contains("concurrent.rs")));
        let p = from_core_sites("two-row-update");
        assert!(p
            .classes
            .iter()
            .any(|c| c.name == "stripe.lo" || c.name == "stripe.hi"));
    }

    #[test]
    fn des_models_cross_check_against_the_real_topology() {
        // des_class panics on drift; building the protocols exercises
        // every lookup against a freshly built Simulation.
        for p in shipped_protocols() {
            assert!(!p.classes.is_empty(), "{} has no classes", p.name);
            assert!(!p.sites.is_empty(), "{} has no sites", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "not registered in the shipped simulation")]
    fn topology_drift_panics_instead_of_certifying() {
        let sim = Simulation::new();
        let topo = sim.resource_topology();
        des_class(&topo, ResourceKind::Server, "ghost", 1e-6, 1, "test");
    }

    #[test]
    fn wavefront_model_is_entry_only() {
        let p = des_wavefront();
        assert!(
            p.sites.iter().all(|s| s.held.is_none()),
            "wavefront executor releases before acquiring; the model must reflect that"
        );
    }

    #[test]
    fn supervisor_watchdog_comes_from_the_shipped_config() {
        let p = supervisor_transfer(None);
        let w = p.watchdog.expect("supervisor has a watchdog");
        let cfg = SupervisorConfig::default();
        assert_eq!(w.timeout_s, cfg.stall_timeout_s);
        let r = p.retry.expect("supervisor has a retry envelope");
        assert_eq!(r.max_attempts, cfg.retry.max_attempts.max(1));
    }

    #[test]
    fn abba_twin_cycles_through_both_stripe_families() {
        let twins = broken_twins();
        let abba = twins
            .iter()
            .find(|p| p.name == "twin/striped-abba")
            .unwrap();
        match analyze_protocol(abba) {
            ProtocolOutcome::Deadlocked(w) => {
                assert!(w.cycle.contains(&"P.stripe".to_string()), "{w}");
                assert!(w.cycle.contains(&"Q.stripe".to_string()), "{w}");
            }
            other => panic!("ABBA twin must deadlock: {other:?}"),
        }
    }

    #[test]
    fn serve_protocol_certifies_with_the_shipped_deadline() {
        let p = serve_request(None);
        let anno = ServeConfig::default().liveness_anno();
        let w = p.watchdog.as_ref().expect("serve has a deadline watchdog");
        assert_eq!(w.timeout_s, anno.deadline_s);
        assert!(p.sites.iter().all(|s| s.held.is_none()), "entry-only");
        match analyze_protocol(&p) {
            ProtocolOutcome::Certified { live, .. } => {
                // The deadline strictly dominates the certified chain.
                assert!(anno.deadline_s > live.chain_s, "{live:?}");
            }
            other => panic!("serve-request must certify: {other:?}"),
        }
    }

    #[test]
    fn serve_deadline_twin_starves_on_the_shard_wait_chain() {
        let twins = broken_twins();
        let short = twins
            .iter()
            .find(|p| p.name == "twin/serve-deadline-short")
            .unwrap();
        match analyze_protocol(short) {
            ProtocolOutcome::Starved { witness, .. } => {
                assert!(witness.timeout_s <= witness.grant_by_s, "{witness}");
                assert!(witness.class.contains("shard-read"), "{witness}");
            }
            other => panic!("short serve deadline must starve: {other:?}"),
        }
    }

    #[test]
    fn watchdog_twin_starves_with_the_shipped_chain() {
        let twins = broken_twins();
        let short = twins
            .iter()
            .find(|p| p.name == "twin/watchdog-short")
            .unwrap();
        match analyze_protocol(short) {
            ProtocolOutcome::Starved { witness, .. } => {
                assert!(witness.timeout_s < witness.grant_by_s, "{witness}");
                assert!(witness.class.contains("pcie"), "{witness}");
            }
            other => panic!("short watchdog must starve: {other:?}"),
        }
    }
}
