//! Liveness pass: bounded-wait certificates under the FIFO contract.
//!
//! Deadlock-freedom (the order pass) says the system always makes
//! progress *somewhere*; liveness says every individual waiter is
//! eventually granted. The argument leans on the documented FIFO
//! contract of the DES waiter lists (`cumf_des::SmallDeque`, also used
//! by the FCFS servers and keyed locks): a waiter's queue position
//! strictly decreases on every grant and cancellation never perturbs
//! the order of the rest, so a waiter at position `w` on a class with
//! `s` slots is granted within `⌈w / s⌉` effective hold times.
//!
//! Effective holds compose along the (already proven acyclic) order
//! graph in reverse topological order: holding class `c`, the protocol
//! may acquire inner classes, so `eff(c)` is `c`'s own critical-section
//! time plus the full wait-and-hold of everything acquired under it.
//! Processor-sharing links never queue — every transfer progresses at a
//! `1/(1+w)` bandwidth share — so their wait is 0 and the slowdown
//! folds into the effective hold instead.
//!
//! The longest chain from any entry site bounds the time from "process
//! requests its first lock" to "process holds everything": that is the
//! number a watchdog must *strictly* dominate. A timeout at or below
//! the chain is a [`StarvationWitness`] — the watchdog can abort a
//! perfectly healthy wait, turning bounded contention into spurious
//! rollbacks (and, with a bounded retry budget, eventual failure).

use super::{Protocol, WatchdogSpec};
use crate::deadlock::graph::DeadlockCert;
use cumf_core::faults::fnv1a64;

/// Outcome of the liveness pass on one (order-certified) protocol.
#[derive(Debug, Clone)]
pub enum LivenessVerdict {
    /// Every waiter's grant is bounded and the watchdog (if any)
    /// strictly dominates the longest wait chain.
    Live(LivenessCert),
    /// A watchdog timeout does not dominate the certified chain.
    Starved(StarvationWitness),
}

/// Bounded-wait certificate.
#[derive(Debug, Clone)]
pub struct LivenessCert {
    /// Protocol name.
    pub protocol: &'static str,
    /// Per-class worst-case grant bound in seconds (class name, bound).
    pub grant_bounds: Vec<(String, f64)>,
    /// Longest wait chain from any entry site, seconds.
    pub chain_s: f64,
    /// `timeout − chain`, when the protocol has a watchdog (positive by
    /// construction in a `Live` verdict).
    pub watchdog_margin_s: Option<f64>,
    /// Retry envelope recorded from the protocol, if any.
    pub retry_bound: Option<(u32, f64)>,
    /// FNV-1a digest of the certificate content.
    pub digest: u64,
}

impl std::fmt::Display for LivenessCert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: chain {:.3e} s", self.protocol, self.chain_s)?;
        if let Some(m) = self.watchdog_margin_s {
            write!(f, ", watchdog margin {m:.3e} s")?;
        }
        if let Some((attempts, backoff)) = self.retry_bound {
            write!(f, ", retry ≤{attempts}× (+{backoff:.3} s backoff)")?;
        }
        write!(f, ", digest {:016x}", self.digest)
    }
}

/// A starvation counterexample: the watchdog fires before the certified
/// grant bound, so a healthy waiter gets aborted.
#[derive(Debug, Clone)]
pub struct StarvationWitness {
    /// Protocol name.
    pub protocol: &'static str,
    /// The class whose wait chain the timeout fails to cover.
    pub class: String,
    /// FIFO position of the victim waiter (the last of `max_waiters`).
    pub victim_position: usize,
    /// Certified bound by which the victim *would* be granted, seconds.
    pub grant_by_s: f64,
    /// The watchdog timeout that fires first, seconds.
    pub timeout_s: f64,
    /// Source anchor of the offending watchdog.
    pub anchor: String,
}

impl std::fmt::Display for StarvationWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: watchdog at {} fires at {:.3e} s but the position-{} waiter on {} is only \
             guaranteed a grant by {:.3e} s",
            self.protocol,
            self.anchor,
            self.timeout_s,
            self.victim_position,
            self.class,
            self.grant_by_s
        )
    }
}

/// Per-class effective hold and worst-case grant wait, composed in
/// reverse topological order of the (acyclic) lock-order graph.
fn class_bounds(p: &Protocol, cert: &DeadlockCert) -> (Vec<f64>, Vec<f64>) {
    let n = p.classes.len();
    let mut eff = vec![0.0f64; n];
    let mut wait = vec![0.0f64; n];
    // Reverse topo: innermost classes (no outgoing order edges) first,
    // so `eff` of inner acquisitions is ready when an outer class needs
    // it.
    for &c in cert.topo.iter().rev() {
        let nested: f64 = p
            .sites
            .iter()
            .filter(|s| s.held == Some(c))
            .map(|s| wait[s.acquires] + eff[s.acquires])
            .sum();
        let spec = &p.classes[c];
        if spec.slots == 0 {
            // Processor-sharing link: no queue, bandwidth divides by
            // (1 + waiters), stretching the hold instead of blocking.
            eff[c] = spec.hold_s * (1.0 + spec.max_waiters as f64) + nested;
            wait[c] = 0.0;
        } else {
            eff[c] = spec.hold_s + nested;
            let rounds = spec.max_waiters.div_ceil(spec.slots);
            wait[c] = rounds as f64 * eff[c];
        }
    }
    (eff, wait)
}

fn live_digest(p: &Protocol, bounds: &[(String, f64)], chain_s: f64) -> u64 {
    let mut text = String::new();
    text.push_str(p.name);
    for (name, b) in bounds {
        text.push_str(&format!("|{name}={b:.6e}"));
    }
    text.push_str(&format!("|chain={chain_s:.6e}"));
    fnv1a64(text.as_bytes())
}

/// Runs the liveness pass. Requires the order certificate (the bound
/// composition walks its topological order).
pub fn analyze_liveness(p: &Protocol, cert: &DeadlockCert) -> LivenessVerdict {
    let (eff, wait) = class_bounds(p, cert);

    // Longest chain from any entry site: full wait for the entry class
    // plus the effective hold (which already folds in every nested
    // wait-and-hold).
    let mut chain_s = 0.0f64;
    let mut chain_class = 0usize;
    for site in p.sites.iter().filter(|s| s.held.is_none()) {
        let c = site.acquires;
        let total = wait[c] + eff[c];
        if total > chain_s {
            chain_s = total;
            chain_class = c;
        }
    }

    let grant_bounds: Vec<(String, f64)> = p
        .classes
        .iter()
        .enumerate()
        .map(|(c, spec)| (spec.name.clone(), wait[c] + eff[c]))
        .collect();

    let watchdog_margin_s = match &p.watchdog {
        Some(WatchdogSpec { timeout_s, anchor }) => {
            if *timeout_s <= chain_s {
                let spec = &p.classes[chain_class];
                return LivenessVerdict::Starved(StarvationWitness {
                    protocol: p.name,
                    class: spec.name.clone(),
                    victim_position: spec.max_waiters,
                    grant_by_s: chain_s,
                    timeout_s: *timeout_s,
                    anchor: anchor.clone(),
                });
            }
            Some(timeout_s - chain_s)
        }
        None => None,
    };

    let digest = live_digest(p, &grant_bounds, chain_s);
    LivenessVerdict::Live(LivenessCert {
        protocol: p.name,
        grant_bounds,
        chain_s,
        watchdog_margin_s,
        retry_bound: p
            .retry
            .as_ref()
            .map(|r| (r.max_attempts, r.total_backoff_s)),
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock::graph::{analyze_order, OrderVerdict};
    use crate::deadlock::{ClassSpec, Protocol, RetrySpec, SiteSpec};

    fn proto(
        classes: Vec<ClassSpec>,
        sites: Vec<SiteSpec>,
        watchdog: Option<WatchdogSpec>,
    ) -> Protocol {
        Protocol {
            name: "test/liveness",
            classes,
            sites,
            watchdog,
            retry: None,
        }
    }

    fn class(name: &str, slots: usize, hold_s: f64, max_waiters: usize) -> ClassSpec {
        ClassSpec {
            name: name.to_string(),
            anchor: "test".to_string(),
            slots,
            hold_s,
            max_waiters,
        }
    }

    fn site(held: Option<usize>, acquires: usize) -> SiteSpec {
        SiteSpec {
            held,
            acquires,
            anchor: "test::site".to_string(),
            note: String::new(),
        }
    }

    fn order_cert(p: &Protocol) -> DeadlockCert {
        match analyze_order(p) {
            OrderVerdict::Acyclic(c) => c,
            OrderVerdict::Cyclic(w) => panic!("test protocol must be acyclic: {w}"),
        }
    }

    #[test]
    fn single_mutex_chain_is_waiters_plus_one_holds() {
        // 3 waiters on a 1-slot mutex held 1 ms: grant by 3 holds of
        // waiting plus 1 hold of our own.
        let p = proto(vec![class("m", 1, 1e-3, 3)], vec![site(None, 0)], None);
        let cert = order_cert(&p);
        match analyze_liveness(&p, &cert) {
            LivenessVerdict::Live(c) => {
                assert!((c.chain_s - 4e-3).abs() < 1e-12, "chain {}", c.chain_s);
            }
            LivenessVerdict::Starved(w) => panic!("{w}"),
        }
    }

    #[test]
    fn nested_acquisition_inflates_the_outer_hold() {
        // Outer (1 slot, 1 ms, 1 waiter) acquires inner (1 slot, 2 ms,
        // 1 waiter) while held. eff(inner) = 2 ms, wait(inner) = 2 ms,
        // eff(outer) = 1 + 4 = 5 ms, wait(outer) = 5 ms, chain = 10 ms.
        let p = proto(
            vec![class("outer", 1, 1e-3, 1), class("inner", 1, 2e-3, 1)],
            vec![site(None, 0), site(Some(0), 1)],
            None,
        );
        let cert = order_cert(&p);
        match analyze_liveness(&p, &cert) {
            LivenessVerdict::Live(c) => {
                assert!((c.chain_s - 10e-3).abs() < 1e-12, "chain {}", c.chain_s);
            }
            LivenessVerdict::Starved(w) => panic!("{w}"),
        }
    }

    #[test]
    fn ps_link_slows_down_but_never_blocks() {
        // A PS link (slots = 0) with 3 concurrent transfers: each gets a
        // 1/4 share, so the hold stretches 4× and nobody waits.
        let p = proto(vec![class("link", 0, 1e-3, 3)], vec![site(None, 0)], None);
        let cert = order_cert(&p);
        match analyze_liveness(&p, &cert) {
            LivenessVerdict::Live(c) => {
                assert!((c.chain_s - 4e-3).abs() < 1e-12, "chain {}", c.chain_s);
                assert_eq!(c.grant_bounds.len(), 1);
            }
            LivenessVerdict::Starved(w) => panic!("{w}"),
        }
    }

    #[test]
    fn multi_slot_server_divides_the_wait() {
        // 8 waiters on a 4-slot server: ⌈8/4⌉ = 2 rounds of waiting.
        let p = proto(vec![class("srv", 4, 1e-3, 8)], vec![site(None, 0)], None);
        let cert = order_cert(&p);
        match analyze_liveness(&p, &cert) {
            LivenessVerdict::Live(c) => {
                assert!((c.chain_s - 3e-3).abs() < 1e-12, "chain {}", c.chain_s);
            }
            LivenessVerdict::Starved(w) => panic!("{w}"),
        }
    }

    #[test]
    fn dominating_watchdog_certifies_with_margin() {
        let p = proto(
            vec![class("m", 1, 1e-3, 3)],
            vec![site(None, 0)],
            Some(WatchdogSpec {
                timeout_s: 1.0,
                anchor: "test::watchdog".to_string(),
            }),
        );
        let cert = order_cert(&p);
        match analyze_liveness(&p, &cert) {
            LivenessVerdict::Live(c) => {
                let m = c.watchdog_margin_s.expect("watchdog present");
                assert!((m - (1.0 - 4e-3)).abs() < 1e-9);
            }
            LivenessVerdict::Starved(w) => panic!("{w}"),
        }
    }

    #[test]
    fn short_watchdog_is_a_starvation_witness() {
        let p = proto(
            vec![class("m", 1, 1e-3, 3)],
            vec![site(None, 0)],
            Some(WatchdogSpec {
                timeout_s: 2e-3, // < 4 ms chain
                anchor: "test::watchdog".to_string(),
            }),
        );
        let cert = order_cert(&p);
        match analyze_liveness(&p, &cert) {
            LivenessVerdict::Starved(w) => {
                assert_eq!(w.class, "m");
                assert_eq!(w.victim_position, 3);
                assert!(w.timeout_s < w.grant_by_s);
            }
            LivenessVerdict::Live(c) => panic!("must starve: {c}"),
        }
    }

    #[test]
    fn retry_envelope_is_recorded() {
        let mut p = proto(vec![class("m", 1, 1e-3, 1)], vec![site(None, 0)], None);
        p.retry = Some(RetrySpec {
            max_attempts: 4,
            total_backoff_s: 0.07,
        });
        let cert = order_cert(&p);
        match analyze_liveness(&p, &cert) {
            LivenessVerdict::Live(c) => {
                assert_eq!(c.retry_bound, Some((4, 0.07)));
            }
            LivenessVerdict::Starved(w) => panic!("{w}"),
        }
    }
}
