//! Lock-order graph pass: acyclicity certificates and cycle witnesses.
//!
//! The lock-order graph has one node per [`ClassSpec`] and one directed
//! edge per [`SiteSpec`] with a held class (held → acquires). The
//! classic result: if every execution acquires locks consistently with
//! a partial order — i.e. the graph is acyclic — hold-and-wait cycles
//! are impossible, so the protocol cannot deadlock. The pass proves
//! acyclicity with a Kahn topological sort and then *cross-validates*
//! the certificate by exhaustively model-checking the protocol's
//! acquisition paths with the PR 3 interleaving checker ([`crate::mc`]):
//! a certificate the checker contradicts is a bug in this pass and
//! panics rather than shipping.
//!
//! A cyclic graph instead produces a [`DeadlockWitness`]: the cycle's
//! classes, the source-anchored sites realising each edge, and the
//! *minimal schedule* — thread `i` acquires cycle class `i` then blocks
//! on class `i+1 (mod k)`, so running each thread for exactly one step
//! (`[0, 1, …, k−1]`) lands every thread in a hold-and-wait. The
//! witness is replayed through [`LockSeqModel`] and the checker must
//! independently report [`ViolationKind::Deadlock`] before `replays` is
//! set; an unreplayable witness fails the section.
//!
//! The model conservatively treats every class as a single-owner mutex
//! even when `slots > 1`: fewer slots means strictly more blocking, so
//! an acyclicity proof under the 1-slot abstraction covers the real
//! multi-slot resource, while a cycle found under it is realisable by
//! saturating the slots.

use super::{ClassSpec, Protocol, SiteSpec};
use crate::mc::{check, Model, ViolationKind};
use crate::MC_STATE_BUDGET;
use cumf_core::faults::fnv1a64;

/// Most virtual threads a cross-validation run spawns (each path is
/// duplicated so two threads contend on the same acquisition sequence;
/// capped to keep the state space far below [`MC_STATE_BUDGET`]).
const MAX_MC_THREADS: usize = 6;

/// Outcome of the order pass on one protocol.
#[derive(Debug, Clone)]
pub enum OrderVerdict {
    /// Graph is acyclic: certificate with the topological order.
    Acyclic(DeadlockCert),
    /// Graph has a cycle: concrete, replayable witness.
    Cyclic(DeadlockWitness),
}

/// Acyclicity certificate for one protocol's lock-order graph.
#[derive(Debug, Clone)]
pub struct DeadlockCert {
    /// Protocol name.
    pub protocol: &'static str,
    /// Class names, graph-node order.
    pub classes: Vec<String>,
    /// Held → acquires edges (class indices).
    pub edges: Vec<(usize, usize)>,
    /// A witness topological order (class indices).
    pub topo: Vec<usize>,
    /// The same order as class names, for reports.
    pub topo_names: Vec<String>,
    /// States the cross-validating model check explored (0 when the
    /// protocol has no held edges and the check is vacuous).
    pub mc_states: usize,
    /// FNV-1a digest of the certificate content.
    pub digest: u64,
}

impl std::fmt::Display for DeadlockCert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} classes, {} order edges, topo [{}], {} mc states, digest {:016x}",
            self.protocol,
            self.classes.len(),
            self.edges.len(),
            self.topo_names.join(" < "),
            self.mc_states,
            self.digest
        )
    }
}

/// A concrete deadlock counterexample: a lock-order cycle plus the
/// minimal schedule realising it as a hold-and-wait.
#[derive(Debug, Clone)]
pub struct DeadlockWitness {
    /// Protocol name.
    pub protocol: &'static str,
    /// Cycle class names, in acquisition order (`cycle[i]` is held while
    /// `cycle[(i+1) % len]` is requested).
    pub cycle: Vec<String>,
    /// Source anchors of the sites realising each cycle edge.
    pub site_anchors: Vec<String>,
    /// Minimal schedule: thread ids to run, one step each, to reach the
    /// dead state in [`LockSeqModel::cycle_threads`].
    pub schedule: Vec<usize>,
    /// True when the schedule replays to a dead state *and* the
    /// exhaustive checker independently reports a deadlock.
    pub replays: bool,
    /// The checker's own violation description.
    pub mc_detail: String,
}

impl std::fmt::Display for DeadlockWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut ring = self.cycle.clone();
        if let Some(first) = ring.first().cloned() {
            ring.push(first);
        }
        write!(
            f,
            "{}: lock-order cycle {} — schedule {:?} {} (sites: {})",
            self.protocol,
            ring.join(" → "),
            self.schedule,
            if self.replays {
                "replays to a dead state in the model checker"
            } else {
                "DOES NOT replay"
            },
            self.site_anchors.join("; ")
        )
    }
}

/// A lock-acquisition transition system for [`crate::mc::check`]: each
/// thread acquires its `seqs[t]` classes in order, then releases them
/// in reverse (two-phase locking, the worst case for hold-and-wait).
///
/// Program counter semantics for thread `t` with `m = seqs[t].len()`:
/// `pc < m` acquires `seqs[t][pc]` (enabled iff unowned); `m ≤ pc < 2m`
/// releases `seqs[t][2m−1−pc]` (always enabled); `pc == 2m` is done.
#[derive(Debug)]
pub struct LockSeqModel {
    name: &'static str,
    classes: usize,
    seqs: Vec<Vec<usize>>,
}

/// Global state of [`LockSeqModel`]: per-class owner and per-thread pc.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockSeqState {
    /// Owning thread per class, `None` when free.
    pub owner: Vec<Option<u8>>,
    /// Per-thread program counter.
    pub pc: Vec<u8>,
}

impl LockSeqModel {
    /// A model over explicit acquisition sequences.
    pub fn new(name: &'static str, classes: usize, seqs: Vec<Vec<usize>>) -> Self {
        assert!(seqs.len() <= u8::MAX as usize);
        for seq in &seqs {
            assert!(2 * seq.len() <= u8::MAX as usize);
            assert!(seq.iter().all(|&c| c < classes));
        }
        LockSeqModel {
            name,
            classes,
            seqs,
        }
    }

    /// The canonical cycle realisation: thread `i` acquires `cycle[i]`
    /// then `cycle[(i+1) % k]`.
    pub fn cycle_threads(name: &'static str, classes: usize, cycle: &[usize]) -> Self {
        let k = cycle.len();
        let seqs = (0..k).map(|i| vec![cycle[i], cycle[(i + 1) % k]]).collect();
        Self::new(name, classes, seqs)
    }

    /// Replays `schedule` from the initial state, returning the state it
    /// reaches; panics if a scheduled thread is not enabled (the
    /// schedule would be invalid, not merely unlucky).
    pub fn replay(&self, schedule: &[usize]) -> LockSeqState {
        let mut s = self.initial();
        for &tid in schedule {
            assert!(
                self.enabled(&s, tid),
                "invalid witness schedule: thread {tid} not enabled"
            );
            s = self.step(&s, tid);
        }
        s
    }

    /// True when `state` is dead: nobody can step, somebody is unfinished.
    pub fn is_dead(&self, state: &LockSeqState) -> bool {
        let n = self.seqs.len();
        (0..n).all(|t| !self.enabled(state, t)) && (0..n).any(|t| !self.done(state, t))
    }
}

impl Model for LockSeqModel {
    type State = LockSeqState;

    fn name(&self) -> &'static str {
        self.name
    }

    fn threads(&self) -> usize {
        self.seqs.len()
    }

    fn initial(&self) -> LockSeqState {
        LockSeqState {
            owner: vec![None; self.classes],
            pc: vec![0; self.seqs.len()],
        }
    }

    fn enabled(&self, s: &LockSeqState, t: usize) -> bool {
        let m = self.seqs[t].len();
        let pc = s.pc[t] as usize;
        if pc < m {
            s.owner[self.seqs[t][pc]].is_none()
        } else {
            pc < 2 * m
        }
    }

    fn step(&self, s: &LockSeqState, t: usize) -> LockSeqState {
        let mut n = s.clone();
        let m = self.seqs[t].len();
        let pc = s.pc[t] as usize;
        if pc < m {
            let c = self.seqs[t][pc];
            debug_assert!(n.owner[c].is_none());
            n.owner[c] = Some(t as u8);
        } else {
            let c = self.seqs[t][2 * m - 1 - pc];
            debug_assert_eq!(n.owner[c], Some(t as u8));
            n.owner[c] = None;
        }
        n.pc[t] += 1;
        n
    }

    fn done(&self, s: &LockSeqState, t: usize) -> bool {
        s.pc[t] as usize == 2 * self.seqs[t].len()
    }

    fn invariant(&self, _s: &LockSeqState) -> Result<(), String> {
        Ok(())
    }
}

/// Every maximal acquisition path through the protocol: start at each
/// entry site (`held == None`) and follow held-edges. Only meaningful
/// on an acyclic site graph (the order pass calls this after the topo
/// proof), where every path is finite.
fn protocol_paths(p: &Protocol) -> Vec<Vec<usize>> {
    fn extend(p: &Protocol, path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        let last = *path.last().expect("path starts non-empty");
        let mut extended = false;
        for site in p.sites.iter().filter(|s| s.held == Some(last)) {
            extended = true;
            path.push(site.acquires);
            extend(p, path, out);
            path.pop();
        }
        if !extended {
            out.push(path.clone());
        }
    }
    let mut out = Vec::new();
    for site in p.sites.iter().filter(|s| s.held.is_none()) {
        let mut path = vec![site.acquires];
        extend(p, &mut path, &mut out);
    }
    out
}

/// DFS cycle search over the class graph; returns the cycle as class
/// indices in acquisition order, if any.
fn find_cycle(classes: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut adj = vec![Vec::new(); classes];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    // 0 = white, 1 = on stack, 2 = finished.
    let mut color = vec![0u8; classes];
    let mut stack = Vec::new();
    fn dfs(
        v: usize,
        adj: &[Vec<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color[v] = 1;
        stack.push(v);
        for &w in &adj[v] {
            if color[w] == 1 {
                let start = stack.iter().position(|&x| x == w).expect("on stack");
                return Some(stack[start..].to_vec());
            }
            if color[w] == 0 {
                if let Some(c) = dfs(w, adj, color, stack) {
                    return Some(c);
                }
            }
        }
        stack.pop();
        color[v] = 2;
        None
    }
    (0..classes).find_map(|v| {
        if color[v] == 0 {
            dfs(v, &adj, &mut color, &mut stack)
        } else {
            None
        }
    })
}

/// Kahn topological sort; the graph is known acyclic when called.
fn topo_sort(classes: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut indeg = vec![0usize; classes];
    let mut adj = vec![Vec::new(); classes];
    for &(a, b) in edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut ready: Vec<usize> = (0..classes).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(classes);
    while let Some(v) = ready.pop() {
        order.push(v);
        for &w in &adj[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.push(w);
            }
        }
    }
    assert_eq!(order.len(), classes, "topo_sort called on a cyclic graph");
    order
}

fn cert_digest(
    protocol: &str,
    classes: &[ClassSpec],
    edges: &[(usize, usize)],
    topo: &[usize],
) -> u64 {
    let mut text = String::new();
    text.push_str(protocol);
    for c in classes {
        text.push_str(&format!("|{}/{}/{}", c.name, c.slots, c.max_waiters));
    }
    for &(a, b) in edges {
        text.push_str(&format!("|{a}->{b}"));
    }
    for &t in topo {
        text.push_str(&format!("|t{t}"));
    }
    fnv1a64(text.as_bytes())
}

/// Runs the order pass: cycle search, then either the topological
/// certificate (cross-validated by the model checker) or a replayed
/// cycle witness.
pub fn analyze_order(p: &Protocol) -> OrderVerdict {
    let edges: Vec<(usize, usize)> = p
        .sites
        .iter()
        .filter_map(|s| s.held.map(|h| (h, s.acquires)))
        .collect();

    if let Some(cycle) = find_cycle(p.classes.len(), &edges) {
        return OrderVerdict::Cyclic(witness_for_cycle(p, &cycle));
    }

    let topo = topo_sort(p.classes.len(), &edges);
    // Cross-validate with the interleaving checker: duplicate every
    // acquisition path so two threads contend on it, capped to keep the
    // state space tractable. Entry-only protocols (no held edges) have
    // nothing to hold-and-wait on; the check is vacuous there.
    let mc_states = if edges.is_empty() {
        0
    } else {
        let mut seqs: Vec<Vec<usize>> = Vec::new();
        for path in protocol_paths(p) {
            seqs.push(path.clone());
            seqs.push(path);
            if seqs.len() >= MAX_MC_THREADS {
                break;
            }
        }
        seqs.truncate(MAX_MC_THREADS);
        let model = LockSeqModel::new("lock-order-cross-check", p.classes.len(), seqs);
        let out = check(&model, MC_STATE_BUDGET);
        assert!(
            out.verified(),
            "{}: order certificate contradicted by model checker: {out}",
            p.name
        );
        out.states
    };

    let topo_names = topo.iter().map(|&c| p.classes[c].name.clone()).collect();
    let digest = cert_digest(p.name, &p.classes, &edges, &topo);
    OrderVerdict::Acyclic(DeadlockCert {
        protocol: p.name,
        classes: p.classes.iter().map(|c| c.name.clone()).collect(),
        edges,
        topo,
        topo_names,
        mc_states,
        digest,
    })
}

/// Builds and validates the witness for a detected cycle.
fn witness_for_cycle(p: &Protocol, cycle: &[usize]) -> DeadlockWitness {
    let k = cycle.len();
    // The site realising each cycle edge, for source anchors.
    let site_for = |h: usize, a: usize| -> &SiteSpec {
        p.sites
            .iter()
            .find(|s| s.held == Some(h) && s.acquires == a)
            .expect("cycle edge must come from a site")
    };
    let site_anchors = (0..k)
        .map(|i| site_for(cycle[i], cycle[(i + 1) % k]).anchor.clone())
        .collect();

    let model = LockSeqModel::cycle_threads("deadlock-witness", p.classes.len(), cycle);
    let schedule: Vec<usize> = (0..k).collect();
    let dead = model.is_dead(&model.replay(&schedule));
    let out = check(&model, MC_STATE_BUDGET);
    let mc_deadlock = matches!(&out.violation, Some(v) if v.kind == ViolationKind::Deadlock);
    let mc_detail = match &out.violation {
        Some(v) => v.to_string(),
        None => "checker found no violation".to_string(),
    };

    DeadlockWitness {
        protocol: p.name,
        cycle: cycle.iter().map(|&c| p.classes[c].name.clone()).collect(),
        site_anchors,
        schedule,
        replays: dead && mc_deadlock,
        mc_detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock::{ClassSpec, SiteSpec};

    fn class(name: &str) -> ClassSpec {
        ClassSpec {
            name: name.to_string(),
            anchor: "test".to_string(),
            slots: 1,
            hold_s: 1e-6,
            max_waiters: 3,
        }
    }

    fn site(held: Option<usize>, acquires: usize) -> SiteSpec {
        SiteSpec {
            held,
            acquires,
            anchor: "test::site".to_string(),
            note: String::new(),
        }
    }

    fn two_class(sites: Vec<SiteSpec>) -> Protocol {
        Protocol {
            name: "test/two-class",
            classes: vec![class("A"), class("B")],
            sites,
            watchdog: None,
            retry: None,
        }
    }

    #[test]
    fn ascending_order_certifies_with_mc_cross_check() {
        let p = two_class(vec![site(None, 0), site(Some(0), 1)]);
        match analyze_order(&p) {
            OrderVerdict::Acyclic(cert) => {
                assert_eq!(cert.edges, vec![(0, 1)]);
                assert!(cert.mc_states > 0, "cross-check must actually run");
                assert_ne!(cert.digest, 0);
            }
            OrderVerdict::Cyclic(w) => panic!("spurious cycle: {w}"),
        }
    }

    #[test]
    fn abba_cycle_yields_replayable_witness() {
        let p = two_class(vec![
            site(None, 0),
            site(Some(0), 1),
            site(None, 1),
            site(Some(1), 0),
        ]);
        match analyze_order(&p) {
            OrderVerdict::Cyclic(w) => {
                assert_eq!(w.cycle.len(), 2);
                assert_eq!(w.schedule, vec![0, 1]);
                assert!(w.replays, "{w}");
                assert!(w.mc_detail.contains("deadlock"), "{}", w.mc_detail);
            }
            OrderVerdict::Acyclic(c) => panic!("missed ABBA cycle: {c}"),
        }
    }

    #[test]
    fn entry_only_protocol_is_vacuously_acyclic() {
        let p = two_class(vec![site(None, 0), site(None, 1)]);
        match analyze_order(&p) {
            OrderVerdict::Acyclic(cert) => {
                assert!(cert.edges.is_empty());
                assert_eq!(cert.mc_states, 0, "no held edges → vacuous check");
            }
            OrderVerdict::Cyclic(w) => panic!("spurious cycle: {w}"),
        }
    }

    #[test]
    fn three_cycle_witness_has_three_thread_schedule() {
        let p = Protocol {
            name: "test/three-cycle",
            classes: vec![class("A"), class("B"), class("C")],
            sites: vec![
                site(None, 0),
                site(Some(0), 1),
                site(Some(1), 2),
                site(Some(2), 0),
            ],
            watchdog: None,
            retry: None,
        };
        match analyze_order(&p) {
            OrderVerdict::Cyclic(w) => {
                assert_eq!(w.cycle.len(), 3);
                assert_eq!(w.schedule, vec![0, 1, 2]);
                assert!(w.replays, "{w}");
                assert_eq!(w.site_anchors.len(), 3);
            }
            OrderVerdict::Acyclic(c) => panic!("missed 3-cycle: {c}"),
        }
    }

    #[test]
    fn digest_is_sensitive_to_the_order() {
        let a = two_class(vec![site(None, 0), site(Some(0), 1)]);
        let mut b = two_class(vec![site(None, 0), site(Some(0), 1)]);
        b.classes[1].max_waiters = 7;
        let (OrderVerdict::Acyclic(ca), OrderVerdict::Acyclic(cb)) =
            (analyze_order(&a), analyze_order(&b))
        else {
            panic!("both must certify");
        };
        assert_ne!(ca.digest, cb.digest);
    }

    #[test]
    fn lock_seq_model_replay_reaches_the_dead_state() {
        let m = LockSeqModel::cycle_threads("t", 2, &[0, 1]);
        let s = m.replay(&[0, 1]);
        assert!(m.is_dead(&s));
    }
}
