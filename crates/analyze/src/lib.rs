//! # cumf-analyze — static & dynamic analyzers for the cuMF_SGD reproduction
//!
//! Offline analyzers over the engine layers in `cumf-core` and the cost
//! models in `cumf-gpu-sim`, all dependency-free:
//!
//! * [`kir`] — a typed kernel IR into which the SGD update and the
//!   LIBMF/BIDMach baseline inner loops are lifted, with three static
//!   passes: a memory-traffic abstract interpreter certifying Eq. 5's
//!   bytes-per-update against the cost model **and** the DES executor's
//!   charged bytes ([`kir::traffic`]), a per-warp cache-line footprint
//!   pass validated against the simulator's line accounting
//!   ([`kir::coalesce`]), and an FP16 range/error pass proving binary16
//!   overflow-freedom or producing a concrete witness
//!   ([`kir::precision`]).
//! * [`lint`] — a source-level determinism lint forbidding wall clocks,
//!   real sleeps/durations, and hash-ordered collections in the
//!   deterministic crates (and `cumf-bench`, minus its reviewed
//!   wall-clock reads), with stale-allowlist detection.
//! * [`deadlock`] — a static deadlock & liveness certifier: every
//!   shipped blocking protocol (stripe locking in `cumf-core`, the
//!   supervisor watchdog, the DES resource configurations) is modelled
//!   in a small acquisition-order IR; a lock-order graph pass proves
//!   acyclicity (topological certificate, cross-validated by the
//!   interleaving checker) or emits a replayable cycle witness, and a
//!   liveness pass bounds every waiter's grant under the FIFO waiter
//!   contract and checks watchdog timeouts strictly dominate the
//!   longest certified wait chain.
//!
//! * [`stale`] — a static staleness & asynchrony certifier: every
//!   lock-free update path (`solver-hogwild`, the threaded
//!   batch-Hogwild executor, the striped-epoch and two-row lock paths,
//!   the partitioned multi-GPU grid) is lifted from the
//!   `cumf_core::concurrent::UPDATE_PATHS` in-source annotations into
//!   an asynchrony IR; the worst-case per-row staleness bound τ is
//!   derived, exhaustively validated over all interleavings with the
//!   model checker, and the lr·τ safety condition certified — with
//!   three broken twins (deleted stripe locks, removed epoch barrier,
//!   overlapping grid blocks) each refuted by a replayable witness.
//! * [`prover`] — drives the schedule **conflict prover**
//!   (`cumf_core::sched::conflict`) over randomized datasets: the
//!   paper's conflict-free-by-construction schedules (wavefront-update
//!   §5.2, LIBMF global table) must certify, and batch-Hogwild! (§5.1)
//!   must be refuted with a concrete collision witness on a 1×1 matrix.
//! * [`mc`] + [`models`] — a loom-style **interleaving model checker**:
//!   exhaustive DFS over all thread interleavings of small transition
//!   systems modelling the canonical P-then-Q stripe-lock order,
//!   torn-row protection under `StripedFactors`, `AtomicFactors`'
//!   whole-word cells, and the batch-Hogwild! work-claiming counter —
//!   each paired with a deliberately broken twin the checker must refute.
//! * `sanitizer` (compiled with the `sanitize` feature) — drivers for
//!   the Eraser-style **dynamic lockset
//!   sanitizer** (the feature forwards to
//!   `cumf-core/sanitize`): the lock-striped executor must produce zero
//!   reports, the lock-free Hogwild! executor must produce at least one.
//!
//! [`run_all`] runs every analyzer and aggregates pass/fail per section;
//! the `cumf analyze` CLI subcommand and the CI gate are thin wrappers
//! over it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod kir;
pub mod lint;
pub mod mc;
pub mod models;
pub mod prover;
#[cfg(feature = "sanitize")]
pub mod sanitizer;
pub mod stale;

pub use deadlock::{
    DeadlockCert, DeadlockWitness, LivenessCert, ProtocolOutcome, StarvationWitness,
};
pub use mc::{check, CheckOutcome, Model, Violation, ViolationKind};
pub use models::{CellModel, LockOrderModel, RowModel, WorkClaimModel};
pub use prover::ProverCase;
pub use stale::{PathOutcome, ShippedPath, StaleModel, StalenessWitness};

/// State budget for each model-checker run; every model in [`models`] is
/// orders of magnitude below this.
pub const MC_STATE_BUDGET: usize = 1_000_000;

/// One analyzer section's aggregated outcome.
#[derive(Debug, Clone)]
pub struct SectionResult {
    /// Section name (`prover`, `model-check`, `sanitize`).
    pub name: &'static str,
    /// Whether every case in the section passed.
    pub pass: bool,
    /// Whether the section actually ran (the sanitizer section is
    /// skipped when the `sanitize` feature is off).
    pub ran: bool,
    /// Per-case detail lines.
    pub lines: Vec<String>,
}

impl std::fmt::Display for SectionResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = if !self.ran {
            "SKIP"
        } else if self.pass {
            "PASS"
        } else {
            "FAIL"
        };
        writeln!(f, "== {} [{status}] ==", self.name)?;
        for line in &self.lines {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// The whole analysis campaign's outcome.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// One entry per analyzer section.
    pub sections: Vec<SectionResult>,
}

impl AnalysisReport {
    /// True when every section that ran passed.
    pub fn pass(&self) -> bool {
        self.sections.iter().all(|s| !s.ran || s.pass)
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.sections {
            write!(f, "{s}")?;
        }
        write!(f, "analysis: {}", if self.pass() { "PASS" } else { "FAIL" })
    }
}

/// Runs the prover campaign as a section.
pub fn prover_section(seed: u64) -> SectionResult {
    let cases = prover::run(seed);
    SectionResult {
        name: "prover",
        pass: cases.iter().all(|c| c.pass()),
        ran: true,
        lines: cases.iter().map(|c| c.to_string()).collect(),
    }
}

/// Runs every interleaving model (real protocol + broken twin) as a
/// section. The real protocols must verify exhaustively; each broken
/// twin must produce its specific counterexample — a checker that cannot
/// refute the twins proves nothing about the protocols.
pub fn model_check_section() -> SectionResult {
    // (outcome, pass condition description, did it match expectations)
    let mut lines = Vec::new();
    let mut pass = true;
    let mut record = |out: CheckOutcome, ok: bool, expectation: &str| {
        let status = if ok { "ok" } else { "FAIL" };
        lines.push(format!("[{status}] {out} — expected {expectation}"));
        pass &= ok;
    };

    let out = check(&LockOrderModel::canonical(), MC_STATE_BUDGET);
    record(out.clone(), out.verified(), "deadlock-free");
    let out = check(&LockOrderModel::reversed(), MC_STATE_BUDGET);
    record(
        out.clone(),
        matches!(&out.violation, Some(v) if v.kind == ViolationKind::Deadlock),
        "ABBA deadlock counterexample",
    );

    let out = check(&RowModel::locked(), MC_STATE_BUDGET);
    record(
        out.clone(),
        out.verified() && !out.probe_reached,
        "no torn row reachable",
    );
    let out = check(&RowModel::unlocked(), MC_STATE_BUDGET);
    record(
        out.clone(),
        out.probe_reached,
        "torn row reachable without the lock",
    );

    let out = check(&CellModel::atomic(), MC_STATE_BUDGET);
    record(
        out.clone(),
        out.verified() && !out.probe_reached,
        "no torn cell reachable",
    );
    let out = check(&CellModel::split(), MC_STATE_BUDGET);
    record(
        out.clone(),
        out.probe_reached,
        "torn cell reachable with split stores",
    );

    for (n, batch, threads) in [(4, 1, 2), (6, 2, 3), (5, 2, 2)] {
        let out = check(&WorkClaimModel::atomic(n, batch, threads), MC_STATE_BUDGET);
        record(out.clone(), out.verified(), "claims disjoint and complete");
    }
    let out = check(&WorkClaimModel::split(4, 1, 2), MC_STATE_BUDGET);
    record(
        out.clone(),
        matches!(&out.violation, Some(v) if v.kind == ViolationKind::Invariant),
        "double-claim counterexample",
    );

    SectionResult {
        name: "model-check",
        pass,
        ran: true,
        lines,
    }
}

/// Runs the static deadlock & liveness certifier as a section: every
/// shipped blocking protocol must come back `Certified` (acyclic order,
/// bounded waits, dominating watchdog), and every seeded broken twin
/// must be refuted with a concrete, replayable witness.
pub fn deadlock_section() -> SectionResult {
    deadlock::run_section()
}

/// Runs the static staleness & asynchrony certifier as a section: every
/// shipped update path must certify (finite τ, exhaustively validated
/// by the interleaving checker, lr·τ condition under the reference
/// schedule), and every broken twin must be refuted with a replayable
/// [`StalenessWitness`].
pub fn staleness_section() -> SectionResult {
    stale::run_section()
}

/// Grid the cost cross-check runs over: the acceptance matrix of
/// feature dimensions × both storage precisions.
pub const COST_CHECK_KS: [u32; 4] = [16, 31, 64, 128];

/// Runs the kernel-IR cost certification as a section: the three-way
/// kernel ↔ cost-model ↔ simulator agreement at every `(k, precision)`
/// in [`COST_CHECK_KS`], plus the broken-twin refutation (a checker
/// that cannot refute a wrong constant proves nothing).
pub fn cost_section() -> SectionResult {
    use kir::traffic::{broken_twin_bytes, cross_check, cross_check_with_model};
    use kir::Dtype;
    let mut lines = Vec::new();
    let mut pass = true;
    for k in COST_CHECK_KS {
        for elem in [Dtype::F32, Dtype::F16] {
            let c = cross_check(k, elem, cumf_gpu_sim::RatingAccess::Streamed);
            pass &= c.certified();
            lines.push(c.to_string());
        }
    }
    // The broken twin forgot the q-row write-back; it must be refuted
    // with the concrete −k·sizeof(elem) delta.
    let k = 64;
    let real = cumf_gpu_sim::SgdUpdateCost::cpu_f32(k);
    let twin = cross_check_with_model(
        k,
        Dtype::F32,
        cumf_gpu_sim::RatingAccess::Streamed,
        broken_twin_bytes(k, Dtype::F32),
        real.flops(),
        real,
    );
    let refuted = !twin.certified() && twin.verdict.delta() == -(i64::from(k) * 4);
    pass &= refuted;
    lines.push(format!(
        "[{}] broken twin: {twin}",
        if refuted { "ok" } else { "FAIL" }
    ));
    SectionResult {
        name: "cost",
        pass,
        ran: true,
        lines,
    }
}

/// Runs the coalescing pass as a section: the SGD update lift must be
/// fully coalesced at every acceptance `k` in both precisions, and the
/// BIDMach column-major lift must be flagged with its line expansion.
pub fn coalesce_section() -> SectionResult {
    use kir::coalesce::analyze_coalescing;
    use kir::{lift_bidmach_inner, lift_sgd_update, Dtype};
    let line = 128; // both paper GPUs: 128 B L1 lines
    let mut lines = Vec::new();
    let mut pass = true;
    for k in COST_CHECK_KS {
        for elem in [Dtype::F32, Dtype::F16] {
            let r = analyze_coalescing(&lift_sgd_update(k, elem), line);
            let ok = r.fully_coalesced();
            pass &= ok;
            lines.push(format!("[{}] {r}", if ok { "ok" } else { "FAIL" }));
        }
    }
    let r = analyze_coalescing(&lift_bidmach_inner(64, 4096), line);
    let flagged = !r.fully_coalesced() && r.expansion() > 30.0;
    pass &= flagged;
    lines.push(format!(
        "[{}] {r} — expected uncoalesced",
        if flagged { "ok" } else { "FAIL" }
    ));
    SectionResult {
        name: "coalesce",
        pass,
        ran: true,
        lines,
    }
}

/// Runs the FP16 range/error pass as a section: the conservative
/// config must be *proven* safe, the adversarial LR spike must be
/// *refuted* with a concrete overflow witness, and the aggressive
/// paper regime must come back honestly `Unknown`.
pub fn precision_section() -> SectionResult {
    use kir::precision::{analyze_precision, PrecisionConfig, PrecisionVerdict};
    let mut lines = Vec::new();
    let mut pass = true;
    let mut record = |label: &str, v: &PrecisionVerdict, ok: bool| {
        lines.push(format!("[{}] {label}: {v}", if ok { "ok" } else { "FAIL" }));
        pass &= ok;
    };
    for k in [16, 64, 128] {
        let v = analyze_precision(&PrecisionConfig::safe_default(k));
        let ok = v.proven();
        record(&format!("safe_default k={k}"), &v, ok);
    }
    let v = analyze_precision(&PrecisionConfig::adversarial_lr_spike(64));
    let ok = matches!(v, PrecisionVerdict::Refuted(_));
    record("adversarial_lr_spike k=64", &v, ok);
    let v = analyze_precision(&PrecisionConfig::paper_aggressive(64));
    let ok = matches!(v, PrecisionVerdict::Unknown { .. });
    record("paper_aggressive k=64", &v, ok);
    SectionResult {
        name: "precision",
        pass,
        ran: true,
        lines,
    }
}

/// Runs the determinism lint as a section. When the workspace sources
/// are not on disk (an installed binary outside the repo) the section
/// reports `SKIP` rather than a vacuous pass.
pub fn lint_section() -> SectionResult {
    let report = lint::lint_workspace();
    if report.files_scanned == 0 {
        return SectionResult {
            name: "lint",
            pass: true,
            ran: false,
            lines: vec!["skipped: workspace sources not found".to_string()],
        };
    }
    let mut lines = vec![format!(
        "scanned {} files across cumf-core, cumf-gpu-sim, cumf-des, cumf-bench, cumf-serve",
        report.files_scanned
    )];
    lines.extend(report.findings.iter().map(|f| f.to_string()));
    SectionResult {
        name: "lint",
        pass: report.clean(),
        ran: true,
        lines,
    }
}

/// Runs the sanitizer drivers as a section (skipped without the
/// `sanitize` feature).
pub fn sanitize_section(seed: u64) -> SectionResult {
    #[cfg(feature = "sanitize")]
    {
        let cases = sanitizer::run(seed);
        SectionResult {
            name: "sanitize",
            pass: cases.iter().all(|c| c.pass()),
            ran: true,
            lines: cases.iter().map(|c| c.to_string()).collect(),
        }
    }
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = seed;
        SectionResult {
            name: "sanitize",
            pass: true,
            ran: false,
            lines: vec![
                "skipped: rebuild with `--features sanitize` to run the lockset sanitizer"
                    .to_string(),
            ],
        }
    }
}

/// Runs every analyzer and aggregates the outcome.
pub fn run_all(seed: u64) -> AnalysisReport {
    AnalysisReport {
        sections: vec![
            prover_section(seed),
            model_check_section(),
            deadlock_section(),
            staleness_section(),
            cost_section(),
            coalesce_section(),
            precision_section(),
            lint_section(),
            sanitize_section(seed),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_campaign_passes() {
        let report = run_all(42);
        assert!(report.pass(), "{report}");
        assert_eq!(report.sections.len(), 9);
        // Rendered report names every section.
        let text = report.to_string();
        for name in [
            "prover",
            "model-check",
            "deadlock",
            "staleness",
            "cost",
            "coalesce",
            "precision",
            "lint",
            "sanitize",
        ] {
            assert!(text.contains(name), "missing section {name}:\n{text}");
        }
    }

    #[test]
    fn a_failing_section_fails_the_report() {
        let mut report = run_all(7);
        report.sections[0].pass = false;
        assert!(!report.pass());
        assert!(report.to_string().contains("FAIL"));
    }
}
