//! Driver for the schedule conflict prover (`cumf_core::sched::conflict`).
//!
//! The prover itself lives in `cumf-core` so the solver can gate
//! `ExecMode::Sequential` on certificates; this module supplies the
//! *analysis campaign*: randomized datasets, one certification run per
//! schedule family, and the expected verdict for each. The paper's two
//! conflict-free-by-construction schedules (wavefront-update §5.2 and
//! LIBMF's global table) must come back [`Verdict::Certified`]; the
//! batch-Hogwild! schedule (§5.1), which only *tolerates* conflicts, must
//! come back [`Verdict::Refuted`] with a concrete witness when every
//! sample collides on a 1×1 matrix.

use cumf_core::sched::{certify, BatchHogwildStream, LibmfTableStream, Verdict, WavefrontStream};
use cumf_data::coo::CooMatrix;
use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

/// One prover run: which schedule, what we expected, what the prover said.
#[derive(Debug, Clone)]
pub struct ProverCase {
    /// Schedule family under test.
    pub schedule: String,
    /// Whether conflict-freedom was expected (the paper's claim).
    pub expect_certified: bool,
    /// The prover's verdict.
    pub verdict: Verdict,
}

impl ProverCase {
    /// The case passes when the verdict matches the paper's claim.
    pub fn pass(&self) -> bool {
        self.verdict.is_certified() == self.expect_certified
    }
}

impl std::fmt::Display for ProverCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = if self.pass() { "ok" } else { "FAIL" };
        write!(f, "[{status}] {}: ", self.schedule)?;
        match (&self.verdict, self.expect_certified) {
            (Verdict::Certified(cert), true) => write!(f, "certified — {cert}"),
            (Verdict::Refuted(w), false) => write!(f, "refuted as expected — witness {w}"),
            (Verdict::Certified(cert), false) => {
                write!(f, "UNEXPECTEDLY certified ({cert})")
            }
            (Verdict::Refuted(w), true) => write!(f, "UNEXPECTEDLY refuted: witness {w}"),
        }
    }
}

/// Builds an `m`×`n` dataset with `nnz` uniformly random samples.
/// Duplicate coordinates are allowed — they stress the prover harder
/// (a duplicated sample in one round is exactly a conflict).
pub fn random_dataset(m: u32, n: u32, nnz: usize, seed: u64) -> CooMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = CooMatrix::new(m, n);
    for _ in 0..nnz {
        let u = rng.gen_range(0..m);
        let v = rng.gen_range(0..n);
        let r = rng.gen_range(-1.0f32..1.0);
        data.push(u, v, r);
    }
    data
}

/// A generous round bound: every stream in the workspace finishes an
/// epoch well within this (stall-heavy wavefront rounds included).
fn round_bound(data: &CooMatrix, workers: usize) -> u64 {
    ((data.nnz() as u64) + 2) * (workers as u64 + 1) + 64
}

/// Certifies the wavefront-update schedule on `data`.
pub fn certify_wavefront(data: &CooMatrix, workers: usize, seed: u64, epochs: u32) -> Verdict {
    let cols = (2 * workers).max(2).min(data.cols() as usize);
    let mut stream = WavefrontStream::new(data, workers, cols, seed);
    certify(data, &mut stream, epochs, round_bound(data, workers))
}

/// Certifies the LIBMF global-table schedule on `data`.
pub fn certify_libmf(
    data: &CooMatrix,
    workers: usize,
    a: usize,
    seed: u64,
    epochs: u32,
) -> Verdict {
    let mut stream = LibmfTableStream::new(data, workers, a, seed);
    certify(data, &mut stream, epochs, round_bound(data, workers))
}

/// Runs batch-Hogwild! against a dataset where *every* update touches
/// the same P row and Q column (a 1×1 matrix), forcing a conflict in the
/// first multi-worker round. The prover must refute with a witness.
pub fn refute_batch_hogwild(workers: usize, batch: usize, samples: usize) -> Verdict {
    let mut data = CooMatrix::new(1, 1);
    for i in 0..samples {
        data.push(0, 0, (i % 3) as f32 - 1.0);
    }
    let mut stream = BatchHogwildStream::new(data.nnz(), workers, batch);
    certify(&data, &mut stream, 1, round_bound(&data, workers))
}

/// The full prover campaign over randomized datasets derived from `seed`.
///
/// Two randomized sizes per conflict-free schedule (different worker
/// counts and shapes), plus the forced-collision refutation. All cases
/// must [`ProverCase::pass`].
pub fn run(seed: u64) -> Vec<ProverCase> {
    let mut cases = Vec::new();

    for (i, (m, n, nnz, workers)) in [(24, 32, 400, 3), (60, 48, 1500, 4)]
        .into_iter()
        .enumerate()
    {
        let data = random_dataset(m, n, nnz, seed.wrapping_add(i as u64));
        cases.push(ProverCase {
            schedule: format!("wavefront (m={m} n={n} nnz={nnz} workers={workers})"),
            expect_certified: true,
            verdict: certify_wavefront(&data, workers, seed ^ 0x5eed, 2),
        });
        cases.push(ProverCase {
            schedule: format!("libmf-table (m={m} n={n} nnz={nnz} workers={workers})"),
            expect_certified: true,
            verdict: certify_libmf(&data, workers, 2 * workers, seed ^ 0x11bf, 2),
        });
    }

    cases.push(ProverCase {
        schedule: "batch-hogwild (1x1 forced collision, workers=2, batch=4)".to_string(),
        expect_certified: false,
        verdict: refute_batch_hogwild(2, 4, 32),
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_all_pass() {
        for case in run(0xC0FFEE) {
            assert!(case.pass(), "{case}");
        }
    }

    #[test]
    fn forced_collision_witness_names_the_shared_axis() {
        let verdict = refute_batch_hogwild(2, 4, 32);
        let w = verdict.witness().expect("1x1 matrix must refute");
        assert_eq!(w.worker_a, 0);
        assert_eq!(w.worker_b, 1);
        // Every sample is (0, 0): the witness axis is row 0 or col 0.
        let axis = format!("{}", w.axis);
        assert!(axis.contains('0'), "{axis}");
    }
}
