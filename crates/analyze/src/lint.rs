//! Source-level determinism lint for the deterministic crates.
//!
//! The whole workspace's value proposition is *reproducible* simulated
//! training: same seed, same trace, same certificate digests. Two std
//! facilities silently break that promise when they creep into the
//! deterministic paths:
//!
//! * `std::time::Instant` / `std::time::SystemTime` — wall-clock reads
//!   make results machine- and run-dependent (sim time comes from the
//!   DES clock, never the OS);
//! * `std::collections::HashMap` / `HashSet` — iteration order is
//!   randomised per process by `RandomState`, so any result derived
//!   from iterating one is nondeterministic.
//!
//! The lint scans the sources of the deterministic crates
//! (`cumf-core`, `cumf-gpu-sim`, `cumf-des`) for those tokens,
//! skipping `#[cfg(test)]` test modules (tests may hash and time
//! freely) and an explicit allowlist of reviewed uses. It runs in the
//! `cumf analyze --lint` section and therefore in CI, so a regression
//! fails the analyze job with file and line.

use std::path::{Path, PathBuf};

/// Forbidden tokens and why.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "std::time::Instant",
        "wall-clock time in a deterministic path",
    ),
    ("time::Instant", "wall-clock time in a deterministic path"),
    ("SystemTime", "wall-clock time in a deterministic path"),
    ("HashMap", "randomised iteration order (use BTreeMap)"),
    ("HashSet", "randomised iteration order (use BTreeSet)"),
];

/// Reviewed exceptions: `(file suffix, token)` pairs allowed to stay.
///
/// * `engine/mod.rs` reads `Instant` once to report *wall* elapsed time
///   next to sim time in `TrainReport` — informational only, never fed
///   back into training or certificates;
/// * `sanitize.rs` is the feature-gated Eraser-style race sanitizer, a
///   diagnostic tool whose report ordering is explicitly sorted before
///   display.
const ALLOWLIST: &[(&str, &str)] = &[
    ("core/src/engine/mod.rs", "time::Instant"),
    ("core/src/engine/mod.rs", "std::time::Instant"),
    ("core/src/engine/mod.rs", "Instant"),
    ("core/src/sanitize.rs", "HashMap"),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Path of the offending file (as scanned).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The forbidden token found.
    pub token: &'static str,
    /// Why it is forbidden.
    pub reason: &'static str,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: `{}` — {}",
            self.file, self.line, self.token, self.reason
        )
    }
}

fn allowlisted(file: &str, token: &str) -> bool {
    let norm = file.replace('\\', "/");
    ALLOWLIST
        .iter()
        .any(|(suffix, tok)| *tok == token && norm.ends_with(suffix))
}

/// Lints one file's content. Lines at or below the first test-module
/// marker (`#[cfg(test)]` or `mod tests {`) are skipped — tests are
/// allowed to hash and time. Exposed (rather than only file-driven) so
/// the lint logic itself is unit-testable on synthetic sources.
pub fn lint_content(file: &str, content: &str) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("mod tests {") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        for &(token, reason) in FORBIDDEN {
            if line.contains(token) && !allowlisted(file, token) {
                findings.push(LintFinding {
                    file: file.to_string(),
                    line: lineno + 1,
                    token,
                    reason,
                });
                break; // one finding per line is enough
            }
        }
    }
    findings
}

/// The deterministic crates' source roots, relative to the workspace
/// `crates/` directory.
const DETERMINISTIC_CRATES: &[&str] = &["core", "gpu-sim", "des"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scan outcome for the whole workspace.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Files scanned (0 means the sources were not found — e.g. an
    /// installed binary run outside the repo — and the lint abstains).
    pub files_scanned: usize,
    /// All findings, in path order.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// True when the scan ran and found nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints the deterministic crates' sources. The workspace root is
/// located from this crate's manifest dir at compile time, so the lint
/// works from any cwd inside the repo; when the sources are missing
/// (e.g. the binary moved elsewhere) the report has `files_scanned ==
/// 0` and the caller reports a skip rather than a pass.
pub fn lint_workspace() -> LintReport {
    let crates_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let mut files = Vec::new();
    for krate in DETERMINISTIC_CRATES {
        collect_rs_files(&crates_root.join(krate).join("src"), &mut files);
    }
    let mut findings = Vec::new();
    for path in &files {
        if let Ok(content) = std::fs::read_to_string(path) {
            findings.extend(lint_content(&path.display().to_string(), &content));
        }
    }
    LintReport {
        files_scanned: files.len(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wall_clock_and_hash_collections() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\nfn f() {}\n";
        let f = lint_content("crates/core/src/solver.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert!(f[0].token.contains("Instant"));
        assert_eq!(f[1].token, "HashMap");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(lint_content("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn comments_are_exempt() {
        let src = "// never use HashMap here\nfn f() {}\n";
        assert!(lint_content("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlist_is_honoured_per_file() {
        let src = "use std::time::Instant;\n";
        assert!(lint_content("crates/core/src/engine/mod.rs", src).is_empty());
        assert_eq!(
            lint_content("crates/core/src/engine/pipeline.rs", src).len(),
            1
        );
        let hm = "use std::collections::HashMap;\n";
        assert!(lint_content("crates/core/src/sanitize.rs", hm).is_empty());
    }

    #[test]
    fn workspace_sources_are_clean() {
        // The real lint over the real sources: the deterministic crates
        // must stay free of wall clocks and hash collections.
        let report = lint_workspace();
        assert!(
            report.files_scanned > 20,
            "found {} files",
            report.files_scanned
        );
        let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
        assert!(report.clean(), "{rendered:#?}");
    }
}
