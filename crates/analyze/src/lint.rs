//! Source-level determinism lint for the deterministic crates.
//!
//! The whole workspace's value proposition is *reproducible* simulated
//! training: same seed, same trace, same certificate digests. A few std
//! facilities silently break that promise when they creep into the
//! deterministic paths:
//!
//! * `std::time::Instant` / `std::time::SystemTime` — wall-clock reads
//!   make results machine- and run-dependent (sim time comes from the
//!   DES clock, never the OS);
//! * `std::thread::sleep` / `std::time::Duration::from_*` — real sleeps
//!   and wall-clock duration constants in a hot path tie behaviour to
//!   scheduler timing (simulated delays are `Block::Delay` on the sim
//!   clock, and backoff schedules are plain `f64` seconds);
//! * `std::collections::HashMap` / `HashSet` — iteration order is
//!   randomised per process by `RandomState`, so any result derived
//!   from iterating one is nondeterministic.
//!
//! The lint scans the sources of the deterministic crates (`cumf-core`,
//! `cumf-gpu-sim`, `cumf-des`) **and** `cumf-bench`, skipping
//! `#[cfg(test)]` test modules (tests may hash and time freely) and an
//! explicit allowlist of reviewed uses. The bench crate measures real
//! wall time by design, so the wall-clock *read* tokens are exempt
//! there — but sleeps, `Duration` constants, and hash collections are
//! still flagged. Allowlist entries are themselves linted: an entry
//! whose file no longer exists is reported as a finding, so a reviewed
//! exception cannot silently outlive the code it reviewed. The lint
//! runs in the `cumf analyze --lint` section and therefore in CI, so a
//! regression fails the analyze job with file and line.

use std::path::{Path, PathBuf};

/// Forbidden tokens: stable rule id, token, and why. Rule ids are
/// permanent (`CUMF-LINT-001`…): they appear in findings and CI
/// failures, and `cumf analyze --explain <id>` prints the matching
/// entry of [`explain`]. Never renumber — retire an id instead.
const FORBIDDEN: &[(&str, &str, &str)] = &[
    (
        "CUMF-LINT-001",
        "std::time::Instant",
        "wall-clock time in a deterministic path",
    ),
    (
        "CUMF-LINT-002",
        "time::Instant",
        "wall-clock time in a deterministic path",
    ),
    (
        "CUMF-LINT-003",
        "SystemTime",
        "wall-clock time in a deterministic path",
    ),
    (
        "CUMF-LINT-004",
        "thread::sleep",
        "real sleep in a deterministic path (use Block::Delay on the sim clock)",
    ),
    (
        "CUMF-LINT-005",
        "Duration::from_",
        "wall-clock duration in a deterministic path (sim delays come from SimTime)",
    ),
    (
        "CUMF-LINT-006",
        "HashMap",
        "randomised iteration order (use BTreeMap)",
    ),
    (
        "CUMF-LINT-007",
        "HashSet",
        "randomised iteration order (use BTreeSet)",
    ),
];

/// Rule id of the stale-allowlist check (an allowlist entry whose file
/// vanished); it has no source token of its own.
pub const STALE_ALLOWLIST_ID: &str = "CUMF-LINT-008";

/// Long-form documentation per rule id, for `cumf analyze --explain`.
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "CUMF-LINT-001",
        "`std::time::Instant` reads the OS monotonic clock, making any value derived \
         from it machine- and run-dependent. Deterministic paths take time from the \
         DES simulation clock (`SimTime`); the bench crate, which measures real wall \
         time by design, is exempt from this rule (but not from 004-007).",
    ),
    (
        "CUMF-LINT-002",
        "`time::Instant` is the imported-path spelling of CUMF-LINT-001: a wall-clock \
         read in a deterministic path. Use the DES simulation clock instead.",
    ),
    (
        "CUMF-LINT-003",
        "`SystemTime` reads the OS realtime clock (and can jump backwards). Nothing in \
         the deterministic crates may observe it; timestamps in reports come from sim \
         time or are injected by the caller.",
    ),
    (
        "CUMF-LINT-004",
        "`thread::sleep` ties behaviour to OS scheduler timing, destroying run-to-run \
         reproducibility. Simulated delays are `Block::Delay` events on the sim clock; \
         real backoff belongs only in the reviewed supervisor boundary.",
    ),
    (
        "CUMF-LINT-005",
        "`Duration::from_*` constants are wall-clock quantities; deterministic delays \
         and timeouts are plain `f64` seconds interpreted against `SimTime`. The one \
         reviewed exception is the supervisor's real-sleep integration boundary.",
    ),
    (
        "CUMF-LINT-006",
        "`HashMap` iteration order is randomised per process by `RandomState`, so any \
         result derived from iterating one differs across runs. Use `BTreeMap` (or an \
         index-keyed `Vec`) in deterministic paths.",
    ),
    (
        "CUMF-LINT-007",
        "`HashSet` iteration order is randomised per process by `RandomState`. Use \
         `BTreeSet` (or a sorted `Vec`) in deterministic paths.",
    ),
    (
        "CUMF-LINT-008",
        "A lint allowlist entry refers to a file no scanned source matches: the code \
         the exception reviewed is gone, so the exception must be deleted too. Remove \
         the stale `(file suffix, token)` pair from `ALLOWLIST` in \
         crates/analyze/src/lint.rs.",
    ),
];

/// The long-form documentation for a rule id (`CUMF-LINT-001`…), for
/// `cumf analyze --explain <id>`. Case-insensitive; `None` for unknown
/// ids.
pub fn explain(id: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(rule, _)| rule.eq_ignore_ascii_case(id.trim()))
        .map(|&(_, text)| text)
}

/// Every rule id the lint can emit, in catalogue order.
pub fn rule_ids() -> impl Iterator<Item = &'static str> {
    EXPLANATIONS.iter().map(|&(id, _)| id)
}

/// Wall-clock *read* tokens exempt in the bench crate, which times real
/// runs by design. Sleeps, `Duration` constants, and hash collections
/// stay forbidden even there.
const WALL_CLOCK_EXEMPT: &[&str] = &["std::time::Instant", "time::Instant", "SystemTime"];

/// Reviewed exceptions: `(file suffix, token)` pairs allowed to stay.
///
/// * `engine/mod.rs` reads `Instant` once to report *wall* elapsed time
///   next to sim time in `TrainReport` — informational only, never fed
///   back into training or certificates;
/// * `sanitize.rs` is the feature-gated Eraser-style race sanitizer, a
///   diagnostic tool whose report ordering is explicitly sorted before
///   display;
/// * `faults/supervisor.rs` owns the retry backoff schedule. The
///   schedule itself is plain `f64` seconds (deterministic), but the
///   integration boundary that turns it into real sleeps is reviewed to
///   live in this file and nowhere else.
const ALLOWLIST: &[(&str, &str)] = &[
    ("core/src/engine/mod.rs", "time::Instant"),
    ("core/src/engine/mod.rs", "std::time::Instant"),
    ("core/src/engine/mod.rs", "Instant"),
    ("core/src/sanitize.rs", "HashMap"),
    ("core/src/faults/supervisor.rs", "Duration::from_"),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Path of the offending file (as scanned; for a stale-allowlist
    /// finding, the allowlist suffix that matched nothing).
    pub file: String,
    /// 1-based line number (0 for stale-allowlist findings, which have
    /// no source line).
    pub line: usize,
    /// Stable rule id (`CUMF-LINT-001`…), explained by [`explain`].
    pub id: &'static str,
    /// The forbidden token found (or the stale allowlist token).
    pub token: &'static str,
    /// Why it is forbidden.
    pub reason: &'static str,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` — {}",
            self.file, self.line, self.id, self.token, self.reason
        )
    }
}

fn allowlisted(file: &str, token: &str) -> bool {
    let norm = file.replace('\\', "/");
    ALLOWLIST
        .iter()
        .any(|(suffix, tok)| *tok == token && norm.ends_with(suffix))
}

fn in_bench_crate(file: &str) -> bool {
    file.replace('\\', "/").contains("bench/src/")
}

/// Lints one file's content. Lines at or below the first test-module
/// marker (`#[cfg(test)]` or `mod tests {`) are skipped — tests are
/// allowed to hash and time. Exposed (rather than only file-driven) so
/// the lint logic itself is unit-testable on synthetic sources.
pub fn lint_content(file: &str, content: &str) -> Vec<LintFinding> {
    let bench = in_bench_crate(file);
    let mut findings = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("mod tests {") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        for &(id, token, reason) in FORBIDDEN {
            if bench && WALL_CLOCK_EXEMPT.contains(&token) {
                continue;
            }
            if line.contains(token) && !allowlisted(file, token) {
                findings.push(LintFinding {
                    file: file.to_string(),
                    line: lineno + 1,
                    id,
                    token,
                    reason,
                });
                break; // one finding per line is enough
            }
        }
    }
    findings
}

/// Allowlist entries whose file suffix matches none of the scanned
/// files: the reviewed code is gone, so the exception must go too.
/// Reported as findings (line 0) so a stale entry fails the lint.
pub fn stale_allowlist(scanned: &[String]) -> Vec<LintFinding> {
    ALLOWLIST
        .iter()
        .filter(|(suffix, _)| {
            !scanned
                .iter()
                .any(|f| f.replace('\\', "/").ends_with(suffix))
        })
        .map(|&(suffix, token)| LintFinding {
            file: suffix.to_string(),
            line: 0,
            id: STALE_ALLOWLIST_ID,
            token,
            reason: "stale allowlist entry: no scanned file matches this suffix",
        })
        .collect()
}

/// The crates the lint scans, relative to the workspace `crates/`
/// directory: the deterministic crates plus `bench` (wall-clock reads
/// exempt there, everything else still enforced). `serve` is scanned
/// with full strictness: its bit-reproducible latency percentiles
/// depend on the same no-wall-clock, no-hash-iteration discipline.
const SCANNED_CRATES: &[&str] = &["core", "gpu-sim", "des", "bench", "serve"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scan outcome for the whole workspace.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Files scanned (0 means the sources were not found — e.g. an
    /// installed binary run outside the repo — and the lint abstains).
    pub files_scanned: usize,
    /// All findings, in path order (stale-allowlist findings last).
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// True when the scan ran and found nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints the scanned crates' sources. The workspace root is located
/// from this crate's manifest dir at compile time, so the lint works
/// from any cwd inside the repo; when the sources are missing (e.g. the
/// binary moved elsewhere) the report has `files_scanned == 0` and the
/// caller reports a skip rather than a pass.
pub fn lint_workspace() -> LintReport {
    let crates_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let mut files = Vec::new();
    for krate in SCANNED_CRATES {
        collect_rs_files(&crates_root.join(krate).join("src"), &mut files);
    }
    let names: Vec<String> = files.iter().map(|p| p.display().to_string()).collect();
    let mut findings = Vec::new();
    for (path, name) in files.iter().zip(&names) {
        if let Ok(content) = std::fs::read_to_string(path) {
            findings.extend(lint_content(name, &content));
        }
    }
    if !files.is_empty() {
        findings.extend(stale_allowlist(&names));
    }
    LintReport {
        files_scanned: files.len(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wall_clock_and_hash_collections() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\nfn f() {}\n";
        let f = lint_content("crates/core/src/solver.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert!(f[0].token.contains("Instant"));
        assert_eq!(f[1].token, "HashMap");
    }

    #[test]
    fn flags_sleeps_and_duration_constants() {
        let src = "fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(5));\n}\n";
        let f = lint_content("crates/des/src/engine.rs", src);
        assert_eq!(f.len(), 1, "one finding per line: {f:#?}");
        assert_eq!(f[0].token, "thread::sleep");
        let src = "let d = Duration::from_secs(1);\n";
        let f = lint_content("crates/core/src/solver.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "Duration::from_");
    }

    #[test]
    fn sim_time_constructors_are_not_confused_with_duration() {
        let src = "let t = SimTime::from_secs(1.0);\n";
        assert!(lint_content("crates/des/src/time.rs", src).is_empty());
    }

    #[test]
    fn bench_may_read_the_wall_clock_but_not_sleep() {
        let clock = "let t0 = std::time::Instant::now();\n";
        assert!(
            lint_content("crates/bench/src/suite.rs", clock).is_empty(),
            "bench times real runs by design"
        );
        let sleep = "std::thread::sleep(d);\n";
        assert_eq!(lint_content("crates/bench/src/suite.rs", sleep).len(), 1);
        let dur = "let d = Duration::from_micros(10);\n";
        assert_eq!(lint_content("crates/bench/src/suite.rs", dur).len(), 1);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(lint_content("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn comments_are_exempt() {
        let src = "// never use HashMap here\nfn f() {}\n";
        assert!(lint_content("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlist_is_honoured_per_file() {
        let src = "use std::time::Instant;\n";
        assert!(lint_content("crates/core/src/engine/mod.rs", src).is_empty());
        assert_eq!(
            lint_content("crates/core/src/engine/pipeline.rs", src).len(),
            1
        );
        let hm = "use std::collections::HashMap;\n";
        assert!(lint_content("crates/core/src/sanitize.rs", hm).is_empty());
        let backoff = "let d = Duration::from_secs_f64(delay);\n";
        assert!(lint_content("crates/core/src/faults/supervisor.rs", backoff).is_empty());
    }

    #[test]
    fn stale_allowlist_entry_is_a_finding() {
        // A scan that saw every allowlisted file: no stale findings.
        let full: Vec<String> = ALLOWLIST
            .iter()
            .map(|(suffix, _)| format!("crates/{suffix}"))
            .collect();
        assert!(stale_allowlist(&full).is_empty());
        // Drop engine/mod.rs from the scan: its three entries go stale.
        let partial: Vec<String> = full
            .iter()
            .filter(|f| !f.contains("engine/mod.rs"))
            .cloned()
            .collect();
        let stale = stale_allowlist(&partial);
        assert_eq!(stale.len(), 3, "{stale:#?}");
        assert!(stale.iter().all(|f| f.line == 0));
        assert!(stale.iter().all(|f| f.reason.contains("stale")));
    }

    #[test]
    fn findings_carry_stable_rule_ids() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\n";
        let f = lint_content("crates/core/src/solver.rs", src);
        assert_eq!(f[0].id, "CUMF-LINT-001");
        assert_eq!(f[1].id, "CUMF-LINT-006");
        assert!(f[0].to_string().contains("[CUMF-LINT-001]"), "{}", f[0]);
        let stale = stale_allowlist(&[]);
        assert!(stale.iter().all(|f| f.id == STALE_ALLOWLIST_ID));
    }

    #[test]
    fn every_rule_id_is_explained() {
        for &(id, _, _) in FORBIDDEN {
            assert!(explain(id).is_some(), "{id} has no explanation");
        }
        assert!(explain(STALE_ALLOWLIST_ID).is_some());
        assert!(explain("cumf-lint-001").is_some(), "case-insensitive");
        assert!(explain(" CUMF-LINT-004 ").is_some(), "whitespace-tolerant");
        assert!(explain("CUMF-LINT-999").is_none());
        assert_eq!(rule_ids().count(), FORBIDDEN.len() + 1);
    }

    #[test]
    fn no_allowlist_entry_is_stale_against_the_real_tree() {
        // The real scan must see every allowlisted file — i.e. the
        // allowlist refers only to code that still exists.
        let report = lint_workspace();
        assert!(report.files_scanned > 0, "sources must be on disk in CI");
        let stale: Vec<&LintFinding> = report
            .findings
            .iter()
            .filter(|f| f.reason.contains("stale"))
            .collect();
        assert!(stale.is_empty(), "{stale:#?}");
    }

    #[test]
    fn workspace_sources_are_clean() {
        // The real lint over the real sources: the deterministic crates
        // (and bench, minus its wall-clock exemption) must stay free of
        // wall clocks, sleeps, and hash collections.
        let report = lint_workspace();
        assert!(
            report.files_scanned > 20,
            "found {} files",
            report.files_scanned
        );
        let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
        assert!(report.clean(), "{rendered:#?}");
    }
}
