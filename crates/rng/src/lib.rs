//! # cumf-rng — in-tree pseudo-random number generation
//!
//! A dependency-free replacement for the slice of `rand` + `rand_chacha`
//! this workspace actually uses: a seedable ChaCha8 stream cipher RNG
//! ([`ChaCha8Rng`]), uniform sampling over integer and float ranges
//! ([`Rng::gen_range`]), Fisher–Yates shuffling ([`seq::SliceRandom`]) and
//! the [`distributions::Distribution`] trait for custom samplers (the
//! synthetic-data alias tables).
//!
//! Everything is deterministic given the seed, portable across platforms
//! (no `usize`-width dependence in the stream itself), and fast enough for
//! data generation and scheduler shuffles — the only places the workspace
//! draws randomness.
//!
//! The module layout mirrors `rand` (`seq`, `distributions`) so call sites
//! read identically; the streams themselves are **not** bit-compatible
//! with `rand_chacha`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chacha;

pub use chacha::ChaCha8Rng;

/// A random-number source: everything builds on 64 uniform bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed` (expanded through SplitMix64 into full key material).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution: floats
    /// uniformly in `[0, 1)`, integers over their full range, bools fair.
    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`). Panics on an
    /// empty range.
    #[inline]
    fn gen_range<T, RANGE: SampleRange<T>>(&mut self, range: RANGE) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable from a "standard" distribution (see [`Rng::gen`]).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range a `T` can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from `rng`; panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, bound)` by Lemire's multiply-shift
/// method with rejection (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Threshold = 2^64 mod bound; rejecting low products below it makes
    // every residue class equally likely.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Slice shuffling and choosing, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Distribution sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&x));
        }
        for _ in 0..1000 {
            let x = rng.gen_range(7..8u64);
            assert_eq!(x, 7);
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket {i}: {c}"
            );
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&x));
            let y = rng.gen_range(0.5..2.5f32);
            assert!((0.5..2.5).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle must move things");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_is_none_on_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [9u8];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn draw<R: RngCore>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
