//! ChaCha8 stream-cipher RNG (RFC 8439 block function, 8 double-rounds
//! halved to 8 quarter-round rounds as in `rand_chacha`'s ChaCha8).

use crate::{RngCore, SeedableRng};

/// A ChaCha stream cipher with 8 rounds used as a PRNG.
///
/// The generator runs the ChaCha block function over an incrementing
/// 64-bit counter and emits the 16 output words of each 64-byte block as
/// eight little-endian `u64`s. ChaCha8 passes all standard statistical
/// test batteries and, unlike LCGs or xorshift, has no detectable lattice
/// structure — overkill for data synthesis, but it makes seeds portable
/// claims ("seed 42 produced this data set") trustworthy.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter state fed to the block function.
    state: [u32; 16],
    /// Buffered output words of the current block.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "exhausted".
    idx: usize,
}

const ROUNDS: usize = 8;
/// "expand 32-byte k", the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64: expands a 64-bit seed into a stream of well-mixed words.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Builds a generator from a 256-bit key (eight words) with the block
    /// counter and nonce at zero.
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&key);
        // state[12..14]: 64-bit block counter; state[14..16]: nonce (zero).
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Runs the block function once and refills the output buffer.
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, (&x, &s)) in self.buf.iter_mut().zip(w.iter().zip(&self.state)) {
            *o = x.wrapping_add(s);
        }
        // Increment the 64-bit block counter (words 12/13).
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector, run with 20 rounds: validates the
    /// quarter-round wiring and counter/constant layout that ChaCha8
    /// shares with ChaCha20.
    #[test]
    fn chacha_block_function_matches_rfc8439() {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, w) in state[4..12].iter_mut().enumerate() {
            let b = (4 * i) as u32;
            *w = u32::from_le_bytes([b as u8, (b + 1) as u8, (b + 2) as u8, (b + 3) as u8]);
        }
        state[12] = 1; // counter
        state[13] = u32::from_le_bytes([0x00, 0x00, 0x00, 0x09]);
        state[14] = u32::from_le_bytes([0x00, 0x00, 0x00, 0x4a]);
        state[15] = 0;
        let mut w = state;
        for _ in 0..10 {
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        let out: Vec<u32> = w
            .iter()
            .zip(&state)
            .map(|(&a, &b)| a.wrapping_add(b))
            .collect();
        let expected: [u32; 16] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn blocks_differ_and_counter_advances() {
        let mut rng = ChaCha8Rng::from_key([0; 8]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "consecutive blocks must differ");
    }

    #[test]
    fn keys_separate_streams() {
        let mut a = ChaCha8Rng::from_key([1, 0, 0, 0, 0, 0, 0, 0]);
        let mut b = ChaCha8Rng::from_key([2, 0, 0, 0, 0, 0, 0, 0]);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counter_carry_propagates() {
        let mut rng = ChaCha8Rng::from_key([7; 8]);
        rng.state[12] = u32::MAX;
        rng.refill();
        assert_eq!(rng.state[12], 0);
        assert_eq!(rng.state[13], 1);
    }
}
