//! Deterministic (sampling-free) profiler over recorded trace spans.
//!
//! The tracer already captures every span with exact start/duration in
//! both clock domains; this module turns that buffer into attribution:
//!
//! * **Self vs cumulative time.** Spans on one `(clock, track)` lane
//!   are re-nested by interval containment (a child starts after and
//!   ends before its parent — exactly the shape RAII [`crate::span`]
//!   guards produce), and each `(clock, category, name)` key is
//!   charged its cumulative time plus its *self* time, i.e. cumulative
//!   minus the time spent in direct children. Self time is what a
//!   hot-spot hunt needs: a parent that merely waits on instrumented
//!   children drops to the bottom of the table.
//! * **Collapsed stacks.** [`collapsed`] renders the same nesting in
//!   the flamegraph "collapsed" format (`frame;frame;frame weight`,
//!   weight = self microseconds), loadable by `inferno`,
//!   `flamegraph.pl`, or speedscope — the third exporter next to the
//!   Chrome-trace and Prometheus ones.
//!
//! Because the input spans are deterministic in sim-time (and the
//! wall-clock spans are whatever really happened), profiling the same
//! simulation twice yields bit-identical sim-domain attribution — no
//! sampling, no perf counters, no host interference.

use std::collections::BTreeMap;

use crate::trace::{Clock, TraceEvent};

/// Attribution for one `(clock, category, name)` key.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    pub clock: Clock,
    pub cat: &'static str,
    pub name: String,
    /// Number of spans aggregated into this entry.
    pub count: u64,
    /// Total time inside these spans, microseconds.
    pub cum_us: f64,
    /// Cumulative minus time spent in direct child spans, microseconds.
    pub self_us: f64,
}

/// Aggregated self/cumulative profile built from a span buffer.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Entries sorted by descending self time (ties: by name).
    pub entries: Vec<ProfileEntry>,
}

fn clock_label(clock: Clock) -> &'static str {
    match clock {
        Clock::Wall => "wall",
        Clock::Sim => "sim",
    }
}

fn clock_rank(clock: Clock) -> u8 {
    match clock {
        Clock::Wall => 0,
        Clock::Sim => 1,
    }
}

/// One resolved span: original event index, attributed self time, and
/// the full stack path (`clock;cat/name;...`) it closes under.
struct Resolved {
    idx: usize,
    self_us: f64,
    path: String,
}

struct Frame {
    idx: usize,
    end_us: f64,
    child_us: f64,
    path: String,
}

fn frame_label(ev: &TraceEvent) -> String {
    // Semicolons separate stack frames in the collapsed format; make
    // sure a span name cannot forge a frame boundary.
    format!("{}/{}", ev.cat, ev.name.replace(';', ","))
}

/// Re-nests the spans of each `(clock, track)` lane by interval
/// containment and charges self time. Spans that only partially
/// overlap their predecessor (possible when concurrent threads share a
/// lane) are treated as roots of their own stacks rather than
/// mis-attributed to a parent that does not contain them.
fn resolve(events: &[TraceEvent]) -> Vec<Resolved> {
    let mut lanes: BTreeMap<(u8, u32), Vec<usize>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        lanes
            .entry((clock_rank(ev.clock), ev.track))
            .or_default()
            .push(i);
    }
    let mut out = Vec::with_capacity(events.len());
    for ((clock_rank, _track), mut idxs) in lanes {
        // Parents sort before children: earlier start first, longer
        // duration first on equal starts, recording order as the
        // final deterministic tie-break.
        idxs.sort_by(|&a, &b| {
            events[a]
                .start_us
                .total_cmp(&events[b].start_us)
                .then(events[b].dur_us.total_cmp(&events[a].dur_us))
                .then(a.cmp(&b))
        });
        let root = if clock_rank == 0 { "wall" } else { "sim" };
        let mut stack: Vec<Frame> = Vec::new();
        let pop = |stack: &mut Vec<Frame>, out: &mut Vec<Resolved>| {
            let f = stack.pop().expect("pop on empty profiler stack");
            out.push(Resolved {
                idx: f.idx,
                self_us: (events[f.idx].dur_us - f.child_us).max(0.0),
                path: f.path,
            });
            if let Some(parent) = stack.last_mut() {
                parent.child_us += events[f.idx].dur_us;
            }
        };
        for i in idxs {
            let ev = &events[i];
            let end = ev.start_us + ev.dur_us;
            while stack.last().is_some_and(|top| top.end_us <= ev.start_us) {
                pop(&mut stack, &mut out);
            }
            let contained = stack.last().is_some_and(|top| end <= top.end_us);
            let path = match stack.last() {
                Some(top) if contained => format!("{};{}", top.path, frame_label(ev)),
                _ => format!("{root};{}", frame_label(ev)),
            };
            if contained || stack.is_empty() {
                stack.push(Frame {
                    idx: i,
                    end_us: end,
                    child_us: 0.0,
                    path,
                });
            } else {
                // Partial overlap: attribute the whole span to itself
                // and keep it off the stack so containment stays sound.
                out.push(Resolved {
                    idx: i,
                    self_us: ev.dur_us,
                    path,
                });
            }
        }
        while !stack.is_empty() {
            pop(&mut stack, &mut out);
        }
    }
    out
}

impl Profile {
    /// Builds the self/cumulative profile from a span buffer (as
    /// returned by [`crate::Tracer::events`]).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut agg: BTreeMap<(u8, &'static str, String), (u64, f64, f64)> = BTreeMap::new();
        for r in resolve(events) {
            let ev = &events[r.idx];
            let e = agg
                .entry((clock_rank(ev.clock), ev.cat, ev.name.clone()))
                .or_insert((0, 0.0, 0.0));
            e.0 += 1;
            e.1 += ev.dur_us;
            e.2 += r.self_us;
        }
        let mut entries: Vec<ProfileEntry> = agg
            .into_iter()
            .map(
                |((rank, cat, name), (count, cum_us, self_us))| ProfileEntry {
                    clock: if rank == 0 { Clock::Wall } else { Clock::Sim },
                    cat,
                    name,
                    count,
                    cum_us,
                    self_us,
                },
            )
            .collect();
        entries.sort_by(|a, b| {
            b.self_us
                .total_cmp(&a.self_us)
                .then_with(|| a.name.cmp(&b.name))
        });
        Profile { entries }
    }

    /// Total self time per clock domain, microseconds. (Self times sum
    /// to the union of span coverage, so they are the right 100%.)
    pub fn total_self_us(&self, clock: Clock) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.clock == clock)
            .map(|e| e.self_us)
            .sum()
    }

    /// Renders the attribution table: one row per `(clock, cat/name)`,
    /// sorted by descending self time — the `cumf profile` hot-spot
    /// view.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.entries.is_empty() {
            out.push_str("profile: no spans recorded\n");
            return out;
        }
        out.push_str("profile (self/cumulative, by self time)\n");
        let _ = writeln!(
            out,
            "  {:<44}  {:>5}  {:>8}  {:>12}  {:>12}  {:>6}",
            "cat/name", "clock", "count", "self_ms", "cum_ms", "self%"
        );
        let totals = [
            self.total_self_us(Clock::Wall),
            self.total_self_us(Clock::Sim),
        ];
        for e in &self.entries {
            let total = totals[clock_rank(e.clock) as usize];
            let pct = if total > 0.0 {
                100.0 * e.self_us / total
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<44}  {:>5}  {:>8}  {:>12.3}  {:>12.3}  {:>5.1}%",
                format!("{}/{}", e.cat, e.name),
                clock_label(e.clock),
                e.count,
                e.self_us / 1e3,
                e.cum_us / 1e3,
                pct
            );
        }
        out
    }
}

/// Renders the span buffer in the flamegraph collapsed-stack format:
/// one `frame;frame;...;frame weight` line per distinct stack, where
/// the root frame is the clock domain and the weight is the stack's
/// total self time in integer microseconds. Lines are sorted (the
/// format is order-insensitive; sorting makes the output diffable).
pub fn collapsed(events: &[TraceEvent]) -> String {
    let mut agg: BTreeMap<String, f64> = BTreeMap::new();
    for r in resolve(events) {
        *agg.entry(r.path).or_default() += r.self_us;
    }
    let mut out = String::new();
    for (path, self_us) in agg {
        let weight = self_us.round() as u64;
        if weight > 0 {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        cat: &'static str,
        name: &str,
        clock: Clock,
        track: u32,
        start_us: f64,
        dur_us: f64,
    ) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat,
            clock,
            track,
            start_us,
            dur_us,
            args: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // parent [0, 100) with children [10, 40) and [50, 70);
        // grandchild [15, 25) inside the first child.
        let events = vec![
            ev("t", "parent", Clock::Wall, 0, 0.0, 100.0),
            ev("t", "child_a", Clock::Wall, 0, 10.0, 30.0),
            ev("t", "grand", Clock::Wall, 0, 15.0, 10.0),
            ev("t", "child_b", Clock::Wall, 0, 50.0, 20.0),
        ];
        let p = Profile::from_events(&events);
        let get = |name: &str| p.entries.iter().find(|e| e.name == name).unwrap();
        assert_eq!(get("parent").cum_us, 100.0);
        assert_eq!(get("parent").self_us, 50.0); // 100 - 30 - 20
        assert_eq!(get("child_a").self_us, 20.0); // 30 - 10
        assert_eq!(get("grand").self_us, 10.0);
        assert_eq!(get("child_b").self_us, 20.0);
        // Self times sum to the covered interval.
        assert_eq!(p.total_self_us(Clock::Wall), 100.0);
    }

    #[test]
    fn lanes_and_clocks_do_not_nest_across() {
        // Same interval on two tracks: neither is the other's child.
        let events = vec![
            ev("t", "a", Clock::Wall, 0, 0.0, 10.0),
            ev("t", "b", Clock::Wall, 1, 0.0, 10.0),
            ev("t", "c", Clock::Sim, 0, 0.0, 10.0),
        ];
        let p = Profile::from_events(&events);
        for e in &p.entries {
            assert_eq!(e.self_us, 10.0, "{} must be a root", e.name);
        }
        assert_eq!(p.total_self_us(Clock::Wall), 20.0);
        assert_eq!(p.total_self_us(Clock::Sim), 10.0);
    }

    #[test]
    fn partial_overlap_degrades_to_roots() {
        let events = vec![
            ev("t", "a", Clock::Wall, 0, 0.0, 10.0),
            ev("t", "b", Clock::Wall, 0, 5.0, 10.0), // overlaps, not contained
        ];
        let p = Profile::from_events(&events);
        for e in &p.entries {
            assert_eq!(e.self_us, 10.0);
        }
        let folded = collapsed(&events);
        assert!(folded.contains("wall;t/a 10"));
        assert!(folded.contains("wall;t/b 10"));
    }

    #[test]
    fn collapsed_format_encodes_stacks() {
        let events = vec![
            ev("solver", "epoch", Clock::Wall, 0, 0.0, 100.0),
            ev("solver", "eval;x", Clock::Wall, 0, 20.0, 40.0),
        ];
        let folded = collapsed(&events);
        assert!(folded.contains("wall;solver/epoch 60\n"), "{folded}");
        // Semicolons in span names cannot forge frames.
        assert!(folded.contains("wall;solver/epoch;solver/eval,x 40\n"));
        // Deterministic: same input, same output.
        assert_eq!(folded, collapsed(&events));
    }

    #[test]
    fn render_table_lists_hot_spots_first() {
        let events = vec![
            ev("des", "run", Clock::Wall, 0, 0.0, 100.0),
            ev("des", "service:gpu", Clock::Sim, 2, 0.0, 500.0),
        ];
        let p = Profile::from_events(&events);
        let table = p.render_table();
        assert!(table.contains("des/run"));
        assert!(table.contains("des/service:gpu"));
        assert!(table.contains("self%"));
        let run_pos = table.find("des/run").unwrap();
        let svc_pos = table.find("des/service:gpu").unwrap();
        assert!(svc_pos < run_pos, "larger self time sorts first");
    }

    #[test]
    fn empty_profile_renders_gracefully() {
        let p = Profile::from_events(&[]);
        assert!(p.render_table().contains("no spans"));
        assert_eq!(collapsed(&[]), "");
    }
}
