//! Span/event tracer with two clock domains.
//!
//! Spans measured against the host clock (`Clock::Wall`) time real
//! work — an epoch of the multi-threaded solver, an RMSE evaluation.
//! Spans measured against the discrete-event clock (`Clock::Sim`) place
//! *simulated* work — a kernel launch on the modelled GPU — on the
//! `SimTime` axis. The Chrome-trace exporter keeps
//! the domains apart by giving each its own `pid`, so Perfetto renders
//! them as two processes instead of interleaving incomparable
//! timestamps.
//!
//! Recording is a `Mutex<Vec<_>>` push: contention is negligible
//! because spans close at epoch/kernel granularity, not per update. A
//! capacity cap guards against unbounded growth on long runs; events
//! past the cap are counted in `dropped`, never silently lost.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::registry::compiled_in;

/// Which clock a trace event's timestamps belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Host monotonic time, microseconds since the tracer's epoch.
    Wall,
    /// Simulated time, microseconds since sim start.
    Sim,
}

/// One completed span (Chrome `ph:"X"`) or instant (`dur_us == 0`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: String,
    /// Category label; also the Perfetto track grouping aid.
    pub cat: &'static str,
    pub clock: Clock,
    /// Rendered as the `tid` — one lane per worker/resource.
    pub track: u32,
    pub start_us: f64,
    pub dur_us: f64,
    /// Numeric key/values shown in the Perfetto args panel.
    pub args: Vec<(&'static str, f64)>,
}

/// Default cap on buffered events (~a few hundred MB worst case is far
/// above any real run; fig13-scale runs emit thousands, not millions).
const DEFAULT_CAPACITY: usize = 1 << 20;

/// Collects [`TraceEvent`]s. Use the process-global instance via
/// [`crate::tracer`] or construct one per test.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: OnceLock<Instant>,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: OnceLock::new(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            capacity: DEFAULT_CAPACITY,
        }
    }

    pub fn set_enabled(&self, on: bool) {
        if on {
            // Pin the wall-clock epoch the first time tracing turns on so
            // all wall timestamps share an origin.
            let _ = self.epoch.get_or_init(Instant::now);
        }
        self.enabled.store(on, Ordering::Relaxed);
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        compiled_in() && self.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds of host time since the tracer's epoch.
    pub fn now_us(&self) -> f64 {
        let epoch = self.epoch.get_or_init(Instant::now);
        epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Buffers one event (no-op when disabled or over capacity).
    pub fn record(&self, ev: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut events = self.events.lock().unwrap();
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(ev);
        }
    }

    /// Opens a wall-clock span; it records itself when dropped.
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some(SpanInner {
                tracer: self,
                name: name.into(),
                cat,
                track: 0,
                start_us: self.now_us(),
                args: Vec::new(),
            }),
        }
    }

    /// Records a completed sim-clock span (`start`/`dur` in seconds of
    /// simulated time).
    pub fn record_sim(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        track: u32,
        start_secs: f64,
        dur_secs: f64,
        args: Vec<(&'static str, f64)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            name: name.into(),
            cat,
            clock: Clock::Sim,
            track,
            start_us: start_secs * 1e6,
            dur_us: dur_secs * 1e6,
            args,
        });
    }

    /// Records a zero-duration wall-clock marker.
    pub fn instant(&self, cat: &'static str, name: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            name: name.into(),
            cat,
            clock: Clock::Wall,
            track: 0,
            start_us: self.now_us(),
            dur_us: 0.0,
            args: Vec::new(),
        });
    }

    /// Copies the buffered events (export + tests).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discards all buffered events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

struct SpanInner<'t> {
    tracer: &'t Tracer,
    name: String,
    cat: &'static str,
    track: u32,
    start_us: f64,
    args: Vec<(&'static str, f64)>,
}

/// RAII guard for a wall-clock span: created by [`Tracer::span`],
/// records a complete event on drop. When tracing is disabled the guard
/// is empty and drop does nothing.
pub struct SpanGuard<'t> {
    inner: Option<SpanInner<'t>>,
}

impl SpanGuard<'_> {
    /// Attaches a numeric argument shown in the trace viewer.
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value));
        }
        self
    }

    /// Places the span on a specific lane (`tid` in the viewer).
    pub fn track(mut self, track: u32) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.track = track;
        }
        self
    }

    /// Attaches an argument after construction (for values only known
    /// at the end of the span, like an update count).
    pub fn set_arg(&mut self, key: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end_us = inner.tracer.now_us();
            inner.tracer.record(TraceEvent {
                name: inner.name,
                cat: inner.cat,
                clock: Clock::Wall,
                track: inner.track,
                start_us: inner.start_us,
                dur_us: (end_us - inner.start_us).max(0.0),
                args: inner.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let _s = t.span("test", "span");
        }
        t.instant("test", "marker");
        t.record_sim("test", "sim", 0, 0.0, 1.0, vec![]);
        assert!(t.events().is_empty());
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _s = t.span("cat", "work").arg("n", 7.0).track(3);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "work");
        assert_eq!(evs[0].cat, "cat");
        assert_eq!(evs[0].track, 3);
        assert_eq!(evs[0].clock, Clock::Wall);
        assert_eq!(evs[0].args, vec![("n", 7.0)]);
        assert!(evs[0].dur_us >= 0.0);
    }

    #[test]
    fn sim_spans_convert_seconds_to_micros() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.record_sim("gpu", "kernel", 1, 0.5, 0.25, vec![("updates", 128.0)]);
        let evs = t.events();
        assert_eq!(evs[0].clock, Clock::Sim);
        assert!((evs[0].start_us - 5e5).abs() < 1e-9);
        assert!((evs[0].dur_us - 2.5e5).abs() < 1e-9);
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let mut t = Tracer::new();
        t.capacity = 2;
        t.set_enabled(true);
        for _ in 0..5 {
            t.instant("test", "e");
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn clear_empties_the_buffer() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.instant("test", "e");
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
