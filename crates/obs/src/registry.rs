//! Metrics registry: named atomic counters, gauges, and histograms.
//!
//! Design goals, in order:
//!
//! 1. **Cheap when enabled.** A counter increment is one relaxed atomic
//!    load (the enabled flag) plus one relaxed `fetch_add`. No locks on
//!    the hot path; the registry mutex is only taken at registration.
//! 2. **Free when disabled.** Every probe branches on a relaxed
//!    [`Registry::is_enabled`] load; with the `off` cargo feature the
//!    branch condition is a constant `false` and the optimiser deletes
//!    the probe entirely.
//! 3. **Zero dependencies.** Everything is `std` atomics and a
//!    `BTreeMap` (which also gives deterministic, sorted export order).
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones; instrumented code registers once (e.g. in a constructor) and
//! stores the handle, then updates it lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::quantile;

/// Compile-time kill switch: with the `off` feature, probes fold away.
#[inline(always)]
pub(crate) const fn compiled_in() -> bool {
    cfg!(not(feature = "off"))
}

// ---------------------------------------------------------------------------
// Histogram bucket layout
// ---------------------------------------------------------------------------

/// Histograms use log2 buckets spanning `2^BUCKET_MIN_EXP ..
/// 2^(BUCKET_MIN_EXP + BUCKET_COUNT - 2)`, plus a final +Inf bucket.
/// `2^-30 s` ≈ 1 ns and `2^12 s` ≈ 68 min cover every duration the
/// simulator produces.
const BUCKET_MIN_EXP: i32 = -30;
const BUCKET_COUNT: usize = 44;

/// Upper bound (`le`) of bucket `i`, in the measured unit.
fn bucket_bound(i: usize) -> f64 {
    if i + 1 == BUCKET_COUNT {
        f64::INFINITY
    } else {
        (2.0f64).powi(BUCKET_MIN_EXP + i as i32)
    }
}

fn bucket_index(value: f64) -> usize {
    if value <= 0.0 || value.is_nan() {
        return 0; // zero, negative, NaN -> smallest bucket
    }
    let exp = value.log2().ceil() as i32;
    (exp - BUCKET_MIN_EXP).clamp(0, BUCKET_COUNT as i32 - 1) as usize
}

/// `(lower, upper)` bounds of the bucket a value falls into — the
/// resolution of the histogram around that value. Interpolated
/// quantile estimates (see [`crate::quantile`]) are accurate to one
/// such bucket width; tests use this to state that bound exactly.
pub fn bucket_range(value: f64) -> (f64, f64) {
    let i = bucket_index(value);
    let lower = if i == 0 { 0.0 } else { bucket_bound(i - 1) };
    (lower, bucket_bound(i))
}

/// Number of raw observations each histogram keeps verbatim. While a
/// series has seen at most this many samples its exported quantiles
/// are exact; afterwards they fall back to log2-bucket interpolation.
/// The reservoir keeps the *first* N observations (deterministic, no
/// random replacement).
pub const RESERVOIR_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Cells (shared storage behind the handles)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct HistogramCell {
    buckets: Vec<AtomicU64>, // BUCKET_COUNT entries, non-cumulative
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 bits, CAS-updated
    // First-N exact-value reservoir. `reservoir_full` lets the hot
    // path skip the mutex with one relaxed load once the reservoir has
    // filled, so steady-state recording stays lock-free.
    reservoir: Mutex<Vec<f64>>,
    reservoir_full: AtomicBool,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            reservoir: Mutex::new(Vec::new()),
            reservoir_full: AtomicBool::new(false),
        }
    }

    fn record(&self, value: f64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if !self.reservoir_full.load(Ordering::Relaxed) {
            let mut r = self.reservoir.lock().unwrap();
            if r.len() < RESERVOIR_CAPACITY {
                r.push(value);
            }
            if r.len() >= RESERVOIR_CAPACITY {
                self.reservoir_full.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Cumulative `(le, count)` pairs, ending at +Inf.
    fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                cum += b.load(Ordering::Relaxed);
                (bucket_bound(i), cum)
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.reservoir.lock().unwrap().clear();
        self.reservoir_full.store(false, Ordering::Relaxed);
    }
}

#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>), // f64 bits
    Histogram(Arc<HistogramCell>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    cell: Cell,
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if compiled_in() && self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (reads even while disabled; probes only *write*
    /// behind the flag).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    #[inline]
    pub fn set(&self, value: f64) {
        if compiled_in() && self.enabled.load(Ordering::Relaxed) {
            self.cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Log2-bucketed distribution of observed values (durations, depths).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    #[inline]
    pub fn record(&self, value: f64) {
        if compiled_in() && self.enabled.load(Ordering::Relaxed) {
            self.cell.record(value);
        }
    }

    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum_bits.load(Ordering::Relaxed))
    }

    /// Quantile estimate of the recorded distribution: exact while
    /// every observation is still in the reservoir, interpolated from
    /// the log2 buckets afterwards. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        let reservoir = self.cell.reservoir.lock().unwrap().clone();
        quantile::estimate(&self.cell.cumulative_buckets(), count, &reservoir, q)
    }
}

// ---------------------------------------------------------------------------
// Snapshots (export-facing, no atomics)
// ---------------------------------------------------------------------------

/// Point-in-time copy of one metric, consumed by the exporters.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    pub name: String,
    pub help: String,
    pub value: SnapshotValue,
}

#[derive(Debug, Clone)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(f64),
    /// `buckets` are cumulative `(le, count)` pairs ending at +Inf.
    /// `reservoir` holds the first [`RESERVOIR_CAPACITY`] raw
    /// observations; while `count <= reservoir.len()` quantiles are
    /// exact (see [`crate::quantile::estimate`]).
    Histogram {
        buckets: Vec<(f64, u64)>,
        count: u64,
        sum: f64,
        reservoir: Vec<f64>,
    },
}

impl SnapshotValue {
    /// Quantile estimate for histogram snapshots (`None` for other
    /// kinds or an empty histogram).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            SnapshotValue::Histogram {
                buckets,
                count,
                reservoir,
                ..
            } => quantile::estimate(buckets, *count, reservoir, q),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Named metric store. The workspace normally uses the process-global
/// registry via [`crate::registry`]; tests construct their own.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(false)),
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turns probe writes on or off. Registration still works while
    /// disabled; only updates are suppressed.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        compiled_in() && self.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or re-fetches) a counter. Re-registering the same name
    /// returns a handle to the same cell.
    ///
    /// With the `off` feature, registration itself is a no-op: the
    /// returned handle is detached (not stored in the registry), so a
    /// fully-disabled build keeps the registry at zero entries and
    /// never grows the map from instrumented constructors.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        if !compiled_in() {
            return Counter {
                enabled: Arc::clone(&self.enabled),
                cell: Arc::new(AtomicU64::new(0)),
            };
        }
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            cell: Cell::Counter(Arc::new(AtomicU64::new(0))),
        });
        match &entry.cell {
            Cell::Counter(cell) => Counter {
                enabled: Arc::clone(&self.enabled),
                cell: Arc::clone(cell),
            },
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Registers (or re-fetches) a gauge. See [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        if !compiled_in() {
            return Gauge {
                enabled: Arc::clone(&self.enabled),
                cell: Arc::new(AtomicU64::new(0f64.to_bits())),
            };
        }
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            cell: Cell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        });
        match &entry.cell {
            Cell::Gauge(cell) => Gauge {
                enabled: Arc::clone(&self.enabled),
                cell: Arc::clone(cell),
            },
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Registers (or re-fetches) a histogram. See [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        if !compiled_in() {
            return Histogram {
                enabled: Arc::clone(&self.enabled),
                cell: Arc::new(HistogramCell::new()),
            };
        }
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            cell: Cell::Histogram(Arc::new(HistogramCell::new())),
        });
        match &entry.cell {
            Cell::Histogram(cell) => Histogram {
                enabled: Arc::clone(&self.enabled),
                cell: Arc::clone(cell),
            },
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Copies every metric's current value, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .map(|(name, entry)| {
                let value = match &entry.cell {
                    Cell::Counter(c) => SnapshotValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => {
                        SnapshotValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Cell::Histogram(h) => SnapshotValue::Histogram {
                        buckets: h.cumulative_buckets(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                        reservoir: h.reservoir.lock().unwrap().clone(),
                    },
                };
                MetricSnapshot {
                    name: name.clone(),
                    help: entry.help.clone(),
                    value,
                }
            })
            .collect()
    }

    /// Zeroes every metric's value, keeping registrations intact.
    pub fn reset_values(&self) {
        let entries = self.entries.lock().unwrap();
        for entry in entries.values() {
            match &entry.cell {
                Cell::Counter(c) => c.store(0, Ordering::Relaxed),
                Cell::Gauge(g) => g.store(0f64.to_bits(), Ordering::Relaxed),
                Cell::Histogram(h) => h.reset(),
            }
        }
    }

    /// Number of registered series (histograms count as one).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        let c = reg.counter("c", "test counter");
        let g = reg.gauge("g", "test gauge");
        let h = reg.histogram("h", "test histogram");
        // Disabled by default: probes must be invisible.
        c.inc();
        c.add(41);
        g.set(3.5);
        h.record(1.0);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn enabled_registry_counts() {
        let reg = Registry::new();
        reg.set_enabled(true);
        let c = reg.counter("c", "");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = reg.gauge("g", "");
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
        let h = reg.histogram("h", "");
        h.record(0.5);
        h.record(0.25);
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reregistration_shares_the_cell() {
        let reg = Registry::new();
        reg.set_enabled(true);
        let a = reg.counter("shared", "");
        let b = reg.counter("shared", "");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let reg = Registry::new();
        reg.set_enabled(true);
        let h = reg.histogram("h", "");
        h.record(1e-9); // ~2^-30
        h.record(0.5);
        h.record(1e9); // beyond the largest finite bound
        let snap = reg.snapshot();
        let SnapshotValue::Histogram {
            buckets,
            count,
            sum,
            reservoir,
        } = &snap[0].value
        else {
            panic!("expected histogram");
        };
        assert_eq!(reservoir, &vec![1e-9, 0.5, 1e9], "first-N reservoir");
        assert_eq!(*count, 3);
        assert!((sum - (1e-9 + 0.5 + 1e9)).abs() / sum < 1e-12);
        let (last_le, last_count) = *buckets.last().unwrap();
        assert!(last_le.is_infinite());
        assert_eq!(last_count, 3, "+Inf bucket must contain every sample");
        // Cumulative counts are non-decreasing.
        for pair in buckets.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn reset_values_keeps_registrations() {
        let reg = Registry::new();
        reg.set_enabled(true);
        let c = reg.counter("c", "");
        c.add(5);
        reg.reset_values();
        assert_eq!(c.get(), 0);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn reservoir_caps_at_capacity_and_quantiles_switch_over() {
        let reg = Registry::new();
        reg.set_enabled(true);
        let h = reg.histogram("h", "");
        // Small series: quantiles are exact.
        for i in 1..=5 {
            h.record(i as f64);
        }
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        // Overflow the reservoir: quantiles become bucket-interpolated
        // but stay within one bucket of the truth.
        for i in 6..=(RESERVOIR_CAPACITY as u64 + 64) {
            h.record(i as f64);
        }
        let snap = reg.snapshot();
        let SnapshotValue::Histogram {
            count, reservoir, ..
        } = &snap[0].value
        else {
            panic!("expected histogram");
        };
        assert_eq!(reservoir.len(), RESERVOIR_CAPACITY);
        assert!(*count > RESERVOIR_CAPACITY as u64);
        let p50 = h.quantile(0.5).unwrap();
        let truth = (RESERVOIR_CAPACITY as f64 + 64.0) / 2.0;
        let (lo, hi) = bucket_range(truth);
        assert!(
            p50 >= lo - (hi - lo) && p50 <= hi + (hi - lo),
            "p50 {p50} not within one bucket of {truth}"
        );
    }

    #[test]
    fn bucket_range_brackets_its_value() {
        for v in [1e-9, 0.37, 1.0, 7.5, 1e6] {
            let (lo, hi) = bucket_range(v);
            assert!(lo < hi);
            assert!(v > lo && v <= hi, "{v} outside ({lo}, {hi}]");
        }
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zz", "");
        reg.counter("aa", "");
        let names: Vec<_> = reg.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
