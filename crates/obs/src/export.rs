//! Exporters: Chrome `trace_event` JSON, Prometheus text exposition,
//! and a human-readable summary table.
//!
//! All three are hand-rolled string builders — the formats are simple
//! enough that a JSON/serde dependency would cost more than it saves,
//! and the workspace must build offline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::quantile::EXPORT_QUANTILES;
use crate::registry::{MetricSnapshot, SnapshotValue};
use crate::trace::{Clock, TraceEvent};

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite guaranteed by mapping
/// NaN/±Inf to 0; Rust's `Display` for finite floats is valid JSON).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Chrome-trace `pid` for each clock domain. Separate processes keep
/// wall-clock and sim-time timestamps from being compared on one axis.
fn pid_for(clock: Clock) -> u32 {
    match clock {
        Clock::Wall => 1,
        Clock::Sim => 2,
    }
}

/// Renders events as Chrome `trace_event` JSON (object format), directly
/// loadable in Perfetto or chrome://tracing.
///
/// Every event becomes a `ph:"X"` complete event with `ts`/`dur` in
/// microseconds; two metadata records name the wall-clock and sim-time
/// "processes".
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"wall-clock\"}},\n",
    );
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
         \"args\":{\"name\":\"sim-time\"}}",
    );
    for ev in events {
        out.push_str(",\n");
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{}",
            json_escape(&ev.name),
            json_escape(ev.cat),
            json_num(ev.start_us),
            json_num(ev.dur_us),
            pid_for(ev.clock),
            ev.track,
        );
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(k), json_num(*v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Formats a float for Prometheus (which accepts Go-style floats;
/// Rust's `Display` output is a subset).
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders metric snapshots in the Prometheus text exposition format.
pub fn prometheus_text(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snapshots {
        if !m.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
        }
        match &m.value {
            SnapshotValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {} counter", m.name);
                let _ = writeln!(out, "{} {}", m.name, v);
            }
            SnapshotValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {} gauge", m.name);
                let _ = writeln!(out, "{} {}", m.name, prom_num(*v));
            }
            SnapshotValue::Histogram {
                buckets,
                count,
                sum,
                reservoir,
            } => {
                let _ = writeln!(out, "# TYPE {} histogram", m.name);
                // Emit every bucket, including explicit zero-count
                // lines: the line set is then identical for every
                // snapshot of a series, so `.prom` files diff stably
                // across runs (only the numbers change, never which
                // lines exist).
                for (le, cum) in buckets {
                    let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, prom_num(*le), cum);
                }
                // Interpolated (exact while the reservoir covers the
                // series) quantiles, summary-style. Always emitted —
                // an empty series renders NaN, the Prometheus idiom
                // for "no observations yet" — so the line set stays
                // stable here too.
                for (label, q) in EXPORT_QUANTILES {
                    let v = crate::quantile::estimate(buckets, *count, reservoir, *q)
                        .unwrap_or(f64::NAN);
                    let _ = writeln!(out, "{}{{quantile=\"{}\"}} {}", m.name, label, prom_num(v));
                }
                let _ = writeln!(out, "{}_sum {}", m.name, prom_num(*sum));
                let _ = writeln!(out, "{}_count {}", m.name, count);
            }
        }
    }
    out
}

/// Renders a fixed-width table of metrics plus per-(cat, name) span
/// totals — the `cumf profile` terminal output.
pub fn summary_table(snapshots: &[MetricSnapshot], events: &[TraceEvent]) -> String {
    let mut out = String::new();
    if !snapshots.is_empty() {
        out.push_str("metrics\n");
        let width = snapshots.iter().map(|m| m.name.len()).max().unwrap_or(0);
        for m in snapshots {
            match &m.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "  {:<width$}  {v}", m.name);
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "  {:<width$}  {v:.6}", m.name);
                }
                SnapshotValue::Histogram { count, sum, .. } => {
                    let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                    let p50 = m.value.quantile(0.5).unwrap_or(0.0);
                    let p99 = m.value.quantile(0.99).unwrap_or(0.0);
                    let _ = writeln!(
                        out,
                        "  {:<width$}  count={count} sum={sum:.6} mean={mean:.6} \
                         p50={p50:.6} p99={p99:.6}",
                        m.name
                    );
                }
            }
        }
    }
    // Aggregate spans by (clock, cat, name).
    let mut agg: BTreeMap<(&'static str, String, &'static str), (u64, f64)> = BTreeMap::new();
    for ev in events {
        let clock = match ev.clock {
            Clock::Wall => "wall",
            Clock::Sim => "sim",
        };
        let entry = agg
            .entry((ev.cat, ev.name.clone(), clock))
            .or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += ev.dur_us;
    }
    if !agg.is_empty() {
        out.push_str("spans (aggregated)\n");
        let _ = writeln!(
            out,
            "  {:<40}  {:>5}  {:>8}  {:>14}  {:>14}",
            "cat/name", "clock", "count", "total_ms", "mean_us"
        );
        for ((cat, name, clock), (count, total_us)) in &agg {
            let label = format!("{cat}/{name}");
            let _ = writeln!(
                out,
                "  {:<40}  {:>5}  {:>8}  {:>14.3}  {:>14.3}",
                label,
                clock,
                count,
                total_us / 1e3,
                total_us / *count as f64
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::trace::Tracer;

    #[test]
    fn chrome_trace_escapes_and_structures() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.record_sim("gpu", "kernel \"q\"", 2, 1.0, 0.5, vec![("n", 3.0)]);
        let json = chrome_trace_json(&t.events());
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("kernel \\\"q\\\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"args\":{\"n\":3}"));
        // Balanced braces/brackets — a cheap well-formedness check that
        // catches missing separators without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn prometheus_counter_gauge_histogram() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.counter("cumf_updates_total", "updates").add(7);
        reg.gauge("cumf_rmse", "rmse").set(0.95);
        let h = reg.histogram("cumf_epoch_seconds", "epoch time");
        h.record(0.5);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE cumf_updates_total counter"));
        assert!(text.contains("cumf_updates_total 7"));
        assert!(text.contains("# TYPE cumf_rmse gauge"));
        assert!(text.contains("cumf_rmse 0.95"));
        assert!(text.contains("# TYPE cumf_epoch_seconds histogram"));
        assert!(text.contains("cumf_epoch_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cumf_epoch_seconds_sum 0.5"));
        assert!(text.contains("cumf_epoch_seconds_count 1"));
    }

    #[test]
    fn histogram_exposition_is_line_stable_across_values() {
        // The set of emitted lines must not depend on which buckets
        // are populated: an empty histogram and a full one expose the
        // same series names, so `.prom` diffs stay stable.
        let reg = Registry::new();
        reg.set_enabled(true);
        let h = reg.histogram("cumf_stable_seconds", "stability probe");
        let empty = prometheus_text(&reg.snapshot());
        h.record(0.25);
        h.record(3.0);
        let full = prometheus_text(&reg.snapshot());
        let keys = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split_whitespace().next().unwrap().to_string())
                .collect()
        };
        assert_eq!(keys(&empty), keys(&full), "line sets must match");
        // Zero-count buckets are explicit, not omitted.
        assert!(empty.contains("cumf_stable_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(empty.contains("cumf_stable_seconds_count 0"));
        // Empty quantiles render NaN; populated ones are numeric.
        assert!(empty.contains("cumf_stable_seconds{quantile=\"0.99\"} NaN"));
        assert!(full.contains("cumf_stable_seconds{quantile=\"0.5\"}"));
        let p50_line = full
            .lines()
            .find(|l| l.contains("quantile=\"0.5\""))
            .unwrap();
        let p50: f64 = p50_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        // Exact (reservoir) path: median of {0.25, 3.0}.
        assert!((p50 - 1.625).abs() < 1e-12, "p50 = {p50}");
    }

    #[test]
    fn summary_table_lists_metrics_and_spans() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.counter("c", "").inc();
        let t = Tracer::new();
        t.set_enabled(true);
        t.record_sim("gpu", "kernel", 0, 0.0, 1.0, vec![]);
        let table = summary_table(&reg.snapshot(), &t.events());
        assert!(table.contains("metrics"));
        assert!(table.contains("gpu/kernel"));
        assert!(table.contains("sim"));
    }
}
