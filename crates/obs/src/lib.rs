//! # cumf-obs — observability for the cuMF_SGD workspace
//!
//! The paper's argument (CuMF_SGD Sec. 2.3 and the roofline analysis)
//! is that SGD-MF throughput is set by achieved memory bandwidth and
//! occupancy. This crate is how the reproduction *sees* those numbers:
//!
//! * a [`Registry`] of named atomic [`Counter`]s/[`Gauge`]s/
//!   [`Histogram`]s cheap enough to stay compiled into release builds
//!   (a disabled probe is one relaxed load and a branch; the `off`
//!   cargo feature removes even that), and
//! * a [`Tracer`] recording spans on either the wall clock or the
//!   simulated clock, exported as Chrome `trace_event` JSON
//!   (Perfetto / chrome://tracing), Prometheus text exposition, or a
//!   terminal summary table.
//!
//! ## Usage
//!
//! Instrumented code registers handles once and updates them lock-free:
//!
//! ```
//! let updates = cumf_obs::counter("cumf_solver_updates_total", "SGD updates applied");
//! cumf_obs::set_enabled(true);
//! {
//!     let mut span = cumf_obs::span("solver", "epoch");
//!     updates.add(4096);
//!     span.set_arg("updates", 4096.0);
//! } // span records itself here
//! let json = cumf_obs::chrome_trace();
//! assert!(json.contains("epoch"));
//! cumf_obs::reset();
//! # cumf_obs::set_enabled(false);
//! ```
//!
//! Everything is off by default: binaries opt in with
//! [`set_enabled`]`(true)` (the CLI does this when `--trace`/`--metrics`
//! is passed), so the instrumented hot paths cost a predicted-not-taken
//! branch in ordinary runs.

#![forbid(unsafe_code)]

mod export;
pub mod profiler;
pub mod quantile;
mod registry;
mod trace;

pub use export::{chrome_trace_json, prometheus_text, summary_table};
pub use profiler::{Profile, ProfileEntry};
pub use registry::{
    bucket_range, Counter, Gauge, Histogram, MetricSnapshot, Registry, SnapshotValue,
    RESERVOIR_CAPACITY,
};
pub use trace::{Clock, SpanGuard, TraceEvent, Tracer};

use std::sync::OnceLock;

struct Global {
    registry: Registry,
    tracer: Tracer,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        registry: Registry::new(),
        tracer: Tracer::new(),
    })
}

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    &global().registry
}

/// The process-global tracer.
pub fn tracer() -> &'static Tracer {
    &global().tracer
}

/// Turns the global registry and tracer on or off together.
pub fn set_enabled(on: bool) {
    let g = global();
    g.registry.set_enabled(on);
    g.tracer.set_enabled(on);
}

/// Whether global observability is currently recording.
pub fn enabled() -> bool {
    global().registry.is_enabled()
}

/// Registers (or re-fetches) a counter in the global registry.
pub fn counter(name: &str, help: &str) -> Counter {
    registry().counter(name, help)
}

/// Registers (or re-fetches) a gauge in the global registry.
pub fn gauge(name: &str, help: &str) -> Gauge {
    registry().gauge(name, help)
}

/// Registers (or re-fetches) a histogram in the global registry.
pub fn histogram(name: &str, help: &str) -> Histogram {
    registry().histogram(name, help)
}

/// Opens a wall-clock span on the global tracer (records on drop).
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard<'static> {
    tracer().span(cat, name)
}

/// Records a completed sim-clock span on the global tracer
/// (`start`/`dur` in simulated seconds).
pub fn span_sim(
    cat: &'static str,
    name: impl Into<String>,
    track: u32,
    start_secs: f64,
    dur_secs: f64,
    args: Vec<(&'static str, f64)>,
) {
    tracer().record_sim(cat, name, track, start_secs, dur_secs, args)
}

/// Renders the global trace buffer as Chrome `trace_event` JSON.
pub fn chrome_trace() -> String {
    chrome_trace_json(&tracer().events())
}

/// Renders the global registry in Prometheus text exposition format.
pub fn prometheus() -> String {
    prometheus_text(&registry().snapshot())
}

/// Renders the terminal summary of global metrics and spans.
pub fn summary() -> String {
    summary_table(&registry().snapshot(), &tracer().events())
}

/// Builds the self/cumulative attribution profile from the global
/// trace buffer and renders it as a table (hot spots first).
pub fn profile_table() -> String {
    Profile::from_events(&tracer().events()).render_table()
}

/// Renders the global trace buffer in flamegraph collapsed-stack
/// format (`frame;frame weight` lines, weight = self microseconds).
pub fn collapsed_stacks() -> String {
    profiler::collapsed(&tracer().events())
}

/// Clears the global trace buffer and zeroes all metric values
/// (registrations persist). Used between CLI runs and by tests.
pub fn reset() {
    registry().reset_values();
    tracer().clear();
}
