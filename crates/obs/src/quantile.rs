//! Quantile estimation over the log2-bucket [`crate::Histogram`].
//!
//! Two estimators, picked automatically by [`estimate`]:
//!
//! * **Exact** — while a histogram has seen no more samples than its
//!   reservoir holds (the first [`crate::RESERVOIR_CAPACITY`]
//!   observations are kept verbatim), quantiles are computed from the
//!   raw values with linear interpolation between closest ranks. This
//!   makes small latency-critical series (epoch times, recovery
//!   latencies) exact rather than bucket-rounded.
//! * **Interpolated** — past that, the estimator falls back to linear
//!   interpolation inside the log2 bucket that contains the target
//!   rank. The error is bounded by one bucket width (the bucket
//!   `(2^(e-1), 2^e]` has width `2^(e-1)`), i.e. the estimate is always
//!   within a factor of two of the true quantile — the usual contract
//!   of log-bucketed histograms.
//!
//! Both estimators are deterministic: the reservoir keeps the *first*
//! N observations (no random sampling), so identical runs produce
//! identical quantiles.

/// The quantiles exported by the Prometheus and summary exporters,
/// as `(label, q)` pairs.
pub const EXPORT_QUANTILES: &[(&str, f64)] =
    &[("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)];

/// Exact quantile of a sample set (linear interpolation between closest
/// ranks). Returns `None` for an empty slice or a `q` outside `[0, 1]`.
pub fn exact_quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let h = q * (v.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(v[lo] + (h - lo as f64) * (v[hi] - v[lo]))
}

/// Interpolated quantile from cumulative `(le, count)` buckets (the
/// shape produced by [`crate::Registry::snapshot`]). The target rank is
/// located in the first bucket whose cumulative count reaches it, then
/// linearly interpolated between the bucket's bounds. The +Inf bucket
/// cannot be interpolated; ranks that land there clamp to the largest
/// finite bound, which keeps the estimate finite and monotone.
pub fn bucket_quantile(buckets: &[(f64, u64)], count: u64, q: f64) -> Option<f64> {
    if count == 0 || buckets.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let target = q * count as f64;
    let mut prev_cum = 0u64;
    let mut lower = 0.0f64;
    for &(le, cum) in buckets {
        if cum as f64 >= target && cum > prev_cum {
            let upper = if le.is_finite() { le } else { lower };
            let in_bucket = (cum - prev_cum) as f64;
            let frac = ((target - prev_cum as f64) / in_bucket).clamp(0.0, 1.0);
            return Some(lower + frac * (upper - lower).max(0.0));
        }
        if le.is_finite() {
            lower = le;
        }
        prev_cum = cum;
    }
    Some(lower)
}

/// The exporter-facing estimator: exact while every observation is
/// still in the reservoir, interpolated from the buckets afterwards.
pub fn estimate(buckets: &[(f64, u64)], count: u64, reservoir: &[f64], q: f64) -> Option<f64> {
    if count == 0 {
        None
    } else if count as usize <= reservoir.len() {
        exact_quantile(reservoir, q)
    } else {
        bucket_quantile(buckets, count, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_interpolates_between_ranks() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_quantile(&v, 0.0), Some(1.0));
        assert_eq!(exact_quantile(&v, 1.0), Some(4.0));
        assert_eq!(exact_quantile(&v, 0.5), Some(2.5));
        assert_eq!(exact_quantile(&[], 0.5), None);
        assert_eq!(exact_quantile(&v, 1.5), None);
    }

    #[test]
    fn exact_is_order_independent() {
        let a = [3.0, 1.0, 4.0, 2.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_quantile(&a, 0.9), exact_quantile(&b, 0.9));
    }

    #[test]
    fn bucket_quantile_lands_in_the_right_bucket() {
        // 10 samples in (1, 2], 90 in (2, 4].
        let buckets = vec![(1.0, 0), (2.0, 10), (4.0, 100), (f64::INFINITY, 100)];
        let p05 = bucket_quantile(&buckets, 100, 0.05).unwrap();
        assert!((1.0..=2.0).contains(&p05), "p05 = {p05}");
        let p50 = bucket_quantile(&buckets, 100, 0.5).unwrap();
        assert!((2.0..=4.0).contains(&p50), "p50 = {p50}");
        // Interpolation: rank 50 is (50-10)/90 of the way through (2,4].
        assert!((p50 - (2.0 + 40.0 / 90.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn bucket_quantile_clamps_at_the_inf_bucket() {
        let buckets = vec![(1.0, 0), (2.0, 1), (f64::INFINITY, 2)];
        // Rank 2 lands in +Inf: clamp to the largest finite bound.
        assert_eq!(bucket_quantile(&buckets, 2, 1.0), Some(2.0));
    }

    #[test]
    fn estimate_prefers_the_reservoir_when_complete() {
        let reservoir = [1.0, 10.0, 100.0];
        let buckets = vec![(128.0, 3), (f64::INFINITY, 3)];
        // Exact path: 3 observations, all in the reservoir.
        assert_eq!(estimate(&buckets, 3, &reservoir, 0.5), Some(10.0));
        // Overflowed: count exceeds the reservoir, fall back to buckets.
        let est = estimate(&buckets, 4, &reservoir, 0.5).unwrap();
        assert!((0.0..=128.0).contains(&est));
        assert_eq!(estimate(&buckets, 0, &reservoir, 0.5), None);
    }
}
