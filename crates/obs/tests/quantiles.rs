//! Property tests for the histogram quantile estimators: interpolated
//! bucket quantiles bracket the true quantile within one bucket width
//! on known distributions, and the first-N reservoir makes small
//! series exact.
//!
//! Uses a local [`cumf_obs::Registry`] (not the process-global one) so
//! these tests stay independent of the global-state tests elsewhere.

use cumf_obs::quantile::{bucket_quantile, exact_quantile};
use cumf_obs::{bucket_range, Registry, SnapshotValue, RESERVOIR_CAPACITY};
use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

/// Checked quantiles: the exporter set.
const QS: &[f64] = &[0.5, 0.9, 0.99, 0.999];

fn record_all(registry: &Registry, name: &str, values: &[f64]) -> SnapshotValue {
    let h = registry.histogram(name, "test series");
    for &v in values {
        h.record(v);
    }
    registry
        .snapshot()
        .into_iter()
        .find(|m| m.name == name)
        .expect("histogram registered")
        .value
}

/// |est − true| must be within one bucket width of wherever the true
/// quantile lands (the documented contract of log2 interpolation).
fn assert_brackets(est: f64, truth: f64, label: &str) {
    let (lo, up) = bucket_range(truth.max(f64::MIN_POSITIVE));
    let width = up - lo;
    assert!(
        (est - truth).abs() <= width + 1e-12,
        "{label}: estimate {est} vs true {truth} (bucket [{lo}, {up}], width {width})"
    );
}

#[test]
fn bucket_quantiles_bracket_uniform_and_lognormal() {
    let registry = Registry::new();
    registry.set_enabled(true);
    let mut rng = ChaCha8Rng::seed_from_u64(2017);

    // Several shapes, all with n >> reservoir so the bucket path runs.
    let n = 20_000usize;
    let uniform: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 8.0 + 0.5).collect();
    let lognormal: Vec<f64> = (0..n)
        .map(|_| {
            // Sum of uniforms approximates a normal; exponentiate.
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            (0.4 * z).exp()
        })
        .collect();
    let exponential: Vec<f64> = (0..n)
        .map(|_| -(1.0 - rng.gen::<f64>()).ln() * 3e-3)
        .collect();

    for (label, values) in [
        ("uniform", &uniform),
        ("lognormal", &lognormal),
        ("exponential", &exponential),
    ] {
        let snap = record_all(&registry, &format!("test_{label}"), values);
        let SnapshotValue::Histogram { buckets, count, .. } = &snap else {
            panic!("not a histogram");
        };
        assert_eq!(*count, values.len() as u64);
        for &q in QS {
            let truth = exact_quantile(values, q).unwrap();
            let est = bucket_quantile(buckets, *count, q).unwrap();
            assert_brackets(est, truth, &format!("{label} p{}", q * 100.0));
        }
    }
}

#[test]
fn reservoir_makes_small_series_exact() {
    let registry = Registry::new();
    registry.set_enabled(true);
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    for n in [1usize, 2, 10, RESERVOIR_CAPACITY] {
        let values: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 100.0).collect();
        let name = format!("test_exact_{n}");
        let snap = record_all(&registry, &name, &values);
        for &q in QS {
            let truth = exact_quantile(&values, q).unwrap();
            let est = snap.quantile(q).expect("non-empty histogram");
            assert_eq!(
                est,
                truth,
                "n={n} p{}: reservoir must be exact, not bucket-rounded",
                q * 100.0
            );
        }
    }

    // One past the reservoir: estimates switch to buckets but stay
    // within the bracket contract.
    let values: Vec<f64> = (0..RESERVOIR_CAPACITY + 1)
        .map(|_| rng.gen::<f64>() * 100.0 + 1.0)
        .collect();
    let snap = record_all(&registry, "test_overflow", &values);
    for &q in QS {
        let truth = exact_quantile(&values, q).unwrap();
        let est = snap.quantile(q).unwrap();
        assert_brackets(est, truth, "overflowed reservoir");
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let registry = Registry::new();
    registry.set_enabled(true);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let values: Vec<f64> = (0..5_000).map(|_| (rng.gen::<f64>() * 6.0).exp()).collect();
    let snap = record_all(&registry, "test_monotone", &values);
    let qs: Vec<f64> = (1..100).map(|i| i as f64 / 100.0).collect();
    let mut prev = f64::NEG_INFINITY;
    for &q in &qs {
        let est = snap.quantile(q).unwrap();
        assert!(est >= prev, "p{} = {est} < p_prev = {prev}", q * 100.0);
        prev = est;
    }
}
