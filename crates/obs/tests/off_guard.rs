//! Overhead guard for the `off` cargo feature: with observability
//! compiled out, probes must register nothing, record nothing, and
//! `span()` must not allocate — verified with a counting allocator.
//!
//! The whole file is gated on the feature; run it with
//! `cargo test -p cumf-obs --features off --test off_guard`.
//! (The crate's unit tests assume the compiled-in configuration, so CI
//! runs only this target under `--features off`.)
#![cfg(feature = "off")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting this thread's allocations, so
/// parallel test threads cannot perturb the probe.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn off_feature_compiles_probes_to_nothing() {
    // Even an explicit opt-in cannot turn recording back on.
    cumf_obs::set_enabled(true);
    assert!(!cumf_obs::enabled(), "off build must never enable");

    // Metric registration returns detached handles: no registry entries.
    let counter = cumf_obs::counter("off_guard_counter", "never registered");
    let gauge = cumf_obs::gauge("off_guard_gauge", "never registered");
    let histogram = cumf_obs::histogram("off_guard_histogram", "never registered");
    counter.add(41);
    counter.inc();
    gauge.set(17.0);
    histogram.record(0.25);
    assert_eq!(
        cumf_obs::registry().snapshot().len(),
        0,
        "off build must keep the registry empty"
    );
    assert_eq!(counter.get(), 0, "detached counter stays at zero");

    // Spans record nothing…
    {
        let mut span = cumf_obs::span("guard", "warmup");
        span.set_arg("x", 1.0);
    }
    assert!(cumf_obs::tracer().events().is_empty());

    // …and (after the warmup above has paid any lazy global init) the
    // hot path allocates nothing: the guard returns before the span
    // name is converted to a String.
    let allocs = allocations_during(|| {
        for i in 0..64 {
            let mut span = cumf_obs::span("guard", "hot-path");
            span.set_arg("i", i as f64);
            counter.inc();
            histogram.record(i as f64);
        }
    });
    assert_eq!(allocs, 0, "span()/probes must not allocate when off");

    // Exporters render the empty state without inventing series.
    assert_eq!(cumf_obs::prometheus(), "");
    assert!(cumf_obs::chrome_trace().contains("\"traceEvents\""));
}
