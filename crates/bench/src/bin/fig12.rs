//! Regenerates the paper's Fig 12 (cuMF_SGD vs cuMF_ALS).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::multi::fig12().finish();
}
