//! Regenerates the paper's Fig 9 (RMSE vs training time, all systems).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::comparison::fig09().finish();
}
