//! Regenerates the paper's Fig 2(a) (LIBMF effective bandwidth).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::characterization::fig02a().finish();
}
