//! Regenerates the paper's Fig 15 (feasible block update orders).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::convergence::fig15().finish();
}
