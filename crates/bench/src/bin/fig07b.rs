//! Regenerates the paper's Fig 7(b) (scheduling-scheme convergence).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::scheduling::fig07b().finish();
}
