//! Regenerates the paper's Fig 10 (updates/s and achieved bandwidth).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::comparison::fig10().finish();
}
