//! Regenerates the paper's Table 2 (data sets).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::characterization::tab02().finish();
}
