//! Ablation/extension experiment: see `cumf_bench::experiments::ablations`.
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::ablations::abl_overlap().finish();
}
