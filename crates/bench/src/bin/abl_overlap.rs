//! Ablation/extension experiment: see `cumf_bench::experiments::ablations`.
fn main() {
    cumf_bench::experiments::ablations::abl_overlap().finish();
}
