//! Regenerates the paper's Fig 13 (partitioned Hogwild! convergence limits).
fn main() {
    cumf_bench::experiments::convergence::fig13().finish();
}
