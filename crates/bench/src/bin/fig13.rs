//! Regenerates the paper's Fig 13 (partitioned Hogwild! convergence limits).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::convergence::fig13().finish();
}
