//! Regenerates the paper's Table 5 (updates/s, BIDMach vs cuMF_SGD).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::comparison::tab05().finish();
}
