//! Regenerates the paper's Fig 16 (Yahoo!Music on 1 vs 2 GPUs).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::multi::fig16().finish();
}
