//! Regenerates the paper's Table 4 (time-to-RMSE speedups).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::comparison::tab04().finish();
}
