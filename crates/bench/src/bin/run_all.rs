//! Runs the complete evaluation: every table and figure, in paper order.
use cumf_bench::experiments as ex;

fn main() {
    cumf_bench::init_observability();
    let t0 = std::time::Instant::now();
    ex::machine::machine().finish();
    ex::characterization::eq05().finish();
    ex::characterization::tab02().finish();
    ex::characterization::fig02a().finish();
    ex::characterization::fig02b().finish();
    ex::scheduling::fig05b().finish();
    ex::scheduling::fig07a().finish();
    ex::scheduling::fig07b().finish();
    ex::comparison::fig09().finish();
    ex::comparison::tab04().finish();
    ex::comparison::tab05().finish();
    ex::comparison::fig10().finish();
    ex::comparison::fig11().finish();
    ex::multi::fig12().finish();
    ex::convergence::fig13().finish();
    ex::convergence::fig14().finish();
    ex::convergence::fig15().finish();
    ex::multi::fig16().finish();
    ex::ablations::abl_batch().finish();
    ex::ablations::abl_precision().finish();
    ex::ablations::abl_overlap().finish();
    ex::ablations::ext_adagrad().finish();
    println!(
        "\nall experiments done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
