//! Regenerates the paper's Fig 2(b) (NOMAD memory efficiency).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::characterization::fig02b().finish();
}
