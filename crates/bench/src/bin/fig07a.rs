//! Regenerates the paper's Fig 7(a) (batch-Hogwild!/wavefront scalability).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::scheduling::fig07a().finish();
}
