//! Regenerates the paper's Fig 5(b) (LIBMF scheduler saturation).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::scheduling::fig05b().finish();
}
