//! Regenerates the paper's Fig 11 (cross-generation GPU scalability).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::comparison::fig11().finish();
}
