//! Regenerates the paper's Fig 14 (LIBMF blocking convergence).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::convergence::fig14().finish();
}
