//! Regenerates the paper's Eq. 5 Flops/Byte characterisation (§2.3).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::characterization::eq05().finish();
}
