//! Machine-model context report (rooflines, occupancy, attainable rates).
fn main() {
    cumf_bench::experiments::machine::machine().finish();
}
