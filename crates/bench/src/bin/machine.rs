//! Machine-model context report (rooflines, occupancy, attainable rates).
fn main() {
    cumf_bench::init_observability();
    cumf_bench::experiments::machine::machine().finish();
}
