//! A minimal JSON subset: writer helpers plus a recursive-descent
//! parser, enough for the `BENCH_*.json` schema without pulling a
//! serialization dependency into the offline workspace.
//!
//! Writing is deterministic: keys are emitted in insertion order and
//! numbers use Rust's shortest-round-trip `Display` (which never emits
//! exponent notation, so the output stays valid JSON as long as values
//! are finite — [`num`] maps non-finite input to `null`). Parsing
//! accepts standard JSON numbers (including exponents) and the escape
//! sequences the writer produces.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes and quotes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a number; non-finite values become `null` (JSON has no
/// NaN/Inf literals).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad codepoint at byte {}", *pos))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            b => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_bench_shapes() {
        let text = r#"{"schema": "cumf-bench/1", "trials": 3,
            "metrics": [{"id": "x", "median": 1.25, "samples": [1.0, 1.25, 1.5]}],
            "quick": true, "note": null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("cumf-bench/1"));
        assert_eq!(v.get("trials").unwrap().as_f64(), Some(3.0));
        let metrics = v.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics[0].get("median").unwrap().as_f64(), Some(1.25));
        assert_eq!(
            metrics[0].get("samples").unwrap().as_arr().unwrap().len(),
            3
        );
        assert_eq!(v.get("quick"), Some(&Json::Bool(true)));
        assert_eq!(v.get("note"), Some(&Json::Null));
    }

    #[test]
    fn writer_output_parses_back() {
        let s = format!(
            "{{{}: {}, {}: {}}}",
            quote("a\"b\\c\nd"),
            num(0.1 + 0.2),
            quote("inf"),
            num(f64::INFINITY)
        );
        let v = parse(&s).unwrap();
        assert_eq!(v.get("a\"b\\c\nd").unwrap().as_f64(), Some(0.1 + 0.2));
        assert_eq!(v.get("inf"), Some(&Json::Null));
    }

    #[test]
    fn numbers_with_exponents_parse() {
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(parse("-2E-2").unwrap().as_f64(), Some(-0.02));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }
}
