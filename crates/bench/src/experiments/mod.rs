//! Experiment implementations, one function per paper table/figure.
//!
//! Binaries under `src/bin/` are thin wrappers over these functions so
//! `run_all` can execute the full evaluation in-process.
//!
//! ## Scaling protocol
//!
//! Convergence experiments run on scaled synthetic stand-ins (see
//! `cumf_data::presets`); *throughput and epoch-time* numbers come from
//! the calibrated machine models evaluated at the **full paper scale**
//! (Table 2 sample counts — the models only need counts). A figure's time
//! axis is therefore `epochs(scaled convergence) × epoch_seconds(full
//! scale)`, the same decomposition the paper's own analysis uses.

pub mod ablations;
pub mod characterization;
pub mod comparison;
pub mod convergence;
pub mod machine;
pub mod multi;
pub mod scheduling;

use cumf_baselines::{BidmachPerfModel, NomadPerfModel};
use cumf_core::lrate::Schedule;
use cumf_data::presets::DatasetSpec;
use cumf_data::synth::SynthDataset;
use cumf_data::{HUGEWIKI, NETFLIX, YAHOO_MUSIC};
use cumf_gpu_sim::pipeline::{overlapped, BlockJob};
use cumf_gpu_sim::{CpuCacheModel, GpuSpec, LinkSpec, SgdUpdateCost, XEON_E5_2670X2};

/// Feature dimension for scaled convergence runs.
pub const SCALED_K: u32 = 16;

/// Learning-rate schedule for scaled runs (gentler decay than Table 3's —
/// scaled data converges in fewer, larger steps).
pub fn scaled_schedule() -> Schedule {
    Schedule::paper_default(0.1, 0.1)
}

/// Regularisation for scaled runs.
pub const SCALED_LAMBDA: f32 = 0.02;

/// Scaled stand-in for a paper data set (Hugewiki scales 0.1%, others 1%).
pub fn scaled_dataset(spec: &DatasetSpec, seed: u64) -> SynthDataset {
    let scale = if spec.name == "Hugewiki" {
        0.0002
    } else {
        0.01
    };
    spec.scaled(scale, SCALED_K, seed)
}

/// Convergence target on scaled data: 0.08 above the known noise floor
/// (the analogue of Table 4's 0.92 / 22.0 / 0.52 targets — a "reasonable
/// RMSE" every evaluated system can reach, near but not at each one's
/// plateau).
pub fn scaled_target(d: &SynthDataset) -> f64 {
    d.rmse_floor + 0.08
}

/// cuMF_SGD epoch seconds at full paper scale on `gpu`: roofline when the
/// data fits in device memory, the §6.2 overlapped staging pipeline when
/// it does not (Hugewiki).
pub fn cumf_epoch_secs(spec: &DatasetSpec, gpu: &GpuSpec, link: &LinkSpec) -> f64 {
    let cost = SgdUpdateCost::cumf(spec.k);
    let bw = gpu.effective_bw(gpu.max_workers());
    let footprint = spec.train_bytes() + spec.feature_bytes(2);
    if footprint <= gpu.mem_bytes {
        return spec.train as f64 * cost.bytes() as f64 / bw + gpu.launch_overhead_s;
    }
    // Out-of-core: the paper's Hugewiki setup — 64×1 blocks staged through
    // the link with transfer/compute overlap.
    let blocks = 64u64;
    let samples_per_block = spec.train as f64 / blocks as f64;
    let seg_bytes = (spec.m as f64 / blocks as f64 + spec.n as f64) * spec.k as f64 * 2.0;
    let jobs: Vec<BlockJob> = (0..blocks)
        .map(|_| BlockJob {
            h2d_bytes: samples_per_block * 12.0 + seg_bytes,
            compute_bytes: samples_per_block * cost.bytes() as f64,
            d2h_bytes: seg_bytes,
        })
        .collect();
    overlapped(&jobs, gpu, link, gpu.max_workers()).makespan
}

/// LIBMF epoch seconds at full paper scale (40 threads, a = 100).
pub fn libmf_epoch_secs(spec: &DatasetSpec) -> f64 {
    let cost = SgdUpdateCost::cpu_f32(spec.k);
    let bw =
        CpuCacheModel::calibrated(XEON_E5_2670X2).libmf_effective_bw(spec.m, spec.n, 100, spec.k);
    spec.train as f64 * cost.bytes() as f64 / bw
}

/// NOMAD epoch seconds at full paper scale on `nodes` HPC nodes.
pub fn nomad_epoch_secs(spec: &DatasetSpec, nodes: u32) -> f64 {
    NomadPerfModel::hpc_cluster().epoch_seconds(spec.m, spec.n, spec.train, spec.k, nodes)
}

/// The node counts the paper runs NOMAD with (32, or 64 for Hugewiki).
pub fn nomad_nodes(spec: &DatasetSpec) -> u32 {
    if spec.name == "Hugewiki" {
        64
    } else {
        32
    }
}

/// BIDMach epoch seconds at full paper scale, `None` when the data set
/// exceeds device memory (the paper could not run BIDMach on Hugewiki).
pub fn bidmach_epoch_secs(spec: &DatasetSpec, gpu: &GpuSpec) -> Option<f64> {
    // BIDMach stores f32 features and needs the full problem resident.
    let footprint = spec.train_bytes() + spec.feature_bytes(4) * 2;
    if footprint > gpu.mem_bytes {
        return None;
    }
    Some(BidmachPerfModel::default().epoch_seconds(gpu, spec.k, spec.train))
}

/// The three paper data sets.
pub fn all_specs() -> [&'static DatasetSpec; 3] {
    [&NETFLIX, &YAHOO_MUSIC, &HUGEWIKI]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_gpu_sim::{NVLINK, P100_PASCAL, PCIE3_X16, TITAN_X_MAXWELL};

    #[test]
    fn netflix_fits_hugewiki_does_not() {
        let netflix = cumf_epoch_secs(&NETFLIX, &TITAN_X_MAXWELL, &PCIE3_X16);
        // Roofline: 99 M * 1036 B / 266 GB/s ~ 0.386 s.
        assert!((netflix - 0.386).abs() < 0.02, "netflix epoch {netflix}");
        let hugewiki = cumf_epoch_secs(&HUGEWIKI, &TITAN_X_MAXWELL, &PCIE3_X16);
        // Staged epoch: ~12-16 s on Maxwell (compute ~12 s + imperfect
        // overlap of ~11 s of transfers).
        assert!(
            hugewiki > 10.0 && hugewiki < 30.0,
            "hugewiki epoch {hugewiki}"
        );
    }

    #[test]
    fn pascal_shrinks_hugewiki_epoch_more_than_flat() {
        // §7.3: the NVLink platform gains most on the transfer-bound
        // Hugewiki (28.2X total vs 6.8X on Maxwell relative to LIBMF).
        let m = cumf_epoch_secs(&HUGEWIKI, &TITAN_X_MAXWELL, &PCIE3_X16);
        let p = cumf_epoch_secs(&HUGEWIKI, &P100_PASCAL, &NVLINK);
        let hw_gain = m / p;
        let nf_gain = cumf_epoch_secs(&NETFLIX, &TITAN_X_MAXWELL, &PCIE3_X16)
            / cumf_epoch_secs(&NETFLIX, &P100_PASCAL, &NVLINK);
        assert!(
            hw_gain > nf_gain,
            "hugewiki gain {hw_gain} vs netflix {nf_gain}"
        );
    }

    #[test]
    fn libmf_epoch_times_match_table4_magnitudes() {
        // Table 4: LIBMF needs 23 s (Netflix) and 3020 s (Hugewiki) to
        // converge; at ~20-50 epochs that's ~1 s and ~60 s per epoch.
        let netflix = libmf_epoch_secs(&NETFLIX);
        assert!(netflix > 0.7 && netflix < 1.5, "netflix {netflix}");
        let hugewiki = libmf_epoch_secs(&HUGEWIKI);
        assert!(hugewiki > 40.0 && hugewiki < 90.0, "hugewiki {hugewiki}");
    }

    #[test]
    fn bidmach_oom_on_hugewiki() {
        assert!(bidmach_epoch_secs(&HUGEWIKI, &TITAN_X_MAXWELL).is_none());
        assert!(bidmach_epoch_secs(&NETFLIX, &TITAN_X_MAXWELL).is_some());
        assert!(bidmach_epoch_secs(&HUGEWIKI, &P100_PASCAL).is_none());
    }

    #[test]
    fn scaled_datasets_are_reasonable() {
        for spec in all_specs() {
            let d = scaled_dataset(spec, 7);
            assert!(d.train.nnz() > 50_000, "{}: {}", spec.name, d.train.nnz());
            assert!(d.train.nnz() < 1_200_000);
            assert!(scaled_target(&d) > d.rmse_floor);
        }
    }
}
