//! Scheduling-policy experiments: Fig 5(b), Fig 7(a), Fig 7(b).

use cumf_core::solver::{train, Scheme, SolverConfig};
use cumf_data::NETFLIX;
use cumf_gpu_sim::{
    simulate_throughput, CpuCacheModel, SchedulerModel, SgdUpdateCost, ThroughputConfig,
    TITAN_X_MAXWELL, XEON_E5_2670X2,
};

use crate::report::{fmt_si, Report};

use super::{scaled_dataset, scaled_schedule, SCALED_K, SCALED_LAMBDA};

/// Calibrated scheduling-cost constants (see `cumf_gpu_sim::executor`):
/// LIBMF's O(a²) table scan on the CPU saturates ~30 threads; the O(a)
/// variant on the GPU saturates ~240 blocks (Fig 5b).
const CPU_TABLE_PER_ENTRY_S: f64 = 15e-9;
const GPU_SCAN_PER_ENTRY_S: f64 = 0.6e-6;

/// Fig 5(b): LIBMF's scheduler saturates far below the hardware limit.
pub fn fig05b() -> Report {
    let mut r = Report::new(
        "fig05b",
        "Fig 5(b) — LIBMF table scheduling saturates (~30 CPU threads / ~240 GPU blocks)",
        &["system", "workers", "updates_per_s", "sched_utilisation"],
    );
    let cost_cpu = SgdUpdateCost::cpu_f32(NETFLIX.k);
    let cache = CpuCacheModel::calibrated(XEON_E5_2670X2);
    let cpu_bw = cache.libmf_effective_bw(NETFLIX.m, NETFLIX.n, 100, NETFLIX.k);
    for workers in [1u32, 2, 4, 8, 16, 24, 30, 36, 40, 48] {
        // CPU bandwidth scales with threads up to the socket limit.
        let bw = cpu_bw * (workers as f64 / 40.0).min(1.0);
        let res = simulate_throughput(&ThroughputConfig {
            workers,
            total_bandwidth: bw,
            cost: cost_cpu,
            scheduler: SchedulerModel::GlobalTable {
                a: 100,
                per_entry_s: CPU_TABLE_PER_ENTRY_S,
            },
            total_updates: NETFLIX.train,
        });
        r.row(vec![
            "LIBMF (CPU)".into(),
            workers.to_string(),
            fmt_si(res.updates_per_sec),
            format!("{:.2}", res.scheduler_utilisation),
        ]);
    }
    let cost_gpu = SgdUpdateCost::cumf(NETFLIX.k);
    for workers in [32u32, 64, 128, 192, 240, 320, 480, 640, 768] {
        let res = simulate_throughput(&ThroughputConfig {
            workers,
            total_bandwidth: TITAN_X_MAXWELL.effective_bw(workers),
            cost: cost_gpu,
            scheduler: SchedulerModel::RowColScan {
                a: 100,
                per_entry_s: GPU_SCAN_PER_ENTRY_S,
            },
            total_updates: NETFLIX.train,
        });
        r.row(vec![
            "LIBMF-GPU (O(a) scan)".into(),
            workers.to_string(),
            fmt_si(res.updates_per_sec),
            format!("{:.2}", res.scheduler_utilisation),
        ]);
    }
    r
}

/// Fig 7(a): batch-Hogwild! and wavefront-update scale near-linearly to
/// the 768-worker hardware limit, reaching ~0.27 G updates/s on Maxwell.
pub fn fig07a() -> Report {
    let mut r = Report::new(
        "fig07a",
        "Fig 7(a) — batch-Hogwild!/wavefront scalability on Maxwell (paper: ~0.27 G/s at 768)",
        &["scheme", "workers", "updates_per_s", "of_roofline"],
    );
    let cost = SgdUpdateCost::cumf(NETFLIX.k);
    for workers in [32u32, 64, 128, 192, 256, 384, 512, 640, 768] {
        let bw = TITAN_X_MAXWELL.effective_bw(workers);
        let roof = cost.updates_per_sec(bw);
        let bh = simulate_throughput(&ThroughputConfig {
            workers,
            total_bandwidth: bw,
            cost,
            scheduler: SchedulerModel::BatchHogwild {
                batch: 256,
                per_batch_overhead_s: 50e-9,
            },
            total_updates: NETFLIX.train,
        });
        r.row(vec![
            "batch-Hogwild!".into(),
            workers.to_string(),
            fmt_si(bh.updates_per_sec),
            format!("{:.3}", bh.updates_per_sec / roof),
        ]);
        let wf = simulate_throughput(&ThroughputConfig {
            workers,
            total_bandwidth: bw,
            cost,
            scheduler: SchedulerModel::Wavefront {
                grid_cols: workers * 4,
                per_block_overhead_s: 100e-9,
                imbalance: 0.08,
            },
            total_updates: NETFLIX.train,
        });
        r.row(vec![
            "wavefront".into(),
            workers.to_string(),
            fmt_si(wf.updates_per_sec),
            format!("{:.3}", wf.updates_per_sec / roof),
        ]);
    }
    r
}

/// Fig 7(b): convergence of the two schemes — batch-Hogwild! slightly
/// ahead of wavefront-update thanks to more randomness in update order.
pub fn fig07b() -> Report {
    let mut r = Report::new(
        "fig07b",
        "Fig 7(b) — Test RMSE per epoch: batch-Hogwild! vs wavefront (Netflix-like)",
        &["scheme", "epoch", "rmse"],
    );
    let d = scaled_dataset(&NETFLIX, crate::SEED);
    let workers = 16u32;
    let mk = |scheme| SolverConfig {
        k: SCALED_K,
        lambda: SCALED_LAMBDA,
        schedule: scaled_schedule(),
        epochs: 25,
        scheme,
        seed: crate::SEED,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let bh = train::<f32>(
        &d.train,
        &d.test,
        &mk(Scheme::BatchHogwild {
            workers,
            batch: 256,
        }),
        None,
    );
    let wf = train::<f32>(
        &d.train,
        &d.test,
        &mk(Scheme::Wavefront {
            workers,
            cols: workers * 4,
        }),
        None,
    );
    for p in &bh.trace.points {
        r.row(vec![
            "batch-Hogwild!".into(),
            p.epoch.to_string(),
            format!("{:.5}", p.rmse),
        ]);
    }
    for p in &wf.trace.points {
        r.row(vec![
            "wavefront".into(),
            p.epoch.to_string(),
            format!("{:.5}", p.rmse),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(r: &Report, system: &str) -> Vec<(u32, f64)> {
        r.rows
            .iter()
            .filter(|row| row[0] == system)
            .map(|row| {
                let w: u32 = row[1].parse().unwrap();
                let v = parse_si(&row[2]);
                (w, v)
            })
            .collect()
    }

    fn parse_si(s: &str) -> f64 {
        if let Some(x) = s.strip_suffix('G') {
            x.parse::<f64>().unwrap() * 1e9
        } else if let Some(x) = s.strip_suffix('M') {
            x.parse::<f64>().unwrap() * 1e6
        } else if let Some(x) = s.strip_suffix('k') {
            x.parse::<f64>().unwrap() * 1e3
        } else {
            s.parse().unwrap()
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig05b_cpu_saturates_near_30_threads() {
        let r = fig05b();
        let cpu = series(&r, "LIBMF (CPU)");
        let at = |w: u32| cpu.iter().find(|(x, _)| *x == w).unwrap().1;
        // Still growing to 30, flat after.
        assert!(at(30) > at(16) * 1.2);
        assert!(at(48) < at(30) * 1.25, "48t {} vs 30t {}", at(48), at(30));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig05b_gpu_scan_saturates_near_240_blocks() {
        let r = fig05b();
        let gpu = series(&r, "LIBMF-GPU (O(a) scan)");
        let at = |w: u32| gpu.iter().find(|(x, _)| *x == w).unwrap().1;
        assert!(at(240) > at(128) * 1.3);
        assert!(
            at(768) < at(240) * 1.3,
            "768 {} vs 240 {}",
            at(768),
            at(240)
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig07a_hits_the_papers_headline_rate() {
        let r = fig07a();
        let bh = series(&r, "batch-Hogwild!");
        let at768 = bh.iter().find(|(w, _)| *w == 768).unwrap().1;
        // Paper: ~0.27 billion updates/s on Maxwell.
        assert!(
            (at768 - 0.27e9).abs() / 0.27e9 < 0.08,
            "batch-hogwild at 768 = {at768:e}"
        );
        let wf = series(&r, "wavefront");
        let wf768 = wf.iter().find(|(w, _)| *w == 768).unwrap().1;
        assert!(wf768 > at768 * 0.85, "wavefront close behind: {wf768:e}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig07b_batch_hogwild_converges_slightly_faster() {
        let r = fig07b();
        let final_of = |s: &str| {
            r.rows.iter().rfind(|row| row[0] == s).unwrap()[2]
                .parse::<f64>()
                .unwrap()
        };
        let bh = final_of("batch-Hogwild!");
        let wf = final_of("wavefront");
        assert!(bh < 0.22 && wf < 0.22, "both converge: {bh} {wf}");
        assert!(
            bh < wf * 1.15,
            "batch-hogwild {bh} at least on par with wavefront {wf}"
        );
    }
}
