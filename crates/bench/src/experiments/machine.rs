//! Machine-model context report: the roofline and occupancy numbers every
//! other experiment builds on (§2.3 and §4 of the paper), gathered in one
//! table for EXPERIMENTS.md.

use cumf_gpu_sim::occupancy::{blocks_per_sm, KernelFootprint, SM_MAXWELL, SM_PASCAL};
use cumf_gpu_sim::roofline::Roofline;
use cumf_gpu_sim::{SgdUpdateCost, P100_PASCAL, TITAN_X_MAXWELL, XEON_E5_2670X2};

use crate::report::{fmt_si, Report};

/// The machine-model summary: rooflines, ridges, occupancy-derived worker
/// limits, and the attainable SGD rates they imply.
pub fn machine() -> Report {
    let mut r = Report::new(
        "machine",
        "Machine models — rooflines, occupancy, attainable SGD rates",
        &[
            "machine",
            "peak_flops",
            "eff_bw_gbs",
            "ridge_f_per_b",
            "workers",
            "sgd_updates_per_s(k=128,f16)",
        ],
    );
    let cost = SgdUpdateCost::cumf(128);
    for (name, roofline, workers) in [
        (
            "TITAN X (Maxwell)",
            Roofline::for_gpu(&TITAN_X_MAXWELL),
            blocks_per_sm(&KernelFootprint::CUMF_SGD, &SM_MAXWELL) * TITAN_X_MAXWELL.sms,
        ),
        (
            "P100 (Pascal)",
            Roofline::for_gpu(&P100_PASCAL),
            blocks_per_sm(&KernelFootprint::CUMF_SGD, &SM_PASCAL) * P100_PASCAL.sms,
        ),
        ("2x Xeon E5-2670", Roofline::for_cpu(&XEON_E5_2670X2), 48),
    ] {
        r.row(vec![
            name.into(),
            fmt_si(roofline.peak_flops),
            format!("{:.1}", roofline.peak_bandwidth / 1e9),
            format!("{:.1}", roofline.ridge()),
            workers.to_string(),
            fmt_si(roofline.updates_per_sec(&cost)),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_report_reproduces_worker_limits_and_rates() {
        let r = machine();
        let row = |name: &str| {
            r.rows
                .iter()
                .find(|row| row[0] == name)
                .unwrap_or_else(|| panic!("row {name}"))
        };
        assert_eq!(row("TITAN X (Maxwell)")[4], "768");
        assert_eq!(row("P100 (Pascal)")[4], "1792");
        // Every machine's ridge is far above SGD-MF's 0.43 flops/byte.
        for machine_row in &r.rows {
            let ridge: f64 = machine_row[3].parse().unwrap();
            assert!(ridge > 5.0, "{}: ridge {ridge}", machine_row[0]);
        }
    }
}
