//! Cross-system comparison experiments: Fig 9, Fig 10, Fig 11,
//! Table 4, Table 5.

use cumf_baselines::{
    train_bidmach, train_libmf, train_nomad, BidmachConfig, BidmachPerfModel, LibmfConfig,
    NomadConfig,
};
use cumf_core::metrics::Trace;
use cumf_core::solver::{train, Scheme, SolverConfig};
use cumf_data::presets::DatasetSpec;
use cumf_data::NETFLIX;
use cumf_gpu_sim::{
    simulate_throughput, CpuCacheModel, SchedulerModel, SgdUpdateCost, ThroughputConfig, NVLINK,
    P100_PASCAL, PCIE3_X16, TITAN_X_MAXWELL, XEON_E5_2670X2,
};

use crate::report::{fmt_si, Report};

use super::{
    all_specs, bidmach_epoch_secs, cumf_epoch_secs, libmf_epoch_secs, nomad_epoch_secs,
    nomad_nodes, scaled_dataset, scaled_schedule, scaled_target, SCALED_K, SCALED_LAMBDA,
};

/// Epochs to run each scaled convergence experiment.
const EPOCHS: u32 = 50;

/// One solver's contribution to Fig 9 / Table 4: its scaled convergence
/// trace plus the full-scale epoch time that converts epochs to seconds.
pub struct SystemRun {
    /// Display name as used in the paper's legends.
    pub system: &'static str,
    /// Scaled convergence trace (epoch-indexed).
    pub trace: Trace,
    /// Full-paper-scale seconds per epoch (`None` = could not run, like
    /// BIDMach on Hugewiki).
    pub epoch_secs: Option<f64>,
}

impl SystemRun {
    /// Full-scale time to reach the scaled convergence target.
    pub fn time_to_target(&self, target: f64) -> Option<f64> {
        let epochs = self.trace.epochs_to_rmse(target)?;
        Some(self.epoch_secs? * epochs as f64)
    }
}

/// Runs every system of §7.2 on a scaled stand-in of `spec`, attaching
/// full-scale epoch times.
pub fn run_all_systems(spec: &DatasetSpec) -> (f64, Vec<SystemRun>) {
    let d = scaled_dataset(spec, crate::SEED);
    let target = scaled_target(&d);
    let mut runs = Vec::new();

    // -- LIBMF (40 threads, a = 100 at paper scale; a scaled grid here).
    let a = 20u32.min(d.train.cols() / 2).max(2);
    let mut libmf_cfg = LibmfConfig::new(SCALED_K, 8, a);
    libmf_cfg.lambda = SCALED_LAMBDA;
    libmf_cfg.epochs = EPOCHS;
    libmf_cfg.seed = crate::SEED;
    let libmf = train_libmf(&d.train, &d.test, &libmf_cfg, XEON_E5_2670X2);
    runs.push(SystemRun {
        system: "LIBMF",
        trace: libmf.result.trace.clone(),
        epoch_secs: Some(libmf_epoch_secs(spec)),
    });

    // -- NOMAD (32 nodes; 64 for Hugewiki).
    let nodes = nomad_nodes(spec);
    let mut nomad_cfg = NomadConfig::new(SCALED_K, 4);
    nomad_cfg.lambda = SCALED_LAMBDA;
    nomad_cfg.schedule = scaled_schedule();
    nomad_cfg.epochs = EPOCHS;
    nomad_cfg.seed = crate::SEED;
    let nomad = train_nomad(&d.train, &d.test, &nomad_cfg, None);
    runs.push(SystemRun {
        system: "NOMAD",
        trace: nomad.trace.clone(),
        epoch_secs: Some(nomad_epoch_secs(spec, nodes)),
    });

    // -- BIDMach on both GPUs (same convergence, different throughput).
    let mut bid_cfg = BidmachConfig::new(SCALED_K);
    bid_cfg.lambda = SCALED_LAMBDA;
    bid_cfg.epochs = EPOCHS;
    bid_cfg.seed = crate::SEED;
    let bid = train_bidmach(&d.train, &d.test, &bid_cfg, None);
    runs.push(SystemRun {
        system: "BIDMach-M",
        trace: bid.trace.clone(),
        epoch_secs: bidmach_epoch_secs(spec, &TITAN_X_MAXWELL),
    });
    runs.push(SystemRun {
        system: "BIDMach-P",
        trace: bid.trace.clone(),
        epoch_secs: bidmach_epoch_secs(spec, &P100_PASCAL),
    });

    // -- cuMF_SGD on both GPUs: batch-Hogwild!, f16 storage. Workers are
    // scaled to respect the §7.5 constraint on the scaled n.
    let safe = (d.train.cols().min(d.train.rows()) / 20).max(2);
    let workers = 16u32.min(safe);
    let cumf_cfg = SolverConfig {
        k: SCALED_K,
        lambda: SCALED_LAMBDA,
        schedule: scaled_schedule(),
        epochs: EPOCHS,
        scheme: Scheme::BatchHogwild {
            workers,
            batch: 256,
        },
        seed: crate::SEED,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let cumf = train::<cumf_core::F16>(&d.train, &d.test, &cumf_cfg, None);
    runs.push(SystemRun {
        system: "cuMF_SGD-M",
        trace: cumf.trace.clone(),
        epoch_secs: Some(cumf_epoch_secs(spec, &TITAN_X_MAXWELL, &PCIE3_X16)),
    });
    runs.push(SystemRun {
        system: "cuMF_SGD-P",
        trace: cumf.trace,
        epoch_secs: Some(cumf_epoch_secs(spec, &P100_PASCAL, &NVLINK)),
    });

    (target, runs)
}

/// Fig 9: test RMSE vs (full-scale) training time for every system on all
/// three data sets.
pub fn fig09() -> Report {
    let mut r = Report::new(
        "fig09",
        "Fig 9 — Test RMSE vs training time (scaled convergence x full-scale epoch times)",
        &["dataset", "system", "epoch", "seconds", "rmse"],
    );
    for spec in all_specs() {
        let (_, runs) = run_all_systems(spec);
        for run in &runs {
            let Some(secs) = run.epoch_secs else {
                continue; // BIDMach OOM on Hugewiki
            };
            for p in &run.trace.points {
                r.row(vec![
                    spec.name.to_string(),
                    run.system.to_string(),
                    p.epoch.to_string(),
                    format!("{:.3}", secs * p.epoch as f64),
                    format!("{:.5}", p.rmse),
                ]);
            }
        }
    }
    r
}

/// Table 4: training time to the convergence target, normalised to LIBMF.
pub fn tab04() -> Report {
    let mut r = Report::new(
        "tab04",
        "Table 4 — time to target RMSE, speedup vs LIBMF \
         (paper: cuMF-M 3.1-6.8X, cuMF-P 7.0-28.2X)",
        &[
            "dataset",
            "system",
            "time_s",
            "speedup_vs_libmf",
            "paper_speedup",
        ],
    );
    // Paper Table 4 speedups for reference columns.
    let paper: &[(&str, [f64; 3])] = &[
        ("LIBMF", [1.0, 1.0, 1.0]),
        ("NOMAD", [2.4, 0.35, 6.6]),
        ("BIDMach-M", [1.24, 0.78, f64::NAN]),
        ("BIDMach-P", [1.53, 0.96, f64::NAN]),
        ("cuMF_SGD-M", [3.1, 4.3, 6.8]),
        ("cuMF_SGD-P", [7.0, 10.0, 28.2]),
    ];
    for (di, spec) in all_specs().iter().enumerate() {
        let (target, runs) = run_all_systems(spec);
        let libmf_time = runs
            .iter()
            .find(|r| r.system == "LIBMF")
            .and_then(|r| r.time_to_target(target))
            .expect("LIBMF must converge");
        for run in &runs {
            let time = run.time_to_target(target);
            let paper_speedup = paper
                .iter()
                .find(|(s, _)| *s == run.system)
                .map(|(_, v)| v[di])
                .unwrap_or(f64::NAN);
            r.row(vec![
                spec.name.to_string(),
                run.system.to_string(),
                time.map(|t| format!("{t:.1}"))
                    .unwrap_or_else(|| "-".into()),
                time.map(|t| format!("{:.2}", libmf_time / t))
                    .unwrap_or_else(|| "-".into()),
                if paper_speedup.is_nan() {
                    "-".into()
                } else {
                    format!("{paper_speedup:.2}")
                },
            ]);
        }
    }
    r
}

/// Table 5: achieved #Updates/s of BIDMach vs cuMF_SGD on both GPUs.
pub fn tab05() -> Report {
    let mut r = Report::new(
        "tab05",
        "Table 5 — #Updates/s (paper: BIDMach 21-33M; cuMF 256-267M on M, 613-710M on P)",
        &["dataset", "system", "updates_per_s", "paper"],
    );
    let paper_cumf_m = [267e6, 258e6, 256e6];
    let paper_cumf_p = [613e6, 634e6, 710e6];
    let paper_bid_m = [25.2e6, 21.6e6, f64::NAN];
    let paper_bid_p = [29.6e6, 32.3e6, f64::NAN];
    let pm = BidmachPerfModel::default();
    for (di, spec) in all_specs().iter().enumerate() {
        let bid = |gpu| bidmach_epoch_secs(spec, gpu).map(|_| pm.updates_per_sec(gpu, spec.k));
        for (system, rate, paper) in [
            ("BIDMach-M", bid(&TITAN_X_MAXWELL), paper_bid_m[di]),
            ("BIDMach-P", bid(&P100_PASCAL), paper_bid_p[di]),
            (
                "cuMF_SGD-M",
                Some(spec.train as f64 / cumf_epoch_secs(spec, &TITAN_X_MAXWELL, &PCIE3_X16)),
                paper_cumf_m[di],
            ),
            (
                "cuMF_SGD-P",
                Some(spec.train as f64 / cumf_epoch_secs(spec, &P100_PASCAL, &NVLINK)),
                paper_cumf_p[di],
            ),
        ] {
            r.row(vec![
                spec.name.to_string(),
                system.to_string(),
                rate.map(fmt_si).unwrap_or_else(|| "-".into()),
                if paper.is_nan() {
                    "-".into()
                } else {
                    fmt_si(paper)
                },
            ]);
        }
    }
    r
}

/// Fig 10: #Updates/s and achieved bandwidth of LIBMF vs cuMF_SGD-M/P per
/// data set — LIBMF collapses on big data, cuMF_SGD stays flat.
pub fn fig10() -> Report {
    let mut r = Report::new(
        "fig10",
        "Fig 10 — #Updates/s and achieved bandwidth per data set",
        &["dataset", "system", "updates_per_s", "achieved_bw_gbs"],
    );
    let cache = CpuCacheModel::calibrated(XEON_E5_2670X2);
    for spec in all_specs() {
        let libmf_bw = cache.libmf_effective_bw(spec.m, spec.n, 100, spec.k);
        let libmf_cost = SgdUpdateCost::cpu_f32(spec.k);
        r.row(vec![
            spec.name.to_string(),
            "LIBMF".into(),
            fmt_si(libmf_cost.updates_per_sec(libmf_bw)),
            format!("{:.1}", libmf_bw / 1e9),
        ]);
        let cost = SgdUpdateCost::cumf(spec.k);
        for (system, gpu, link) in [
            ("cuMF_SGD-M", &TITAN_X_MAXWELL, &PCIE3_X16),
            ("cuMF_SGD-P", &P100_PASCAL, &NVLINK),
        ] {
            let rate = spec.train as f64 / cumf_epoch_secs(spec, gpu, link);
            r.row(vec![
                spec.name.to_string(),
                system.into(),
                fmt_si(rate),
                format!("{:.1}", rate * cost.bytes() as f64 / 1e9),
            ]);
        }
    }
    r
}

/// Fig 11: #Updates/s and achieved bandwidth vs worker count on Maxwell
/// and Pascal (Netflix).
pub fn fig11() -> Report {
    let mut r = Report::new(
        "fig11",
        "Fig 11 — scalability across GPU generations (paper: 266 GB/s M, 567 GB/s P)",
        &["platform", "workers", "updates_per_s", "achieved_bw_gbs"],
    );
    let cost = SgdUpdateCost::cumf(NETFLIX.k);
    for (platform, gpu) in [("Maxwell", &TITAN_X_MAXWELL), ("Pascal", &P100_PASCAL)] {
        let max = gpu.max_workers();
        for frac in [1u32, 2, 4, 8, 12, 16, 20, 24, 28, 32] {
            let workers = (max * frac / 32).max(1);
            let res = simulate_throughput(&ThroughputConfig {
                workers,
                total_bandwidth: gpu.effective_bw(workers),
                cost,
                scheduler: SchedulerModel::BatchHogwild {
                    batch: 256,
                    per_batch_overhead_s: 50e-9,
                },
                total_updates: NETFLIX.train / 4,
            });
            r.row(vec![
                platform.into(),
                workers.to_string(),
                fmt_si(res.updates_per_sec),
                format!("{:.1}", res.achieved_bw / 1e9),
            ]);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn tab04_cumf_wins_everywhere_and_hugewiki_gap_is_large() {
        let r = tab04();
        let speedup = |ds: &str, system: &str| -> f64 {
            r.rows
                .iter()
                .find(|row| row[0] == ds && row[1] == system)
                .map(|row| row[3].parse().unwrap_or(f64::NAN))
                .unwrap()
        };
        for spec in all_specs() {
            let m = speedup(spec.name, "cuMF_SGD-M");
            let p = speedup(spec.name, "cuMF_SGD-P");
            assert!(m > 1.5, "{}: cuMF-M speedup {m}", spec.name);
            assert!(p > m, "{}: Pascal {p} must beat Maxwell {m}", spec.name);
        }
        // The paper's most dramatic number: 28.2X on Hugewiki with NVLink —
        // the Pascal/Maxwell gap is far larger there (transfer-bound).
        let m = speedup("Hugewiki", "cuMF_SGD-M");
        let p = speedup("Hugewiki", "cuMF_SGD-P");
        assert!(p / m > 2.0, "hugewiki Pascal/Maxwell gap: {p}/{m}");
    }

    #[test]
    fn tab05_reproduces_order_of_magnitude_gap() {
        let r = tab05();
        let get = |ds: &str, system: &str| -> f64 {
            let cell = &r
                .rows
                .iter()
                .find(|row| row[0] == ds && row[1] == system)
                .unwrap()[2];
            parse_si(cell)
        };
        let cumf_m = get("Netflix", "cuMF_SGD-M");
        let bid_m = get("Netflix", "BIDMach-M");
        assert!((cumf_m - 257e6).abs() / 257e6 < 0.1, "cuMF-M {cumf_m:e}");
        assert!(cumf_m / bid_m > 8.0, "order-of-magnitude gap");
        // Hugewiki BIDMach is absent.
        let hw_bid = &r
            .rows
            .iter()
            .find(|row| row[0] == "Hugewiki" && row[1] == "BIDMach-M")
            .unwrap()[2];
        assert_eq!(hw_bid, "-");
    }

    fn parse_si(s: &str) -> f64 {
        if let Some(x) = s.strip_suffix('G') {
            x.parse::<f64>().unwrap() * 1e9
        } else if let Some(x) = s.strip_suffix('M') {
            x.parse::<f64>().unwrap() * 1e6
        } else if let Some(x) = s.strip_suffix('k') {
            x.parse::<f64>().unwrap() * 1e3
        } else {
            s.parse().unwrap()
        }
    }

    #[test]
    fn fig10_cumf_flat_libmf_collapses() {
        let r = fig10();
        let bw = |ds: &str, system: &str| -> f64 {
            r.rows
                .iter()
                .find(|row| row[0] == ds && row[1] == system)
                .unwrap()[3]
                .parse()
                .unwrap()
        };
        let libmf_drop = bw("Hugewiki", "LIBMF") / bw("Netflix", "LIBMF");
        assert!(
            libmf_drop < 0.62,
            "LIBMF bandwidth must collapse: {libmf_drop}"
        );
        let cumf_drop = bw("Hugewiki", "cuMF_SGD-M") / bw("Netflix", "cuMF_SGD-M");
        assert!(
            cumf_drop > 0.45,
            "cuMF bandwidth varies less across data sets: {cumf_drop}"
        );
        assert!(cumf_drop > libmf_drop);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig11_achieves_papers_bandwidths() {
        let r = fig11();
        let last = |platform: &str| -> f64 {
            r.rows.iter().rfind(|row| row[0] == platform).unwrap()[3]
                .parse()
                .unwrap()
        };
        let m = last("Maxwell");
        let p = last("Pascal");
        assert!((m - 266.0).abs() < 15.0, "Maxwell bw {m}");
        assert!((p - 567.0).abs() < 30.0, "Pascal bw {p}");
    }
}
