//! ALS comparison and multi-GPU scaling: Fig 12, Fig 16.

use cumf_baselines::{train_als, AlsConfig, AlsTimeModel};
use cumf_core::solver::{train, Scheme, SolverConfig};
use cumf_data::presets::DatasetSpec;
use cumf_data::YAHOO_MUSIC;
use cumf_gpu_sim::pipeline::{overlapped, BlockJob};
use cumf_gpu_sim::{
    GpuSpec, LinkSpec, SgdUpdateCost, NVLINK, P100_PASCAL, PCIE3_X16, TITAN_X_MAXWELL,
};

use crate::report::Report;

use super::{all_specs, scaled_dataset, scaled_schedule, scaled_target, SCALED_K, SCALED_LAMBDA};

/// Multi-GPU parallel efficiency of cuMF_ALS (the paper runs it on up to
/// 4 GPUs; scaling is good but not perfect).
const ALS_MULTI_GPU_EFFICIENCY: f64 = 0.85;

/// Fig 12: cuMF_SGD (1 GPU) vs cuMF_ALS on 1 and 4 GPUs — SGD converges
/// ~4X faster than ALS-1 and roughly matches ALS-4.
pub fn fig12() -> Report {
    let mut r = Report::new(
        "fig12",
        "Fig 12 — cuMF_SGD (1 GPU) vs cuMF_ALS (1 and 4 GPUs), Maxwell",
        &["dataset", "system", "epoch", "seconds", "rmse"],
    );
    for spec in all_specs() {
        let d = scaled_dataset(spec, crate::SEED);

        // cuMF_SGD, 1 Maxwell GPU.
        let sgd_cfg = SolverConfig {
            k: SCALED_K,
            lambda: SCALED_LAMBDA,
            schedule: scaled_schedule(),
            epochs: 40,
            scheme: Scheme::BatchHogwild {
                workers: 8,
                batch: 256,
            },
            seed: crate::SEED,
            mode: None,
            divergence_ceiling: 1e3,
        };
        let sgd_epoch = super::cumf_epoch_secs(spec, &TITAN_X_MAXWELL, &PCIE3_X16);
        let sgd = train::<cumf_core::F16>(&d.train, &d.test, &sgd_cfg, None);
        for p in &sgd.trace.points {
            r.row(vec![
                spec.name.to_string(),
                "cuMF_SGD (1 GPU)".into(),
                p.epoch.to_string(),
                format!("{:.3}", sgd_epoch * p.epoch as f64),
                format!("{:.5}", p.rmse),
            ]);
        }

        // cuMF_ALS on 1 and 4 GPUs: same convergence path, scaled epoch
        // time.
        let als_cfg = AlsConfig {
            lambda: 0.01,
            epochs: 15,
            seed: crate::SEED,
            ..AlsConfig::new(SCALED_K)
        };
        let als = train_als(&d.train, &d.test, &als_cfg, None);
        let als_tm = AlsTimeModel::for_gpu(&TITAN_X_MAXWELL);
        let als_epoch_1 = als_tm.epoch_seconds(spec.m, spec.n, spec.train, spec.k);
        let als_epoch_4 = als_epoch_1 / (4.0 * ALS_MULTI_GPU_EFFICIENCY);
        for (system, epoch_secs) in [("cuMF_ALS-1", als_epoch_1), ("cuMF_ALS-4", als_epoch_4)] {
            for p in &als.trace.points {
                r.row(vec![
                    spec.name.to_string(),
                    system.into(),
                    p.epoch.to_string(),
                    format!("{:.3}", epoch_secs * p.epoch as f64),
                    format!("{:.5}", p.rmse),
                ]);
            }
        }
    }
    r
}

/// Full-scale epoch time of the partitioned multi-GPU solver: an i×j grid
/// of uniform blocks pipelined over `gpus` GPUs (the timing half of
/// `cumf_core::multi_gpu`, evaluated at paper scale).
pub fn partitioned_epoch_secs(
    spec: &DatasetSpec,
    grid_i: u32,
    grid_j: u32,
    gpus: u32,
    gpu: &GpuSpec,
    link: &LinkSpec,
) -> f64 {
    let cost = SgdUpdateCost::cumf(spec.k);
    let blocks = (grid_i * grid_j) as u64;
    let per_gpu = blocks.div_ceil(gpus as u64);
    let samples = spec.train as f64 / blocks as f64;
    let seg_bytes =
        (spec.m as f64 / grid_i as f64 + spec.n as f64 / grid_j as f64) * spec.k as f64 * 2.0;
    let jobs: Vec<BlockJob> = (0..per_gpu)
        .map(|_| BlockJob {
            h2d_bytes: samples * 12.0 + seg_bytes,
            compute_bytes: samples * cost.bytes() as f64,
            d2h_bytes: seg_bytes,
        })
        .collect();
    let pipeline = overlapped(&jobs, gpu, link, gpu.max_workers());
    // Wave-boundary synchronisation through host memory (sub-linear
    // scaling, §7.7).
    let sync = if gpus > 1 {
        per_gpu as f64 * (link.latency_s * gpus as f64 + seg_bytes / link.achieved_bw)
    } else {
        0.0
    };
    pipeline.makespan + sync
}

/// Fig 16: Yahoo!Music on 1 vs 2 Pascal GPUs (8×8 grid) — ~1.5X.
pub fn fig16() -> Report {
    let mut r = Report::new(
        "fig16",
        "Fig 16 — Yahoo!Music, 1 vs 2 Pascal GPUs (paper: 1.5X)",
        &["gpus", "epoch", "seconds", "rmse"],
    );
    let d = scaled_dataset(&YAHOO_MUSIC, crate::SEED);
    let target = scaled_target(&d);

    // Convergence on the scaled data (identical across GPU counts because
    // concurrently-scheduled blocks are independent).
    let cfg = SolverConfig {
        k: SCALED_K,
        lambda: SCALED_LAMBDA,
        schedule: scaled_schedule(),
        epochs: 40,
        scheme: Scheme::BatchHogwild {
            workers: 8,
            batch: 256,
        },
        seed: crate::SEED,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let run = train::<cumf_core::F16>(&d.train, &d.test, &cfg, None);

    let mut times = Vec::new();
    for gpus in [1u32, 2] {
        let epoch = partitioned_epoch_secs(&YAHOO_MUSIC, 8, 8, gpus, &P100_PASCAL, &NVLINK);
        for p in &run.trace.points {
            r.row(vec![
                gpus.to_string(),
                p.epoch.to_string(),
                format!("{:.4}", epoch * p.epoch as f64),
                format!("{:.5}", p.rmse),
            ]);
        }
        if let Some(e) = run.trace.epochs_to_rmse(target) {
            times.push((gpus, epoch * e as f64));
        }
    }
    if times.len() == 2 {
        println!(
            "fig16: time-to-target 1 GPU = {:.2}s, 2 GPUs = {:.2}s (speedup {:.2}X; paper 1.5X)",
            times[0].1,
            times[1].1,
            times[0].1 / times[1].1
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig12_reproduces_the_sgd_vs_als_tradeoff() {
        // The paper's Fig 12 is the net of two opposing forces: ALS needs
        // fewer epochs, SGD's epochs are several times cheaper. Both
        // forces must reproduce. The *net* ordering is data-dependent:
        // exact ALS solves our easy planted problems in unrealistically
        // few epochs (documented in EXPERIMENTS.md), so the net assertion
        // is a sanity band rather than the paper's exact 4X.
        let r = fig12();
        let series = |system: &str| -> Vec<(u32, f64, f64)> {
            r.rows
                .iter()
                .filter(|row| row[0] == "Netflix" && row[1] == system)
                .map(|row| {
                    (
                        row[2].parse().unwrap(),
                        row[3].parse().unwrap(),
                        row[4].parse().unwrap(),
                    )
                })
                .collect()
        };
        let first_below = |s: &[(u32, f64, f64)], target: f64| {
            s.iter().find(|(_, _, rmse)| *rmse <= target).copied()
        };
        let sgd = series("cuMF_SGD (1 GPU)");
        let als1 = series("cuMF_ALS-1");
        let als4 = series("cuMF_ALS-4");
        let target = 0.18;
        let (sgd_ep, sgd_t, _) = first_below(&sgd, target).expect("sgd converges");
        let (als_ep, als1_t, _) = first_below(&als1, target).expect("als converges");
        let (_, als4_t, _) = first_below(&als4, target).expect("als-4 converges");
        // Force 1: ALS needs no more epochs than SGD.
        assert!(als_ep <= sgd_ep, "ALS epochs {als_ep} vs SGD {sgd_ep}");
        // Force 2: an SGD epoch is several times cheaper than an ALS epoch.
        let sgd_epoch_t = sgd[0].1;
        let als_epoch_t = als1[0].1;
        assert!(
            als_epoch_t > 3.0 * sgd_epoch_t,
            "ALS epoch {als_epoch_t}s should dwarf SGD epoch {sgd_epoch_t}s"
        );
        // Net: SGD beats ALS-1 outright (measured ~1.7X here vs the
        // paper's ~4X — see EXPERIMENTS.md for why planted data narrows
        // it), and ALS-4 is faster than ALS-1 by construction.
        assert!(
            sgd_t < als1_t,
            "SGD must reach the target before ALS-1: {sgd_t} vs {als1_t}"
        );
        assert!(als4_t < als1_t);
        assert!(
            sgd_t < 10.0 * als4_t,
            "net times must stay comparable: sgd {sgd_t} als4 {als4_t}"
        );
    }

    #[test]
    fn fig16_two_gpus_sublinear_speedup() {
        let one = partitioned_epoch_secs(&YAHOO_MUSIC, 8, 8, 1, &P100_PASCAL, &NVLINK);
        let two = partitioned_epoch_secs(&YAHOO_MUSIC, 8, 8, 2, &P100_PASCAL, &NVLINK);
        let speedup = one / two;
        assert!(
            speedup > 1.2 && speedup < 2.0,
            "speedup {speedup} should be sub-linear, near the paper's 1.5X"
        );
    }
}
