//! Ablation studies of cuMF_SGD's design choices, beyond the paper's
//! figures:
//!
//! * `abl_batch` — the batch-Hogwild! fetch size `f` (§5.1 states values
//!   beyond the cache-line threshold "yield similar benefit"; f = 256 is
//!   chosen "without loss of generality");
//! * `abl_precision` — half- vs single-precision storage (§4's claim:
//!   halves bandwidth, no accuracy loss);
//! * `abl_overlap` — §6.2's transfer/compute overlap on/off;
//! * `ext_adagrad` — the paper's stated future work (§7.2: "cuMF_SGD can
//!   also use ADAGRAD or other learning rate schedulers"): per-coordinate
//!   ADAGRAD against the Eq. 9 decay schedule.

use cumf_baselines::{train_bidmach, BidmachConfig};
use cumf_core::solver::{train, Scheme, SolverConfig};
use cumf_core::F16;
use cumf_data::presets::DatasetSpec;
use cumf_data::NETFLIX;
use cumf_gpu_sim::pipeline::{overlapped, serial, BlockJob};
use cumf_gpu_sim::{
    simulate_throughput, Precision, RatingAccess, SchedulerModel, SgdUpdateCost, ThroughputConfig,
    NVLINK, P100_PASCAL, PCIE3_X16, TITAN_X_MAXWELL,
};

use crate::report::{fmt_si, Report};

use super::{scaled_dataset, scaled_schedule, SCALED_K, SCALED_LAMBDA};

/// Ablation: batch-Hogwild! fetch size `f`. Convergence (scaled run) and
/// throughput (DES at paper scale; random single-sample fetches drag full
/// cache lines — Eq. 8's locality argument).
pub fn abl_batch() -> Report {
    let mut r = Report::new(
        "abl_batch",
        "Ablation — batch-Hogwild! fetch size f (paper picks 256; >= ~11 suffices per Eq. 8)",
        &["f", "final_rmse", "updates_per_s", "bytes_per_update"],
    );
    let d = scaled_dataset(&NETFLIX, crate::SEED);
    for f in [1u32, 4, 16, 64, 256, 1024] {
        let cfg = SolverConfig {
            k: SCALED_K,
            lambda: SCALED_LAMBDA,
            schedule: scaled_schedule(),
            epochs: 25,
            scheme: Scheme::BatchHogwild {
                workers: 8,
                batch: f,
            },
            seed: crate::SEED,
            mode: None,
            divergence_ceiling: 1e3,
        };
        let run = train::<F16>(&d.train, &d.test, &cfg, None);
        // Throughput: below the cache-line threshold (~11 samples), each
        // fetch wastes most of a 128 B line.
        let line_threshold = 128 / 12 + 1;
        let cost = SgdUpdateCost {
            k: NETFLIX.k,
            precision: Precision::F16,
            rating_access: if f as usize >= line_threshold {
                RatingAccess::Streamed
            } else {
                RatingAccess::RandomLine { line_bytes: 128 }
            },
        };
        let res = simulate_throughput(&ThroughputConfig {
            workers: 768,
            total_bandwidth: TITAN_X_MAXWELL.effective_bw(768),
            cost,
            scheduler: SchedulerModel::BatchHogwild {
                batch: f.max(1),
                per_batch_overhead_s: 50e-9,
            },
            total_updates: NETFLIX.train / 8,
        });
        r.row(vec![
            f.to_string(),
            format!("{:.4}", run.trace.final_rmse().unwrap()),
            fmt_si(res.updates_per_sec),
            cost.bytes().to_string(),
        ]);
    }
    r
}

/// Ablation: storage precision (§4). Same convergence within noise, ~2X
/// the modelled throughput for f16.
pub fn abl_precision() -> Report {
    let mut r = Report::new(
        "abl_precision",
        "Ablation — f16 vs f32 feature storage (§4: half the bandwidth, no accuracy loss)",
        &[
            "precision",
            "final_rmse",
            "updates_per_s_maxwell",
            "bytes_per_update",
        ],
    );
    let d = scaled_dataset(&NETFLIX, crate::SEED);
    let cfg = SolverConfig {
        k: SCALED_K,
        lambda: SCALED_LAMBDA,
        schedule: scaled_schedule(),
        epochs: 25,
        scheme: Scheme::BatchHogwild {
            workers: 8,
            batch: 256,
        },
        seed: crate::SEED,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let bw = TITAN_X_MAXWELL.effective_bw(768);
    let f32run = train::<f32>(&d.train, &d.test, &cfg, None);
    let f32cost = SgdUpdateCost::cpu_f32(NETFLIX.k);
    r.row(vec![
        "f32".into(),
        format!("{:.4}", f32run.trace.final_rmse().unwrap()),
        fmt_si(f32cost.updates_per_sec(bw)),
        f32cost.bytes().to_string(),
    ]);
    let f16run = train::<F16>(&d.train, &d.test, &cfg, None);
    let f16cost = SgdUpdateCost::cumf(NETFLIX.k);
    r.row(vec![
        "f16".into(),
        format!("{:.4}", f16run.trace.final_rmse().unwrap()),
        fmt_si(f16cost.updates_per_sec(bw)),
        f16cost.bytes().to_string(),
    ]);
    r
}

/// Ablation: §6.2 transfer/compute overlap for Hugewiki-class staging, on
/// both platforms.
pub fn abl_overlap() -> Report {
    let mut r = Report::new(
        "abl_overlap",
        "Ablation — staged-execution overlap on/off (Hugewiki, 64x1 blocks)",
        &["platform", "overlap", "epoch_s", "compute_util"],
    );
    let spec: &DatasetSpec = &cumf_data::HUGEWIKI;
    let cost = SgdUpdateCost::cumf(spec.k);
    let blocks = 64u64;
    let samples = spec.train as f64 / blocks as f64;
    let seg = (spec.m as f64 / blocks as f64 + spec.n as f64) * spec.k as f64 * 2.0;
    let jobs: Vec<BlockJob> = (0..blocks)
        .map(|_| BlockJob {
            h2d_bytes: samples * 12.0 + seg,
            compute_bytes: samples * cost.bytes() as f64,
            d2h_bytes: seg,
        })
        .collect();
    for (platform, gpu, link) in [
        ("Maxwell+PCIe", &TITAN_X_MAXWELL, &PCIE3_X16),
        ("Pascal+NVLink", &P100_PASCAL, &NVLINK),
    ] {
        let ov = overlapped(&jobs, gpu, link, gpu.max_workers());
        let se = serial(&jobs, gpu, link, gpu.max_workers());
        for (mode, res) in [("on", &ov), ("off", &se)] {
            r.row(vec![
                platform.into(),
                mode.into(),
                format!("{:.2}", res.makespan),
                format!("{:.3}", res.compute_utilisation),
            ]);
        }
    }
    r
}

/// Extension: ADAGRAD learning rates for cuMF_SGD (the paper's §7.2
/// future work), compared against the Eq. 9 decay schedule at equal
/// update counts (per-sample ADAGRAD via the mini-batch machinery with
/// batch size 1).
pub fn ext_adagrad() -> Report {
    let mut r = Report::new(
        "ext_adagrad",
        "Extension — ADAGRAD vs Eq. 9 decay (the paper's stated future work)",
        &["rule", "epoch", "rmse"],
    );
    let d = scaled_dataset(&NETFLIX, crate::SEED);
    let sgd = train::<f32>(
        &d.train,
        &d.test,
        &SolverConfig {
            k: SCALED_K,
            lambda: SCALED_LAMBDA,
            schedule: scaled_schedule(),
            epochs: 20,
            scheme: Scheme::Serial,
            seed: crate::SEED,
            mode: None,
            divergence_ceiling: 1e3,
        },
        None,
    );
    for p in &sgd.trace.points {
        r.row(vec![
            "eq9-decay".into(),
            p.epoch.to_string(),
            format!("{:.4}", p.rmse),
        ]);
    }
    let mut ada_cfg = BidmachConfig::new(SCALED_K);
    ada_cfg.lambda = SCALED_LAMBDA;
    ada_cfg.minibatch = 1; // per-sample ADAGRAD = serial SGD + per-coord rates
    ada_cfg.epochs = 20;
    ada_cfg.seed = crate::SEED;
    let ada = train_bidmach(&d.train, &d.test, &ada_cfg, None);
    for p in &ada.trace.points {
        r.row(vec![
            "adagrad".into(),
            p.epoch.to_string(),
            format!("{:.4}", p.rmse),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn batch_sizes_beyond_threshold_equivalent() {
        let r = abl_batch();
        let rmse_of = |f: &str| -> f64 {
            r.rows.iter().find(|row| row[0] == f).unwrap()[1]
                .parse()
                .unwrap()
        };
        // §5.1: different f values "yield similar benefit" for convergence.
        assert!((rmse_of("64") - rmse_of("1024")).abs() < 0.02);
        // Throughput: f=1 wastes cache lines (larger bytes/update).
        let bytes_of = |f: &str| -> u64 {
            r.rows.iter().find(|row| row[0] == f).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(bytes_of("1") > bytes_of("256"));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn precision_ablation_matches_section4() {
        let r = abl_precision();
        let f32_rmse: f64 = r.rows[0][1].parse().unwrap();
        let f16_rmse: f64 = r.rows[1][1].parse().unwrap();
        assert!((f32_rmse - f16_rmse).abs() < 0.02, "no accuracy loss");
        let f32_bytes: u64 = r.rows[0][3].parse().unwrap();
        let f16_bytes: u64 = r.rows[1][3].parse().unwrap();
        assert!(f16_bytes < f32_bytes * 6 / 10, "bandwidth nearly halved");
    }

    #[test]
    fn overlap_ablation_shows_benefit() {
        let r = abl_overlap();
        let epoch = |platform: &str, mode: &str| -> f64 {
            r.rows
                .iter()
                .find(|row| row[0] == platform && row[1] == mode)
                .unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(epoch("Maxwell+PCIe", "on") < epoch("Maxwell+PCIe", "off"));
        assert!(epoch("Pascal+NVLink", "on") < epoch("Pascal+NVLink", "off"));
        // The benefit is larger where transfers are slower (PCIe).
        let gain_m = epoch("Maxwell+PCIe", "off") / epoch("Maxwell+PCIe", "on");
        let gain_p = epoch("Pascal+NVLink", "off") / epoch("Pascal+NVLink", "on");
        assert!(gain_m > gain_p, "maxwell {gain_m} vs pascal {gain_p}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn adagrad_extension_converges() {
        let r = ext_adagrad();
        let final_of = |rule: &str| -> f64 {
            r.rows.iter().rfind(|row| row[0] == rule).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(final_of("adagrad") < 0.25, "adagrad converges");
        assert!(final_of("eq9-decay") < 0.25, "decay converges");
    }
}
