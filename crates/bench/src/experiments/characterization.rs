//! Workload characterisation experiments: Eq. 5, Table 2, Fig 2.

use cumf_baselines::NomadPerfModel;
use cumf_data::NETFLIX;
use cumf_gpu_sim::{CpuCacheModel, Precision, RatingAccess, SgdUpdateCost, XEON_E5_2670X2};

use crate::report::{fmt_si, Report};

use super::all_specs;

/// §2.3 / Eq. 5: Flops/Byte of one SGD update across feature dimensions.
pub fn eq05() -> Report {
    let mut r = Report::new(
        "eq05",
        "Flops/Byte of SGD-MF (Eq. 5; paper: 0.43 at k=128, f32)",
        &["k", "precision", "flops", "bytes", "flops_per_byte"],
    );
    for k in [16u32, 32, 64, 128] {
        for precision in [Precision::F32, Precision::F16] {
            let cost = SgdUpdateCost {
                k,
                precision,
                rating_access: RatingAccess::Streamed,
            };
            r.row(vec![
                k.to_string(),
                format!("{precision:?}"),
                cost.flops().to_string(),
                cost.bytes().to_string(),
                format!("{:.3}", cost.flops_per_byte()),
            ]);
        }
    }
    r
}

/// Table 2: the benchmark data sets and their scaled stand-ins.
pub fn tab02() -> Report {
    let mut r = Report::new(
        "tab02",
        "Table 2 — data sets (full paper shapes + scaled stand-ins)",
        &[
            "dataset",
            "m",
            "n",
            "k",
            "train",
            "test",
            "samples_per_param",
            "scaled_m",
            "scaled_n",
            "scaled_train",
        ],
    );
    for spec in all_specs() {
        let d = super::scaled_dataset(spec, crate::SEED);
        r.row(vec![
            spec.name.to_string(),
            spec.m.to_string(),
            spec.n.to_string(),
            spec.k.to_string(),
            spec.train.to_string(),
            spec.test.to_string(),
            format!("{:.2}", spec.samples_per_param()),
            d.train.rows().to_string(),
            d.train.cols().to_string(),
            d.train.nnz().to_string(),
        ]);
    }
    r
}

/// Fig 2(a): LIBMF's effective memory bandwidth per data set. The paper
/// measures 194 GB/s on Netflix falling to 106 GB/s on Hugewiki.
pub fn fig02a() -> Report {
    let mut r = Report::new(
        "fig02a",
        "Fig 2(a) — LIBMF effective bandwidth vs data size (paper: 194 -> 106 GB/s)",
        &["dataset", "block_ws_mb", "effective_bw_gbs", "paper_gbs"],
    );
    let model = CpuCacheModel::calibrated(XEON_E5_2670X2);
    let paper = [
        ("Netflix", 194.0),
        ("Yahoo!Music", f64::NAN),
        ("Hugewiki", 106.0),
    ];
    for (spec, (_, paper_bw)) in all_specs().iter().zip(paper) {
        let ws = CpuCacheModel::block_working_set(spec.m, spec.n, 100, spec.k, 4);
        let bw = model.libmf_effective_bw(spec.m, spec.n, 100, spec.k);
        r.row(vec![
            spec.name.to_string(),
            format!("{:.1}", ws / 1048576.0),
            format!("{:.1}", bw / 1e9),
            if paper_bw.is_nan() {
                "n/a".into()
            } else {
                format!("{paper_bw:.0}")
            },
        ]);
    }
    r
}

/// Fig 2(b): NOMAD's memory efficiency collapses with node count
/// (Netflix shape, 1–32 nodes).
pub fn fig02b() -> Report {
    let mut r = Report::new(
        "fig02b",
        "Fig 2(b) — NOMAD parallel memory efficiency vs nodes (Netflix)",
        &["nodes", "epoch_s", "speedup", "memory_efficiency"],
    );
    let pm = NomadPerfModel::hpc_cluster();
    for nodes in [1u32, 2, 4, 8, 16, 32] {
        let t = pm.epoch_seconds(NETFLIX.m, NETFLIX.n, NETFLIX.train, NETFLIX.k, nodes);
        let s = pm.speedup(NETFLIX.m, NETFLIX.n, NETFLIX.train, NETFLIX.k, nodes);
        let e = pm.memory_efficiency(NETFLIX.m, NETFLIX.n, NETFLIX.train, NETFLIX.k, nodes);
        r.row(vec![
            nodes.to_string(),
            fmt_si(t),
            format!("{s:.2}"),
            format!("{e:.3}"),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq05_contains_papers_number() {
        let r = eq05();
        let k128_f32 = r
            .rows
            .iter()
            .find(|row| row[0] == "128" && row[1] == "F32")
            .expect("k=128 f32 row");
        let fpb: f64 = k128_f32[4].parse().unwrap();
        assert!((fpb - 0.43).abs() < 0.01);
    }

    #[test]
    fn fig02a_shows_the_drop() {
        let r = fig02a();
        let netflix: f64 = r.rows[0][2].parse().unwrap();
        let hugewiki: f64 = r.rows[2][2].parse().unwrap();
        assert!(netflix > 180.0 && netflix < 210.0);
        assert!(hugewiki < 120.0);
        assert!(hugewiki < netflix * 0.62, "the ~45% drop of Fig 2a");
    }

    #[test]
    fn fig02b_efficiency_decreasing() {
        let r = fig02b();
        let effs: Vec<f64> = r.rows.iter().map(|row| row[3].parse().unwrap()).collect();
        for w in effs.windows(2) {
            assert!(
                w[1] <= w[0] * 1.15,
                "efficiency should trend down: {effs:?}"
            );
        }
        assert!(
            effs.last().unwrap() < &0.25,
            "32-node efficiency 'extremely low'"
        );
    }

    #[test]
    fn tab02_has_three_rows() {
        assert_eq!(tab02().rows.len(), 3);
    }
}
