//! Convergence-limit experiments: Fig 13, Fig 14, Fig 15.

use cumf_core::lrate::Schedule;
use cumf_core::multi_gpu::{train_partitioned, MultiGpuConfig};
use cumf_core::partition::count_feasible_orders;
use cumf_core::solver::{train, Scheme, SolverConfig};
use cumf_data::synth::{generate, SynthConfig};
use cumf_data::NETFLIX;
use cumf_gpu_sim::{SgdUpdateCost, PCIE3_X16, TITAN_X_MAXWELL};

use crate::report::Report;

use super::{scaled_dataset, SCALED_K};

/// Fig 13: partitioning vs Hogwild! convergence. The paper fixes s = 768
/// on Hugewiki (min(m,n) = 40k) and finds convergence holds for j ≤ 2 but
/// fails at j = 4.
///
/// Our deterministic conflict engine compounds colliding updates only when
/// their gradient directions correlate (a racing GPU additionally tears
/// vectors element-wise), so its divergence threshold sits at a different
/// constant than the paper's `s < min/20` rule. The experiment uses a
/// rank-2 planted model (strongly correlated user gradients) with `s = 28`
/// workers on block columns of width 200/100/50 for j = 1/2/4 — the same
/// mechanism and the same pattern, with the threshold crossing between
/// j = 2 and j = 4 exactly as in the paper (calibration documented in
/// EXPERIMENTS.md).
pub fn fig13() -> Report {
    let mut r = Report::new(
        "fig13",
        "Fig 13 — partitioned Hogwild! convergence: j <= 2 converges, j = 4 fails",
        &["grid_j", "epoch", "rmse", "diverged"],
    );
    let d = generate(&SynthConfig {
        m: 8_000,
        n: 200,
        k_true: 2,
        train_samples: 150_000,
        test_samples: 6_000,
        noise_std: 0.1,
        row_skew: 0.4,
        col_skew: 0.3,
        rating_offset: 0.0,
        seed: crate::SEED,
    });
    for j in [1u32, 2, 4] {
        let mut cfg = MultiGpuConfig::new(4, 8, j, 1);
        cfg.workers_per_gpu = 28;
        cfg.batch = 8;
        cfg.epochs = 12;
        cfg.lambda = 0.02;
        cfg.schedule = Schedule::Fixed(0.3);
        cfg.seed = crate::SEED;
        let res = train_partitioned::<f32>(&d.train, &d.test, &cfg, &TITAN_X_MAXWELL, &PCIE3_X16);
        for p in &res.trace.points {
            r.row(vec![
                j.to_string(),
                p.epoch.to_string(),
                if p.rmse.is_finite() {
                    format!("{:.4}", p.rmse)
                } else {
                    "NaN".into()
                },
                res.diverged.to_string(),
            ]);
        }
    }
    r
}

/// Fig 14: LIBMF-style blocking with the grid dimension `a` approaching
/// the worker count `s` — convergence speed (against modelled time)
/// deteriorates because ≤ a workers can run and the update order loses
/// randomness.
pub fn fig14() -> Report {
    let mut r = Report::new(
        "fig14",
        "Fig 14 — LIBMF blocking: convergence speed vs a (s = 40 workers)",
        &["a", "epoch", "seconds", "rmse", "stall_fraction"],
    );
    let d = scaled_dataset(&NETFLIX, crate::SEED);
    let s = 40u32;
    for a in [4u32, 8, 40, 100] {
        let cfg = SolverConfig {
            k: SCALED_K,
            lambda: super::SCALED_LAMBDA,
            schedule: super::scaled_schedule(),
            epochs: 20,
            scheme: Scheme::LibmfTable { workers: s, a },
            seed: crate::SEED,
            mode: None,
            divergence_ceiling: 1e3,
        };
        // Time model: rounds (stall-inflated) on the Maxwell GPU at the
        // full Netflix scale bandwidth-per-round.
        let tm = cumf_core::solver::TimeModel {
            cost: SgdUpdateCost::cumf(SCALED_K),
            total_bandwidth: TITAN_X_MAXWELL.effective_bw(s),
            epoch_overhead: TITAN_X_MAXWELL.launch_overhead_s,
        };
        let res = train::<f32>(&d.train, &d.test, &cfg, Some(&tm));
        for (p, stats) in res.trace.points.iter().zip(&res.epoch_stats) {
            r.row(vec![
                a.to_string(),
                p.epoch.to_string(),
                format!("{:.6}", p.seconds),
                format!("{:.4}", p.rmse),
                format!("{:.3}", stats.stall_fraction()),
            ]);
        }
    }
    r
}

/// Fig 15: feasible block update orders under full-worker-occupancy
/// blocking — only 8 of 24 orders on a 2×2 grid with 2 workers.
pub fn fig15() -> Report {
    let mut r = Report::new(
        "fig15",
        "Fig 15 — feasible block start orders (paper: 8 of 24 at a=2, s=2)",
        &["grid", "workers", "feasible", "total", "fraction"],
    );
    for (a, s) in [(2u32, 1u32), (2, 2), (3, 2), (3, 3)] {
        let (feasible, total) = count_feasible_orders(a, s);
        r.row(vec![
            format!("{a}x{a}"),
            s.to_string(),
            feasible.to_string(),
            total.to_string(),
            format!("{:.3}", feasible as f64 / total as f64),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig13_j4_diverges_j1_converges() {
        let r = fig13();
        let final_of = |j: &str| -> (String, String) {
            let row = r.rows.iter().rfind(|row| row[0] == j).unwrap();
            (row[2].clone(), row[3].clone())
        };
        let (rmse1, div1) = final_of("1");
        assert_eq!(div1, "false", "j=1 must converge");
        assert!(rmse1.parse::<f64>().unwrap() < 0.3, "j=1 rmse {rmse1}");
        let (_, div4) = final_of("4");
        assert_eq!(div4, "true", "j=4 must diverge");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn fig14_small_grids_are_slower_in_time() {
        let r = fig14();
        // Time of the final epoch per grid size.
        let time_of = |a: &str| -> f64 {
            r.rows.iter().rfind(|row| row[0] == a).unwrap()[2]
                .parse()
                .unwrap()
        };
        let t4 = time_of("4");
        let t40 = time_of("40");
        let t100 = time_of("100");
        assert!(
            t4 > 3.0 * t100,
            "a=4 must be much slower than a=100: {t4} vs {t100}"
        );
        assert!(t40 > t100, "a=s is slower than a >> s: {t40} vs {t100}");
        // Stall fractions mirror the slowdown.
        let stall_of = |a: &str| -> f64 {
            r.rows.iter().rfind(|row| row[0] == a).unwrap()[4]
                .parse()
                .unwrap()
        };
        assert!(stall_of("4") > 0.9, "a=4 starves nearly all workers");
        // Zipf-skewed blocks leave even a=100 with a long straggler tail
        // (~0.78 stall fraction); the claim is the gap, not the absolute.
        assert!(
            stall_of("4") > stall_of("100") + 0.1,
            "stalls grow as a shrinks: a=4 {} vs a=100 {}",
            stall_of("4"),
            stall_of("100")
        );
    }

    #[test]
    fn fig15_matches_paper_count() {
        let r = fig15();
        let row = r
            .rows
            .iter()
            .find(|row| row[0] == "2x2" && row[1] == "2")
            .unwrap();
        assert_eq!(row[2], "8");
        assert_eq!(row[3], "24");
    }
}
