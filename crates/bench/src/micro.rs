//! Minimal in-tree micro-benchmark harness.
//!
//! Replaces `criterion` so the workspace builds with no network access.
//! Each `benches/*.rs` target is a plain `harness = false` main that
//! calls [`bench()`] per case; `cargo bench -p cumf-bench` runs them all.
//! The harness auto-calibrates the iteration count to a fixed wall-time
//! budget, takes the best of several batches (minimum is the standard
//! noise-robust estimator for micro-benchmarks), and prints one aligned
//! line per case.

use std::time::Instant;

pub use std::hint::black_box;

/// Per-batch measurement budget.
const BATCH_SECS: f64 = 0.04;
/// Batches per case; the minimum is reported.
const BATCHES: usize = 3;

/// Times `f` and prints `name`, ns/iter, and (when `elems > 0`) the
/// per-second element throughput, where `elems` is the number of items
/// one call of `f` processes.
pub fn bench(name: &str, elems: u64, mut f: impl FnMut()) {
    // Calibrate: double the iteration count until a batch is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= BATCH_SECS / 8.0 || iters >= 1 << 30 {
            break dt / iters as f64;
        }
        iters *= 2;
    };
    let batch_iters = ((BATCH_SECS / per_iter.max(1e-12)) as u64).clamp(1, 1 << 30);
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / batch_iters as f64);
    }
    if elems > 0 {
        println!(
            "{name:<44} {:>14.1} ns/iter {:>16.0} elem/s",
            best * 1e9,
            elems as f64 / best
        );
    } else {
        println!("{name:<44} {:>14.1} ns/iter", best * 1e9);
    }
}
