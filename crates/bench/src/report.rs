//! Tabular experiment output: aligned console printing + CSV persistence.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A rectangular result table for one experiment.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `"fig07a"` (also the CSV stem).
    pub name: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            name: name.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in report {}",
            self.name
        );
        self.rows.push(cells);
    }

    /// Output directory: `$CUMF_BENCH_DIR` or `bench_results/`.
    pub fn out_dir() -> PathBuf {
        std::env::var_os("CUMF_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("bench_results"))
    }

    /// Prints the table to stdout, aligned.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line_len: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        println!("\n== {} — {} ==", self.name, self.title);
        let mut header_line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            header_line.push_str(&format!("| {h:>w$} "));
        }
        header_line.push('|');
        println!("{header_line}");
        println!("{}", "-".repeat(line_len.max(header_line.len())));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                line.push_str(&format!("| {cell:>w$} "));
            }
            line.push('|');
            println!("{line}");
        }
    }

    /// Writes `bench_results/<name>.csv`.
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = Self::out_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", escaped.join(","))?;
        }
        Ok(path)
    }

    /// Writes `bench_results/<name>.prom` — the Prometheus snapshot of all
    /// metrics recorded while the experiment ran.
    pub fn save_metrics(&self) -> std::io::Result<PathBuf> {
        let dir = Self::out_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.prom", self.name));
        fs::write(&path, cumf_obs::prometheus())?;
        Ok(path)
    }

    /// Prints and saves; the standard tail call of every experiment. When
    /// observability is on (see `cumf_bench::init_observability`), also
    /// writes the metrics snapshot and resets the collectors so the next
    /// experiment in a `run_all` sequence starts from zero.
    pub fn finish(&self) {
        self.print();
        match self.save_csv() {
            Ok(path) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("[csv write failed: {e}]"),
        }
        if cumf_obs::enabled() {
            match self.save_metrics() {
                Ok(path) => println!("[saved {}]", path.display()),
                Err(e) => eprintln!("[metrics write failed: {e}]"),
            }
            cumf_obs::reset();
        }
    }
}

/// Formats a float with engineering-style significant digits.
pub fn fmt_si(x: f64) -> String {
    let ax = x.abs();
    if x == 0.0 {
        "0".into()
    } else if ax >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else if ax >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trip() {
        let mut r = Report::new("t1", "test", &["a", "b"]);
        r.row(vec!["1".into(), "x,y".into()]);
        r.row(vec!["2".into(), "q\"u".into()]);
        let dir = std::env::temp_dir().join("cumf_bench_report_test");
        std::env::set_var("CUMF_BENCH_DIR", &dir);
        let path = r.save_csv().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("\"x,y\""));
        assert!(text.contains("\"q\"\"u\""));
        std::env::remove_var("CUMF_BENCH_DIR");
        let _ = std::fs::remove_dir_all(dir);
        r.print(); // smoke
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("t2", "test", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(fmt_si(0.0), "0");
        assert_eq!(fmt_si(267e6), "267.0M");
        assert_eq!(fmt_si(1.5e9), "1.50G");
        assert_eq!(fmt_si(2500.0), "2.5k");
        assert_eq!(fmt_si(4.25661), "4.26");
        assert_eq!(fmt_si(0.043), "0.0430");
    }
}
