//! # cumf-bench — the experiment harness
//!
//! One binary target per table/figure of the paper's evaluation (run them
//! with `cargo run -p cumf-bench --release --bin <id>`), plus `run_all`.
//! Each experiment prints the regenerated rows/series and writes a CSV
//! under `bench_results/`.
//!
//! | target | paper artefact |
//! |--------|----------------|
//! | `eq05`   | §2.3 Flops/Byte characterisation |
//! | `tab02`  | Table 2 — data sets |
//! | `fig02a` | Fig 2(a) — LIBMF effective bandwidth vs data size |
//! | `fig02b` | Fig 2(b) — NOMAD memory efficiency vs nodes |
//! | `fig05b` | Fig 5(b) — LIBMF scheduling saturation |
//! | `fig07a` | Fig 7(a) — batch-Hogwild!/wavefront scalability |
//! | `fig07b` | Fig 7(b) — batch-Hogwild!/wavefront convergence |
//! | `fig09`  | Fig 9 — test RMSE vs training time, all systems |
//! | `fig10`  | Fig 10 — updates/s + achieved bandwidth per data set |
//! | `fig11`  | Fig 11 — updates/s + bandwidth vs workers, M vs P |
//! | `fig12`  | Fig 12 — cuMF_SGD vs cuMF_ALS |
//! | `fig13`  | Fig 13 — Hugewiki partitioning convergence limits |
//! | `fig14`  | Fig 14 — LIBMF blocking convergence (a vs s) |
//! | `fig15`  | Fig 15 — feasible block update orders |
//! | `fig16`  | Fig 16 — Yahoo!Music on 1 vs 2 GPUs |
//! | `tab04`  | Table 4 — time-to-RMSE speedups vs LIBMF |
//! | `tab05`  | Table 5 — updates/s: BIDMach vs cuMF_SGD |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod experiments;
pub mod json;
pub mod micro;
pub mod report;
pub mod suite;

pub use check::{check_against, CheckReport};
pub use report::Report;
pub use suite::{run_suite, suite_names, SuiteReport};

/// Fixed seed shared by all experiments (reproducibility).
pub const SEED: u64 = 2017;

/// Turns on metric/trace collection for a bench run unless the environment
/// sets `CUMF_BENCH_OBS=0`. Every experiment binary calls this first, so
/// [`Report::finish`] can write a Prometheus snapshot next to each CSV.
pub fn init_observability() {
    if std::env::var_os("CUMF_BENCH_OBS").is_none_or(|v| v != "0") {
        cumf_obs::set_enabled(true);
    }
}
