//! The registered `cumf bench` suite: named metrics over fixed
//! workloads, run for N trials and reported as median + MAD in
//! schema-versioned `BENCH_*.json` files.
//!
//! Three suites mirror the repo's performance fronts:
//!
//! * **`des`** — event-calendar throughput (ROADMAP item 5's gate):
//!   events/sec for pure delays, a contended server, and a shared
//!   link, plus two *sim-domain* metrics (modelled link bandwidth and
//!   sim end time) that are bit-deterministic across runs.
//! * **`train`** — the paper's currency (§6): `sgd_update` updates/sec
//!   per precision, epoch wall time on a small synthetic problem, and
//!   the machine-model updates/sec (sim-domain, deterministic).
//! * **`serve`** — the serving layer: closed-loop QPS and p99 latency
//!   on sim time (deterministic), plus host wall-clock throughput of
//!   the blocked top-N scorer.
//!
//! Wall-domain metrics measure this machine and carry MAD-sized noise;
//! sim-domain metrics are pure f64 arithmetic and must reproduce
//! exactly — [`SuiteReport::sim_digest`] hashes them so a test (and
//! the committed baselines) can prove it.

use std::time::Instant;

use cumf_core::half::F16;
use cumf_core::kernel::sgd_update;
use cumf_core::lrate::Schedule;
use cumf_core::solver::{train, Scheme, SolverConfig, TimeModel};
use cumf_core::Element;
use cumf_data::synth::{generate, SynthConfig, SynthDataset};
use cumf_des::{Block, Ctx, EventId, EventQueue, LinkId, Process, ServerId, SimTime, Simulation};
use cumf_gpu_sim::{SgdUpdateCost, TITAN_X_MAXWELL};

use crate::json::{num, quote};

/// Version tag carried by every `BENCH_*.json`; bump on schema change.
pub const SCHEMA: &str = "cumf-bench/1";

/// Which clock a metric is measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Host wall clock: machine-dependent, noisy.
    Wall,
    /// Simulated/modelled time: bit-deterministic across runs.
    Sim,
}

impl Domain {
    /// The JSON/string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Wall => "wall",
            Domain::Sim => "sim",
        }
    }
}

/// Which direction is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Throughput-style: larger is better.
    Higher,
    /// Latency-style: smaller is better.
    Lower,
}

impl Better {
    /// The JSON/string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Better::Higher => "higher",
            Better::Lower => "lower",
        }
    }
}

/// One registered benchmark: a named metric over a fixed workload.
pub struct BenchCase {
    /// Metric id, stable across versions (the `--check` join key).
    pub id: &'static str,
    /// Owning suite: `"des"`, `"train"`, or `"serve"`.
    pub suite: &'static str,
    /// Unit of the reported value.
    pub unit: &'static str,
    /// Clock domain of the measurement.
    pub domain: Domain,
    /// Improvement direction.
    pub better: Better,
    /// Runs one trial (`quick` shrinks the workload) and returns the value.
    pub run: fn(quick: bool) -> f64,
}

/// One metric's aggregated result.
#[derive(Debug, Clone)]
pub struct MetricResult {
    /// Metric id.
    pub id: String,
    /// Unit of `median`.
    pub unit: String,
    /// Clock domain.
    pub domain: Domain,
    /// Improvement direction.
    pub better: Better,
    /// Median over the trials.
    pub median: f64,
    /// Median absolute deviation over the trials.
    pub mad: f64,
    /// The raw per-trial values, in run order.
    pub samples: Vec<f64>,
}

/// The result of running one suite: everything `BENCH_<suite>.json` holds.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Suite name (`des` / `train`).
    pub suite: String,
    /// Whether the quick (shrunken) workloads were used.
    pub quick: bool,
    /// Trials per metric.
    pub trials: usize,
    /// Per-metric results, in registration order.
    pub metrics: Vec<MetricResult>,
    /// FNV-1a digest of the Prometheus snapshot taken after the run.
    pub obs_digest: String,
}

/// Median of a sample set (empty → NaN).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation around the median.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// 64-bit FNV-1a over bytes, rendered as fixed-width hex.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

// ---------------------------------------------------------------- DES suite

struct Sleeper {
    left: u32,
}
impl Process for Sleeper {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Delay(SimTime::from_micros(1.0))
    }
}

struct Contender {
    left: u32,
    server: ServerId,
}
impl Process for Contender {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Service {
            server: self.server,
            hold: SimTime::from_micros(0.5),
        }
    }
}

struct Mover {
    left: u32,
    link: LinkId,
}
impl Process for Mover {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Transfer {
            link: self.link,
            bytes: 4096.0,
        }
    }
}

fn rounds(quick: bool) -> u32 {
    if quick {
        200
    } else {
        500
    }
}

fn des_events_per_sec(quick: bool) -> f64 {
    let mut sim = Simulation::new();
    for _ in 0..64 {
        sim.spawn(Box::new(Sleeper {
            left: rounds(quick),
        }));
    }
    let t0 = Instant::now();
    let report = sim.run(None);
    report.events as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

fn des_server_events_per_sec(quick: bool) -> f64 {
    let mut sim = Simulation::new();
    let server = sim.add_server("cs", 4);
    for _ in 0..64 {
        sim.spawn(Box::new(Contender {
            left: rounds(quick),
            server,
        }));
    }
    let t0 = Instant::now();
    let report = sim.run(None);
    report.events as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

fn link_sim(quick: bool) -> cumf_des::RunReport {
    let mut sim = Simulation::new();
    let link = sim.add_link("pcie", 1e9);
    for _ in 0..64 {
        sim.spawn(Box::new(Mover {
            left: rounds(quick),
            link,
        }));
    }
    sim.run(None)
}

fn des_link_sim_bytes_per_sec(quick: bool) -> f64 {
    link_sim(quick)
        .link("pcie")
        .expect("link exists")
        .achieved_bandwidth
}

fn des_link_sim_end_seconds(quick: bool) -> f64 {
    link_sim(quick).end_time.as_secs()
}

// ------------------------------------------------- raw event-queue cases
//
// These drive `EventQueue` directly (no processes, no resources) so the
// scheduler itself is the entire measurement. Three timestamp shapes
// bracket the real workloads: *clustered* (the GPU sim schedules many
// events at identical instants — warps of a block, simultaneous copy
// completions), *uniform* (pseudo-random spread, the scheduler's
// neutral case), and *cancel-heavy* (the link model re-arms its single
// completion event on every transfer change, cancelling the old one).

/// Splitmix-style step for deterministic workload jitter (bench-local;
/// wall-domain metrics may use any fixed pseudo-random schedule).
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Steady-state schedule/pop cycles where timestamps arrive in 64-wide
/// equal-time clusters (the paper workload's shape).
fn des_clustered_queue_events_per_sec(quick: bool) -> f64 {
    const CLUSTER: u64 = 64;
    let pending: u64 = if quick { 8_192 } else { 32_768 };
    let total: u64 = if quick { 200_000 } else { 1_000_000 };
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..pending {
        q.schedule(SimTime::from_micros((i / CLUSTER) as f64), i as u32);
    }
    let horizon = SimTime::from_micros((pending / CLUSTER) as f64);
    let t0 = Instant::now();
    for _ in 0..total {
        let (t, tag) = q.pop().expect("queue stays primed");
        q.schedule(t + horizon, tag);
    }
    total as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

/// Steady-state schedule/pop cycles with uniformly jittered timestamps
/// (no clustering to exploit).
fn des_uniform_queue_events_per_sec(quick: bool) -> f64 {
    let pending: u64 = if quick { 8_192 } else { 32_768 };
    let total: u64 = if quick { 200_000 } else { 1_000_000 };
    let mut state = crate::SEED;
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..pending {
        let at = lcg_next(&mut state) % (2 * pending);
        q.schedule(SimTime::from_micros(at as f64), i as u32);
    }
    let t0 = Instant::now();
    for _ in 0..total {
        let (t, tag) = q.pop().expect("queue stays primed");
        let ahead = 1 + lcg_next(&mut state) % (2 * pending);
        q.schedule(t + SimTime::from_micros(ahead as f64), tag);
    }
    total as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

/// Schedule-two/cancel-one/pop-one cycles: half of all scheduled events
/// are cancelled before they fire, as the shared-link model does when it
/// re-arms its completion event.
fn des_cancel_queue_events_per_sec(quick: bool) -> f64 {
    const STASH: usize = 256;
    let pending: u64 = if quick { 4_096 } else { 16_384 };
    let total: u64 = if quick { 100_000 } else { 500_000 };
    let mut state = crate::SEED ^ 0xc0ffee;
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..pending {
        let at = lcg_next(&mut state) % pending;
        q.schedule(SimTime::from_micros(at as f64), i as u32);
    }
    let mut stash: Vec<EventId> = Vec::with_capacity(STASH);
    let mut slot = 0usize;
    let t0 = Instant::now();
    for _ in 0..total {
        let (t, tag) = q.pop().expect("queue stays primed");
        let a1 = 1 + lcg_next(&mut state) % pending;
        let a2 = 1 + lcg_next(&mut state) % pending;
        q.schedule(t + SimTime::from_micros(a1 as f64), tag);
        let doomed = q.schedule(t + SimTime::from_micros(a2 as f64), tag);
        if stash.len() < STASH {
            stash.push(doomed);
        } else {
            q.cancel(stash[slot]);
            stash[slot] = doomed;
            slot = (slot + 1) % STASH;
        }
    }
    total as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

// -------------------------------------------------------------- train suite

fn sgd_updates_per_sec<E: Element>(quick: bool, seed_scale: f32) -> f64 {
    const K: usize = 64;
    let mut p: Vec<E> = (0..K)
        .map(|i| E::from_f32((i as f32 * 0.37).sin() * 0.3 * seed_scale))
        .collect();
    let mut q: Vec<E> = (0..K)
        .map(|i| E::from_f32((i as f32 * 0.11).cos() * 0.3 * seed_scale))
        .collect();
    let updates: u64 = if quick { 50_000 } else { 200_000 };
    let t0 = Instant::now();
    for i in 0..updates {
        let r = 3.0 + (i % 5) as f32 * 0.25;
        sgd_update(
            std::hint::black_box(&mut p[..]),
            std::hint::black_box(&mut q[..]),
            std::hint::black_box(r),
            0.005,
            0.05,
        );
    }
    updates as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

fn bench_dataset(quick: bool) -> SynthDataset {
    generate(&SynthConfig {
        m: 2_000,
        n: 500,
        k_true: 4,
        train_samples: if quick { 20_000 } else { 60_000 },
        test_samples: 2_000,
        noise_std: 0.1,
        row_skew: 0.4,
        col_skew: 0.3,
        rating_offset: 0.0,
        seed: crate::SEED,
    })
}

fn bench_config(epochs: u32) -> SolverConfig {
    SolverConfig {
        k: 32,
        lambda: 0.05,
        schedule: Schedule::Fixed(0.02),
        epochs,
        scheme: Scheme::BatchHogwild {
            workers: 32,
            batch: 64,
        },
        seed: crate::SEED,
        mode: None,
        divergence_ceiling: 1e3,
    }
}

fn epoch_wall_seconds(quick: bool) -> f64 {
    let d = bench_dataset(quick);
    let cfg = bench_config(2);
    let t0 = Instant::now();
    let res = train::<f32>(&d.train, &d.test, &cfg, None);
    let secs = t0.elapsed().as_secs_f64();
    assert!(!res.diverged, "bench training must not diverge");
    secs / cfg.epochs as f64
}

fn machine_model_updates_per_sec(quick: bool) -> f64 {
    let d = bench_dataset(quick);
    let cfg = bench_config(2);
    let workers = 32;
    let tm = TimeModel {
        cost: SgdUpdateCost::cumf(cfg.k),
        total_bandwidth: TITAN_X_MAXWELL.effective_bw(workers),
        epoch_overhead: TITAN_X_MAXWELL.launch_overhead_s,
    };
    let res = train::<f32>(&d.train, &d.test, &cfg, Some(&tm));
    let last = res.trace.points.last().expect("trained at least one epoch");
    last.updates as f64 / last.seconds.max(1e-12)
}

// -------------------------------------------------------------- serve suite

fn serve_report(quick: bool) -> cumf_serve::ServeReport {
    let model = cumf_serve::chaos::synth_model(crate::SEED, 4, 2);
    let cfg = cumf_serve::ServeConfig {
        requests: if quick { 500 } else { 2000 },
        ..cumf_serve::ServeConfig::default()
    };
    cumf_serve::run_closed_loop(&model, &cfg)
}

fn serve_sim_qps(quick: bool) -> f64 {
    serve_report(quick).qps()
}

fn serve_sim_p99_ms(quick: bool) -> f64 {
    serve_report(quick).p(0.99) * 1e3
}

fn serve_topn_queries_per_sec(quick: bool) -> f64 {
    let model = cumf_serve::chaos::synth_model(crate::SEED, 4, 2);
    let q = model.q_matrix();
    let queries: u64 = if quick { 2_000 } else { 10_000 };
    let users = model.users();
    let t0 = Instant::now();
    for i in 0..queries {
        let user = (i % users as u64) as u32;
        let row = model.user_row(user);
        std::hint::black_box(cumf_serve::top_n_blocked(row, q, 0..q.rows(), 10, 64));
    }
    queries as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

/// The registered benchmark cases, all suites, registration order.
pub fn cases() -> Vec<BenchCase> {
    vec![
        BenchCase {
            id: "des_events_per_sec",
            suite: "des",
            unit: "events/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: des_events_per_sec,
        },
        BenchCase {
            id: "des_server_events_per_sec",
            suite: "des",
            unit: "events/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: des_server_events_per_sec,
        },
        BenchCase {
            id: "des_clustered_queue_events_per_sec",
            suite: "des",
            unit: "events/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: des_clustered_queue_events_per_sec,
        },
        BenchCase {
            id: "des_uniform_queue_events_per_sec",
            suite: "des",
            unit: "events/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: des_uniform_queue_events_per_sec,
        },
        BenchCase {
            id: "des_cancel_queue_events_per_sec",
            suite: "des",
            unit: "events/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: des_cancel_queue_events_per_sec,
        },
        BenchCase {
            id: "des_link_sim_bytes_per_sec",
            suite: "des",
            unit: "bytes/s",
            domain: Domain::Sim,
            better: Better::Higher,
            run: des_link_sim_bytes_per_sec,
        },
        BenchCase {
            id: "des_link_sim_end_seconds",
            suite: "des",
            unit: "s",
            domain: Domain::Sim,
            better: Better::Lower,
            run: des_link_sim_end_seconds,
        },
        BenchCase {
            id: "sgd_updates_per_sec_f32",
            suite: "train",
            unit: "updates/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: |quick| sgd_updates_per_sec::<f32>(quick, 1.0),
        },
        BenchCase {
            id: "sgd_updates_per_sec_f16",
            suite: "train",
            unit: "updates/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: |quick| sgd_updates_per_sec::<F16>(quick, 1.0),
        },
        BenchCase {
            id: "epoch_wall_seconds",
            suite: "train",
            unit: "s",
            domain: Domain::Wall,
            better: Better::Lower,
            run: epoch_wall_seconds,
        },
        BenchCase {
            id: "machine_model_updates_per_sec",
            suite: "train",
            unit: "updates/s",
            domain: Domain::Sim,
            better: Better::Higher,
            run: machine_model_updates_per_sec,
        },
        BenchCase {
            id: "serve_sim_qps",
            suite: "serve",
            unit: "req/s",
            domain: Domain::Sim,
            better: Better::Higher,
            run: serve_sim_qps,
        },
        BenchCase {
            id: "serve_sim_p99_ms",
            suite: "serve",
            unit: "ms",
            domain: Domain::Sim,
            better: Better::Lower,
            run: serve_sim_p99_ms,
        },
        BenchCase {
            id: "serve_topn_queries_per_sec",
            suite: "serve",
            unit: "queries/s",
            domain: Domain::Wall,
            better: Better::Higher,
            run: serve_topn_queries_per_sec,
        },
    ]
}

/// The suite names, in run order.
pub fn suite_names() -> Vec<&'static str> {
    let mut names = Vec::new();
    for case in cases() {
        if !names.contains(&case.suite) {
            names.push(case.suite);
        }
    }
    names
}

/// Runs every case of `suite` for `trials` trials and aggregates.
/// Returns `None` for an unknown suite name.
pub fn run_suite(suite: &str, trials: usize, quick: bool) -> Option<SuiteReport> {
    let selected: Vec<BenchCase> = cases().into_iter().filter(|c| c.suite == suite).collect();
    if selected.is_empty() {
        return None;
    }
    let mut metrics = Vec::with_capacity(selected.len());
    for case in &selected {
        let samples: Vec<f64> = (0..trials.max(1)).map(|_| (case.run)(quick)).collect();
        metrics.push(MetricResult {
            id: case.id.to_string(),
            unit: case.unit.to_string(),
            domain: case.domain,
            better: case.better,
            median: median(&samples),
            mad: mad(&samples),
            samples,
        });
    }
    Some(SuiteReport {
        suite: suite.to_string(),
        quick,
        trials: trials.max(1),
        metrics,
        obs_digest: fnv1a_hex(cumf_obs::prometheus().as_bytes()),
    })
}

impl SuiteReport {
    /// Canonical serialization of the sim-domain metrics only — the
    /// part of the report that must be bit-identical across runs.
    pub fn sim_canonical(&self) -> String {
        let mut out = String::new();
        for m in self.metrics.iter().filter(|m| m.domain == Domain::Sim) {
            out.push_str(&m.id);
            out.push('=');
            out.push_str(&num(m.median));
            out.push(';');
        }
        out
    }

    /// FNV-1a digest of [`sim_canonical`](Self::sim_canonical).
    pub fn sim_digest(&self) -> String {
        fnv1a_hex(self.sim_canonical().as_bytes())
    }

    /// Renders the schema-versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
        out.push_str(&format!("  \"suite\": {},\n", quote(&self.suite)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(&format!(
            "  \"machine\": {{\"os\": {}, \"arch\": {}, \"cpus\": {}}},\n",
            quote(std::env::consts::OS),
            quote(std::env::consts::ARCH),
            std::thread::available_parallelism().map_or(0, |n| n.get())
        ));
        out.push_str(&format!("  \"obs_digest\": {},\n", quote(&self.obs_digest)));
        out.push_str(&format!(
            "  \"sim_digest\": {},\n",
            quote(&self.sim_digest())
        ));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let samples: Vec<String> = m.samples.iter().map(|&s| num(s)).collect();
            out.push_str(&format!(
                "    {{\"id\": {}, \"unit\": {}, \"domain\": {}, \"better\": {}, \
                 \"median\": {}, \"mad\": {}, \"samples\": [{}]}}{}\n",
                quote(&m.id),
                quote(&m.unit),
                quote(m.domain.as_str()),
                quote(m.better.as_str()),
                num(m.median),
                num(m.mad),
                samples.join(", "),
                if i + 1 < self.metrics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<suite>.json` under [`crate::Report::out_dir`].
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = crate::Report::out_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
        // One outlier barely moves the MAD.
        assert_eq!(mad(&[1.0, 1.0, 1.0, 100.0]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), fnv1a_hex(b"a"));
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
    }

    #[test]
    fn registry_covers_all_suites_and_domains() {
        let all = cases();
        assert_eq!(suite_names(), vec!["des", "train", "serve"]);
        for suite in ["des", "train", "serve"] {
            let in_suite: Vec<_> = all.iter().filter(|c| c.suite == suite).collect();
            assert!(in_suite.len() >= 3, "{suite} suite too small");
            assert!(
                in_suite.iter().any(|c| c.domain == Domain::Sim),
                "{suite} needs a deterministic sim metric"
            );
            assert!(in_suite.iter().any(|c| c.domain == Domain::Wall));
        }
        // Metric ids are unique (they are the --check join key).
        let mut ids: Vec<_> = all.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn suite_report_round_trips_through_json() {
        let report = SuiteReport {
            suite: "des".into(),
            quick: true,
            trials: 2,
            metrics: vec![MetricResult {
                id: "x".into(),
                unit: "events/s".into(),
                domain: Domain::Sim,
                better: Better::Higher,
                median: 1.5,
                mad: 0.0,
                samples: vec![1.5, 1.5],
            }],
            obs_digest: "00".into(),
        };
        let parsed = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            parsed.get("sim_digest").unwrap().as_str(),
            Some(report.sim_digest().as_str())
        );
        let metrics = parsed.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics[0].get("median").unwrap().as_f64(), Some(1.5));
        assert_eq!(metrics[0].get("domain").unwrap().as_str(), Some("sim"));
    }

    #[test]
    fn unknown_suite_is_none() {
        assert!(run_suite("nope", 1, true).is_none());
    }
}
