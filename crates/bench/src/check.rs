//! `cumf bench --check`: compare a fresh [`SuiteReport`] against a
//! committed `BENCH_*.json` baseline and flag regressions.
//!
//! ## Semantics
//!
//! Each metric is joined by id. A metric regresses when it moves in
//! its bad direction (throughput down, latency up) by more than a
//! noise-aware relative tolerance:
//!
//! ```text
//! tol = min(TOL_CAP, max(floor(domain), MAD_MULT × (mad_b/med_b + mad_c/med_c)))
//! ```
//!
//! where `b`/`c` are baseline and current. The MAD term widens the
//! gate when either run was noisy; the floor keeps tiny-MAD runs from
//! demanding impossible stability — generous for wall-clock metrics
//! (different machines, CI jitter), tight for sim-domain metrics
//! (pure f64 arithmetic, reproduces exactly). The [`TOL_CAP`] ceiling
//! guarantees a genuine 3× slowdown always fails no matter how noisy
//! the trials were: dropping throughput to a third is a 66.7% relative
//! decline and tripling a latency is a 200% rise, both above the cap.
//!
//! Improvements never fail the check. Metrics present on only one
//! side are reported as skips, not failures, so adding or retiring a
//! benchmark does not break CI on the transition commit.

use crate::json::Json;
use crate::suite::{Better, Domain, SuiteReport, SCHEMA};

/// Relative-change floor for wall-clock metrics.
pub const WALL_FLOOR: f64 = 0.25;
/// Relative-change floor for sim-domain (deterministic) metrics.
pub const SIM_FLOOR: f64 = 0.02;
/// How many combined relative MADs of drift are tolerated.
pub const MAD_MULT: f64 = 8.0;
/// Ceiling on the tolerance, whatever the noise: kept below the 66.7%
/// relative decline a 3× throughput slowdown produces.
pub const TOL_CAP: f64 = 0.5;

/// One metric's comparison verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or improved).
    Ok,
    /// Moved in the bad direction beyond tolerance.
    Regressed,
    /// Present on only one side; not compared.
    Skipped,
}

/// One line of the comparison report.
#[derive(Debug, Clone)]
pub struct MetricCheck {
    /// Metric id.
    pub id: String,
    /// Comparison verdict.
    pub verdict: Verdict,
    /// Human-readable detail line.
    pub detail: String,
}

/// The full result of checking one suite against one baseline.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Suite name.
    pub suite: String,
    /// Per-metric outcomes.
    pub checks: Vec<MetricCheck>,
}

impl CheckReport {
    /// True when no metric regressed.
    pub fn passed(&self) -> bool {
        !self.checks.iter().any(|c| c.verdict == Verdict::Regressed)
    }

    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.checks
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .count()
    }

    /// Renders the verdict block for the terminal.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "check [{}]:", self.suite);
        for c in &self.checks {
            let tag = match c.verdict {
                Verdict::Ok => "ok",
                Verdict::Regressed => "REGRESSED",
                Verdict::Skipped => "skipped",
            };
            let _ = writeln!(out, "  {:<32} {:<9} {}", c.id, tag, c.detail);
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.passed() {
                "PASS".to_string()
            } else {
                format!("FAIL ({} regression(s))", self.regressions())
            }
        );
        out
    }
}

fn domain_floor(domain: Domain) -> f64 {
    match domain {
        Domain::Wall => WALL_FLOOR,
        Domain::Sim => SIM_FLOOR,
    }
}

/// Relative move in the bad direction (positive = worse), and the
/// tolerance it is judged against.
fn judge(
    better: Better,
    domain: Domain,
    base_median: f64,
    base_mad: f64,
    cur_median: f64,
    cur_mad: f64,
) -> (f64, f64) {
    let scale = base_median.abs().max(1e-12);
    let worse = match better {
        Better::Higher => (base_median - cur_median) / scale,
        Better::Lower => (cur_median - base_median) / scale,
    };
    let noise = base_mad / scale + cur_mad / cur_median.abs().max(1e-12);
    let tol = (MAD_MULT * noise).max(domain_floor(domain)).min(TOL_CAP);
    (worse, tol)
}

/// Checks a fresh report against a parsed baseline document.
/// Returns `Err` for structurally invalid baselines (wrong schema or
/// suite) — those are configuration errors, not regressions.
pub fn check_against(current: &SuiteReport, baseline: &Json) -> Result<CheckReport, String> {
    let schema = baseline
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline has no schema field")?;
    if schema != SCHEMA {
        return Err(format!(
            "schema mismatch: baseline {schema:?}, expected {SCHEMA:?}"
        ));
    }
    let suite = baseline
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("baseline has no suite field")?;
    if suite != current.suite {
        return Err(format!(
            "suite mismatch: baseline {suite:?}, current {:?}",
            current.suite
        ));
    }
    // Quick and full runs use different workload sizes, so their
    // absolute values (sim end times especially) are not comparable.
    let base_quick = matches!(baseline.get("quick"), Some(Json::Bool(true)));
    if base_quick != current.quick {
        return Err(format!(
            "workload mismatch: baseline is a {} run, current is {} (re-run with {})",
            if base_quick { "--quick" } else { "full" },
            if current.quick { "--quick" } else { "full" },
            if base_quick {
                "--quick"
            } else {
                "full workloads"
            },
        ));
    }
    let base_metrics = baseline
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("baseline has no metrics array")?;

    let mut checks = Vec::new();
    for m in &current.metrics {
        let base = base_metrics
            .iter()
            .find(|b| b.get("id").and_then(Json::as_str) == Some(m.id.as_str()));
        let Some(base) = base else {
            checks.push(MetricCheck {
                id: m.id.clone(),
                verdict: Verdict::Skipped,
                detail: "not in baseline".to_string(),
            });
            continue;
        };
        let (Some(base_median), Some(base_mad)) = (
            base.get("median").and_then(Json::as_f64),
            base.get("mad").and_then(Json::as_f64),
        ) else {
            checks.push(MetricCheck {
                id: m.id.clone(),
                verdict: Verdict::Skipped,
                detail: "baseline entry malformed".to_string(),
            });
            continue;
        };
        // Direction/domain come from the current registry (the source
        // of truth); the baseline copies are informational.
        let (worse, tol) = judge(m.better, m.domain, base_median, base_mad, m.median, m.mad);
        let verdict = if worse > tol {
            Verdict::Regressed
        } else {
            Verdict::Ok
        };
        checks.push(MetricCheck {
            id: m.id.clone(),
            verdict,
            detail: format!(
                "{} {:.6e} -> {:.6e} ({}{:.1}% worse, tol {:.1}%)",
                m.unit,
                base_median,
                m.median,
                if worse >= 0.0 { "+" } else { "" },
                100.0 * worse,
                100.0 * tol
            ),
        });
    }
    for b in base_metrics {
        if let Some(id) = b.get("id").and_then(Json::as_str) {
            if !current.metrics.iter().any(|m| m.id == id) {
                checks.push(MetricCheck {
                    id: id.to_string(),
                    verdict: Verdict::Skipped,
                    detail: "retired (not in current suite)".to_string(),
                });
            }
        }
    }
    Ok(CheckReport {
        suite: current.suite.clone(),
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::suite::MetricResult;

    fn report(median: f64, mad: f64, domain: Domain, better: Better) -> SuiteReport {
        SuiteReport {
            suite: "des".into(),
            quick: true,
            trials: 3,
            metrics: vec![MetricResult {
                id: "m".into(),
                unit: "events/s".into(),
                domain,
                better,
                median,
                mad,
                samples: vec![median; 3],
            }],
            obs_digest: "0".into(),
        }
    }

    fn baseline_for(r: &SuiteReport) -> Json {
        parse(&r.to_json()).unwrap()
    }

    #[test]
    fn unchanged_tree_passes() {
        let base = report(1000.0, 5.0, Domain::Wall, Better::Higher);
        let out = check_against(&base, &baseline_for(&base)).unwrap();
        assert!(out.passed(), "{}", out.render());
    }

    #[test]
    fn three_x_slowdown_fails_both_directions() {
        let base = report(3000.0, 10.0, Domain::Wall, Better::Higher);
        let cur = report(1000.0, 10.0, Domain::Wall, Better::Higher);
        let out = check_against(&cur, &baseline_for(&base)).unwrap();
        assert!(!out.passed(), "throughput/3 must regress");

        let base = report(1.0, 0.001, Domain::Wall, Better::Lower);
        let cur = report(3.0, 0.001, Domain::Wall, Better::Lower);
        let out = check_against(&cur, &baseline_for(&base)).unwrap();
        assert!(!out.passed(), "3x latency must regress");
        assert_eq!(out.regressions(), 1);
        assert!(out.render().contains("REGRESSED"));
    }

    #[test]
    fn three_x_fails_even_with_wild_noise() {
        // MAD term alone would allow anything; the TOL_CAP ceiling
        // keeps a genuine 3x slowdown failing regardless.
        let base = report(3000.0, 900.0, Domain::Wall, Better::Higher);
        let cur = report(1000.0, 300.0, Domain::Wall, Better::Higher);
        let out = check_against(&cur, &baseline_for(&base)).unwrap();
        assert!(!out.passed(), "{}", out.render());
    }

    #[test]
    fn improvement_and_small_noise_pass() {
        let base = report(1000.0, 20.0, Domain::Wall, Better::Higher);
        // 10% dip: under the 25% wall floor.
        let out = check_against(
            &report(900.0, 20.0, Domain::Wall, Better::Higher),
            &baseline_for(&base),
        )
        .unwrap();
        assert!(out.passed(), "{}", out.render());
        // 2x improvement: trivially fine.
        let out = check_against(
            &report(2000.0, 20.0, Domain::Wall, Better::Higher),
            &baseline_for(&base),
        )
        .unwrap();
        assert!(out.passed());
    }

    #[test]
    fn sim_metrics_get_the_tight_floor() {
        let base = report(100.0, 0.0, Domain::Sim, Better::Higher);
        // 5% drop in a deterministic metric is a real regression.
        let out = check_against(
            &report(95.0, 0.0, Domain::Sim, Better::Higher),
            &baseline_for(&base),
        )
        .unwrap();
        assert!(!out.passed());
        // 1% stays under the sim floor.
        let out = check_against(
            &report(99.0, 0.0, Domain::Sim, Better::Higher),
            &baseline_for(&base),
        )
        .unwrap();
        assert!(out.passed());
    }

    #[test]
    fn noisy_runs_widen_the_gate() {
        // 40% dip but both runs were wildly noisy: MAD term covers it.
        let base = report(1000.0, 60.0, Domain::Wall, Better::Higher);
        let out = check_against(
            &report(600.0, 60.0, Domain::Wall, Better::Higher),
            &baseline_for(&base),
        )
        .unwrap();
        assert!(out.passed(), "{}", out.render());
    }

    #[test]
    fn structural_mismatches_error_out() {
        let base = report(1.0, 0.0, Domain::Wall, Better::Higher);
        let mut doc = base.to_json();
        doc = doc.replace("cumf-bench/1", "cumf-bench/999");
        assert!(check_against(&base, &parse(&doc).unwrap()).is_err());
        let mut other = base.clone();
        other.suite = "train".into();
        assert!(check_against(&other, &baseline_for(&base)).is_err());
    }

    #[test]
    fn one_sided_metrics_skip_not_fail() {
        let base = report(1.0, 0.0, Domain::Wall, Better::Higher);
        let mut cur = base.clone();
        cur.metrics[0].id = "renamed".into();
        let out = check_against(&cur, &baseline_for(&base)).unwrap();
        assert!(out.passed());
        assert_eq!(
            out.checks
                .iter()
                .filter(|c| c.verdict == Verdict::Skipped)
                .count(),
            2,
            "one new + one retired"
        );
    }
}
