//! Criterion microbenchmarks of the SGD update kernel (§4): dot product
//! and full update, f32 vs f16 storage, across feature dimensions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cumf_core::half::F16;
use cumf_core::kernel::{dot, dot_scalar, sgd_update};

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    for k in [32usize, 64, 128] {
        let p: Vec<f32> = (0..k).map(|i| (i as f32 * 0.37).sin()).collect();
        let q: Vec<f32> = (0..k).map(|i| (i as f32 * 0.11).cos()).collect();
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("unrolled_f32", k), &k, |b, _| {
            b.iter(|| dot(black_box(&p[..]), black_box(&q[..])))
        });
        group.bench_with_input(BenchmarkId::new("scalar_f32", k), &k, |b, _| {
            b.iter(|| dot_scalar(black_box(&p[..]), black_box(&q[..])))
        });
        let p16: Vec<F16> = p.iter().map(|&x| F16::from_f32(x)).collect();
        let q16: Vec<F16> = q.iter().map(|&x| F16::from_f32(x)).collect();
        group.bench_with_input(BenchmarkId::new("unrolled_f16", k), &k, |b, _| {
            b.iter(|| dot(black_box(&p16[..]), black_box(&q16[..])))
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgd_update");
    for k in [32usize, 128] {
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("f32", k), &k, |b, &k| {
            let mut p: Vec<f32> = (0..k).map(|i| (i as f32 * 0.37).sin() * 0.3).collect();
            let mut q: Vec<f32> = (0..k).map(|i| (i as f32 * 0.11).cos() * 0.3).collect();
            b.iter(|| {
                sgd_update(
                    black_box(&mut p[..]),
                    black_box(&mut q[..]),
                    black_box(3.5),
                    0.01,
                    0.05,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("f16", k), &k, |b, &k| {
            let mut p: Vec<F16> = (0..k)
                .map(|i| F16::from_f32((i as f32 * 0.37).sin() * 0.3))
                .collect();
            let mut q: Vec<F16> = (0..k)
                .map(|i| F16::from_f32((i as f32 * 0.11).cos() * 0.3))
                .collect();
            b.iter(|| {
                sgd_update(
                    black_box(&mut p[..]),
                    black_box(&mut q[..]),
                    black_box(3.5),
                    0.01,
                    0.05,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dot, bench_update);
criterion_main!(benches);
