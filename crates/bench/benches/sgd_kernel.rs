//! Microbenchmarks of the SGD update kernel (§4): dot product and full
//! update, f32 vs f16 storage, across feature dimensions.

use cumf_bench::micro::{bench, black_box};
use cumf_core::half::F16;
use cumf_core::kernel::{dot, dot_scalar, sgd_update};

fn main() {
    for k in [32usize, 64, 128] {
        let p: Vec<f32> = (0..k).map(|i| (i as f32 * 0.37).sin()).collect();
        let q: Vec<f32> = (0..k).map(|i| (i as f32 * 0.11).cos()).collect();
        bench(&format!("dot/unrolled_f32/{k}"), k as u64, || {
            black_box(dot(black_box(&p[..]), black_box(&q[..])));
        });
        bench(&format!("dot/scalar_f32/{k}"), k as u64, || {
            black_box(dot_scalar(black_box(&p[..]), black_box(&q[..])));
        });
        let p16: Vec<F16> = p.iter().map(|&x| F16::from_f32(x)).collect();
        let q16: Vec<F16> = q.iter().map(|&x| F16::from_f32(x)).collect();
        bench(&format!("dot/unrolled_f16/{k}"), k as u64, || {
            black_box(dot(black_box(&p16[..]), black_box(&q16[..])));
        });
    }

    for k in [32usize, 128] {
        let mut p: Vec<f32> = (0..k).map(|i| (i as f32 * 0.37).sin() * 0.3).collect();
        let mut q: Vec<f32> = (0..k).map(|i| (i as f32 * 0.11).cos() * 0.3).collect();
        bench(&format!("sgd_update/f32/{k}"), k as u64, || {
            sgd_update(
                black_box(&mut p[..]),
                black_box(&mut q[..]),
                black_box(3.5),
                0.01,
                0.05,
            );
        });
        let mut p: Vec<F16> = (0..k)
            .map(|i| F16::from_f32((i as f32 * 0.37).sin() * 0.3))
            .collect();
        let mut q: Vec<F16> = (0..k)
            .map(|i| F16::from_f32((i as f32 * 0.11).cos() * 0.3))
            .collect();
        bench(&format!("sgd_update/f16/{k}"), k as u64, || {
            sgd_update(
                black_box(&mut p[..]),
                black_box(&mut q[..]),
                black_box(3.5),
                0.01,
                0.05,
            );
        });
    }
}
