//! Criterion microbenchmarks of the discrete-event engine: raw event
//! throughput, contended-server queueing, and processor-sharing links.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cumf_des::{Block, Ctx, LinkId, Process, ServerId, SimTime, Simulation};

struct Sleeper {
    left: u32,
}
impl Process for Sleeper {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Delay(SimTime::from_micros(1.0))
    }
}

struct Contender {
    left: u32,
    server: ServerId,
}
impl Process for Contender {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Service {
            server: self.server,
            hold: SimTime::from_micros(0.5),
        }
    }
}

struct Mover {
    left: u32,
    link: LinkId,
}
impl Process for Mover {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Transfer {
            link: self.link,
            bytes: 4096.0,
        }
    }
}

fn bench_des(c: &mut Criterion) {
    const EVENTS: u64 = 64 * 500;
    let mut group = c.benchmark_group("des_engine");
    group.throughput(Throughput::Elements(EVENTS));
    group.sample_size(20);

    group.bench_function("delays_64_procs", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            for _ in 0..64 {
                sim.spawn(Box::new(Sleeper { left: 500 }));
            }
            black_box(sim.run(None).events)
        })
    });
    group.bench_function("contended_server_64_procs", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let server = sim.add_server("cs", 4);
            for _ in 0..64 {
                sim.spawn(Box::new(Contender { left: 500, server }));
            }
            black_box(sim.run(None).events)
        })
    });
    group.bench_function("shared_link_64_procs", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let link = sim.add_link("dram", 1e9);
            for _ in 0..64 {
                sim.spawn(Box::new(Mover { left: 500, link }));
            }
            black_box(sim.run(None).events)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_des);
criterion_main!(benches);
