//! Microbenchmarks of the discrete-event engine: raw event throughput,
//! contended-server queueing, processor-sharing links, and head-to-head
//! calendar-vs-heap queue comparisons (the retained oracle doubles as a
//! same-binary reference, immune to machine drift between runs).

use cumf_bench::micro::{bench, black_box};
use cumf_des::reference::HeapQueue;
use cumf_des::{Block, Ctx, EventQueue, LinkId, Process, ServerId, SimTime, Simulation};

struct Sleeper {
    left: u32,
}
impl Process for Sleeper {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Delay(SimTime::from_micros(1.0))
    }
}

struct Contender {
    left: u32,
    server: ServerId,
}
impl Process for Contender {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Service {
            server: self.server,
            hold: SimTime::from_micros(0.5),
        }
    }
}

struct Mover {
    left: u32,
    link: LinkId,
}
impl Process for Mover {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Transfer {
            link: self.link,
            bytes: 4096.0,
        }
    }
}

fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Clustered pop/schedule churn (64 events per µs tick), the GPU-model
/// shape. Generated for both queue implementations so the pair can be
/// compared within one run.
macro_rules! clustered_case {
    ($name:literal, $ctor:expr, $ops:expr) => {
        bench($name, $ops, || {
            let mut q = $ctor;
            for i in 0..4_096u64 {
                q.schedule(SimTime::from_micros((i / 64) as f64), i as u32);
            }
            let ahead = SimTime::from_micros(64.0);
            for _ in 0..$ops {
                let (t, tag) = q.pop().expect("primed");
                q.schedule(t + ahead, tag);
            }
            black_box(q.pop());
        });
    };
}

/// Cancel-heavy churn: every round schedules one keeper and one doomed
/// event and cancels an older doomed one (the engine's link-retiming
/// pattern).
macro_rules! cancel_case {
    ($name:literal, $ctor:expr, $ops:expr) => {
        bench($name, $ops, || {
            let mut q = $ctor;
            let mut state = 0x5eedu64;
            for i in 0..2_048u64 {
                let at = lcg_next(&mut state) % 2_048;
                q.schedule(SimTime::from_micros(at as f64), i as u32);
            }
            let mut stash = Vec::with_capacity(128);
            let mut slot = 0usize;
            for _ in 0..$ops {
                let (t, tag) = q.pop().expect("primed");
                let a1 = 1 + lcg_next(&mut state) % 2_048;
                let a2 = 1 + lcg_next(&mut state) % 2_048;
                q.schedule(t + SimTime::from_micros(a1 as f64), tag);
                let doomed = q.schedule(t + SimTime::from_micros(a2 as f64), tag);
                if stash.len() < 128 {
                    stash.push(doomed);
                } else {
                    q.cancel(stash[slot]);
                    stash[slot] = doomed;
                    slot = (slot + 1) % 128;
                }
            }
            black_box(q.pop());
        });
    };
}

fn main() {
    const EVENTS: u64 = 64 * 500;
    const QOPS: u64 = 100_000;

    clustered_case!(
        "des_queue/clustered_calendar",
        EventQueue::<u32>::new(),
        QOPS
    );
    clustered_case!("des_queue/clustered_heap", HeapQueue::<u32>::new(), QOPS);
    cancel_case!("des_queue/cancel_calendar", EventQueue::<u32>::new(), QOPS);
    cancel_case!("des_queue/cancel_heap", HeapQueue::<u32>::new(), QOPS);

    bench("des_engine/delays_64_procs", EVENTS, || {
        let mut sim = Simulation::new();
        for _ in 0..64 {
            sim.spawn(Box::new(Sleeper { left: 500 }));
        }
        black_box(sim.run(None).events);
    });
    bench("des_engine/contended_server_64_procs", EVENTS, || {
        let mut sim = Simulation::new();
        let server = sim.add_server("cs", 4);
        for _ in 0..64 {
            sim.spawn(Box::new(Contender { left: 500, server }));
        }
        black_box(sim.run(None).events);
    });
    bench("des_engine/shared_link_64_procs", EVENTS, || {
        let mut sim = Simulation::new();
        let link = sim.add_link("dram", 1e9);
        for _ in 0..64 {
            sim.spawn(Box::new(Mover { left: 500, link }));
        }
        black_box(sim.run(None).events);
    });
}
