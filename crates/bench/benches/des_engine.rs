//! Microbenchmarks of the discrete-event engine: raw event throughput,
//! contended-server queueing, and processor-sharing links.

use cumf_bench::micro::{bench, black_box};
use cumf_des::{Block, Ctx, LinkId, Process, ServerId, SimTime, Simulation};

struct Sleeper {
    left: u32,
}
impl Process for Sleeper {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Delay(SimTime::from_micros(1.0))
    }
}

struct Contender {
    left: u32,
    server: ServerId,
}
impl Process for Contender {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Service {
            server: self.server,
            hold: SimTime::from_micros(0.5),
        }
    }
}

struct Mover {
    left: u32,
    link: LinkId,
}
impl Process for Mover {
    fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Block {
        if self.left == 0 {
            return Block::Done;
        }
        self.left -= 1;
        Block::Transfer {
            link: self.link,
            bytes: 4096.0,
        }
    }
}

fn main() {
    const EVENTS: u64 = 64 * 500;

    bench("des_engine/delays_64_procs", EVENTS, || {
        let mut sim = Simulation::new();
        for _ in 0..64 {
            sim.spawn(Box::new(Sleeper { left: 500 }));
        }
        black_box(sim.run(None).events);
    });
    bench("des_engine/contended_server_64_procs", EVENTS, || {
        let mut sim = Simulation::new();
        let server = sim.add_server("cs", 4);
        for _ in 0..64 {
            sim.spawn(Box::new(Contender { left: 500, server }));
        }
        black_box(sim.run(None).events);
    });
    bench("des_engine/shared_link_64_procs", EVENTS, || {
        let mut sim = Simulation::new();
        let link = sim.add_link("dram", 1e9);
        for _ in 0..64 {
            sim.spawn(Box::new(Mover { left: 500, link }));
        }
        black_box(sim.run(None).events);
    });
}
