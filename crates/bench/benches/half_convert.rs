//! Criterion microbenchmarks of the from-scratch binary16 conversions —
//! the half-precision storage path of §4 narrows/widens on every feature
//! load and store, so these conversions sit on the kernel's hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cumf_core::half::F16;

fn bench_half(c: &mut Criterion) {
    const N: usize = 4096;
    let floats: Vec<f32> = (0..N).map(|i| ((i as f32) * 0.173).sin() * 2.0).collect();
    let halves: Vec<F16> = floats.iter().map(|&x| F16::from_f32(x)).collect();

    let mut group = c.benchmark_group("half_convert");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("from_f32_bulk", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in black_box(&floats) {
                acc ^= F16::from_f32(x).to_bits();
            }
            acc
        })
    });
    group.bench_function("to_f32_bulk", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &h in black_box(&halves) {
                acc += h.to_f32();
            }
            acc
        })
    });
    group.bench_function("round_trip", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in black_box(&floats) {
                acc += F16::from_f32(x).to_f32();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_half);
criterion_main!(benches);
