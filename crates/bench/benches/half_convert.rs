//! Microbenchmarks of the from-scratch binary16 conversions — the
//! half-precision storage path of §4 narrows/widens on every feature
//! load and store, so these conversions sit on the kernel's hot path.

use cumf_bench::micro::{bench, black_box};
use cumf_core::half::F16;

fn main() {
    const N: usize = 4096;
    let floats: Vec<f32> = (0..N).map(|i| ((i as f32) * 0.173).sin() * 2.0).collect();
    let halves: Vec<F16> = floats.iter().map(|&x| F16::from_f32(x)).collect();

    bench("half_convert/from_f32_bulk", N as u64, || {
        let mut acc = 0u16;
        for &x in black_box(&floats) {
            acc ^= F16::from_f32(x).to_bits();
        }
        black_box(acc);
    });
    bench("half_convert/to_f32_bulk", N as u64, || {
        let mut acc = 0.0f32;
        for &h in black_box(&halves) {
            acc += h.to_f32();
        }
        black_box(acc);
    });
    bench("half_convert/round_trip", N as u64, || {
        let mut acc = 0.0f32;
        for &x in black_box(&floats) {
            acc += F16::from_f32(x).to_f32();
        }
        black_box(acc);
    });
}
