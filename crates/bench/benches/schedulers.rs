//! Criterion microbenchmarks of the scheduling-policy streams (§5): the
//! per-item cost of handing work to parallel workers, policy by policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cumf_core::sched::{
    BatchHogwildStream, HogwildStream, LibmfTableStream, SerialStream, StreamItem, UpdateStream,
    WavefrontStream,
};
use cumf_data::CooMatrix;

const N: usize = 100_000;
const WORKERS: usize = 16;

fn matrix() -> CooMatrix {
    let mut coo = CooMatrix::new(1024, 1024);
    for i in 0..N {
        coo.push(
            (i as u32).wrapping_mul(2654435761) % 1024,
            (i as u32).wrapping_mul(40503) % 1024,
            1.0,
        );
    }
    coo
}

/// Drains one full epoch from a stream, counting served samples.
fn drain<S: UpdateStream>(stream: &mut S) -> usize {
    let s = stream.workers();
    let mut served = 0;
    let mut done = vec![false; s];
    let mut live = s;
    while live > 0 {
        for w in 0..s {
            if done[w] {
                continue;
            }
            match stream.next(w) {
                StreamItem::Sample(i) => {
                    black_box(i);
                    served += 1;
                }
                StreamItem::Stall => {}
                StreamItem::Exhausted => {
                    done[w] = true;
                    live -= 1;
                }
            }
        }
    }
    served
}

fn bench_schedulers(c: &mut Criterion) {
    let coo = matrix();
    let mut group = c.benchmark_group("scheduler_epoch");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("serial", N), |b| {
        b.iter(|| {
            let mut s = SerialStream::new(N);
            drain(&mut s)
        })
    });
    group.bench_function(BenchmarkId::new("hogwild", N), |b| {
        b.iter(|| {
            let mut s = HogwildStream::new(N, WORKERS, 1);
            drain(&mut s)
        })
    });
    group.bench_function(BenchmarkId::new("batch_hogwild", N), |b| {
        b.iter(|| {
            let mut s = BatchHogwildStream::new(N, WORKERS, 256);
            drain(&mut s)
        })
    });
    group.bench_function(BenchmarkId::new("wavefront", N), |b| {
        b.iter(|| {
            let mut s = WavefrontStream::new(&coo, WORKERS, WORKERS * 4, 1);
            drain(&mut s)
        })
    });
    group.bench_function(BenchmarkId::new("libmf_table", N), |b| {
        b.iter(|| {
            let mut s = LibmfTableStream::new(&coo, WORKERS, 32, 1);
            drain(&mut s)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
