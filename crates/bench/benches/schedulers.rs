//! Microbenchmarks of the scheduling-policy streams (§5): the per-item
//! cost of handing work to parallel workers, policy by policy.

use cumf_bench::micro::{bench, black_box};
use cumf_core::sched::{
    BatchHogwildStream, HogwildStream, LibmfTableStream, SerialStream, StreamItem, UpdateStream,
    WavefrontStream,
};
use cumf_data::CooMatrix;

const N: usize = 100_000;
const WORKERS: usize = 16;

fn matrix() -> CooMatrix {
    let mut coo = CooMatrix::new(1024, 1024);
    for i in 0..N {
        coo.push(
            (i as u32).wrapping_mul(2654435761) % 1024,
            (i as u32).wrapping_mul(40503) % 1024,
            1.0,
        );
    }
    coo
}

/// Drains one full epoch from a stream, counting served samples.
fn drain<S: UpdateStream>(stream: &mut S) -> usize {
    let s = stream.workers();
    let mut served = 0;
    let mut done = vec![false; s];
    let mut live = s;
    while live > 0 {
        for (w, d) in done.iter_mut().enumerate() {
            if *d {
                continue;
            }
            match stream.next(w) {
                StreamItem::Sample(i) => {
                    black_box(i);
                    served += 1;
                }
                StreamItem::Stall => {}
                StreamItem::Exhausted => {
                    *d = true;
                    live -= 1;
                }
            }
        }
    }
    served
}

fn main() {
    let coo = matrix();

    bench("scheduler_epoch/serial", N as u64, || {
        let mut s = SerialStream::new(N);
        black_box(drain(&mut s));
    });
    bench("scheduler_epoch/hogwild", N as u64, || {
        let mut s = HogwildStream::new(N, WORKERS, 1);
        black_box(drain(&mut s));
    });
    bench("scheduler_epoch/batch_hogwild", N as u64, || {
        let mut s = BatchHogwildStream::new(N, WORKERS, 256);
        black_box(drain(&mut s));
    });
    bench("scheduler_epoch/wavefront", N as u64, || {
        let mut s = WavefrontStream::new(&coo, WORKERS, WORKERS * 4, 1);
        black_box(drain(&mut s));
    });
    bench("scheduler_epoch/libmf_table", N as u64, || {
        let mut s = LibmfTableStream::new(&coo, WORKERS, 32, 1);
        black_box(drain(&mut s));
    });
}
