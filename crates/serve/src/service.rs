//! The deterministic closed-loop serving engine.
//!
//! A fleet of simulated clients drives Zipf-skewed top-N requests
//! through a scatter-gather read path over the sharded model, entirely
//! on `cumf-des` sim-time: every latency, shed decision, retry and
//! breaker transition is a pure function of the [`ServeConfig`] (seed
//! included), so two runs produce bit-identical histograms and
//! recovery logs.
//!
//! ## Request lifecycle
//!
//! ```text
//! admission ──shed──────────────────────────────▶ (client thinks, retries later)
//!    │
//!  cache ──hit──────────────────────────────────▶ Ok (cache_hit_s)
//!    │
//!  scatter: read P(u) + every Q shard, replica 0
//!    │         │ per read: FCFS server, timeout, budgeted retry on
//!    │         │ the other replica, hedge after the observed p95,
//!    │         │ per-shard circuit breaker fast-fail
//!    ▼         ▼
//!  gather ── all Ok ────────────────────────────▶ Ok (cached)
//!    │        p Ok, some Q ─────────────────────▶ Degraded(PartialItems)
//!    │        p Ok, no Q / p lost ── stale? ────▶ Degraded(StaleCache)
//!    │                              └── else ──▶ Degraded(PopularityPrior)
//!    ▼
//!  deadline event (scheduled at issue, FIFO-ordered before any
//!  same-instant completion) finalizes whatever has resolved — an
//!  enforcing run can never return a *successful* answer past its
//!  deadline, structurally.
//! ```

use std::collections::VecDeque;
use std::ops::Range;

use cumf_core::faults::{fnv1a64, RecoveryKind, RecoveryLog, RetryPolicy};
use cumf_core::Element;
use cumf_data::synth::{zipf_weights, AliasTable};
use cumf_des::{EventQueue, SimTime};
use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

use crate::cache::ResultCache;
use crate::hist::LatencyHistogram;
use crate::policy::{BreakerState, CircuitBreaker, HedgeTracker, TokenBucket};
use crate::shard::{ShardId, ShardedModel};
use crate::topn::{top_n_blocked, top_n_popular, Scored, TopAcc, SCAN_BLOCK};

/// Which overload-control mechanisms are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Token-bucket admission at the front door.
    pub admission: bool,
    /// Finalize every request at its deadline (degraded if needed).
    pub deadline_enforce: bool,
    /// Per-read timeouts (prerequisite for retries and the breaker).
    pub timeouts: bool,
    /// Budgeted retry on the alternate replica after a timeout.
    pub retry_on_timeout: bool,
    /// Hedged second read after the observed latency quantile.
    pub hedging: bool,
    /// Per-shard circuit breaker fast-fail.
    pub breaker: bool,
}

impl OverloadPolicy {
    /// Everything on — the shipped configuration.
    pub fn full() -> Self {
        OverloadPolicy {
            admission: true,
            deadline_enforce: true,
            timeouts: true,
            retry_on_timeout: true,
            hedging: true,
            breaker: true,
        }
    }

    /// Everything off: best-effort serving that answers as late as the
    /// reads take. The control group for every robustness claim.
    pub fn raw() -> Self {
        OverloadPolicy {
            admission: false,
            deadline_enforce: false,
            timeouts: false,
            retry_on_timeout: false,
            hedging: false,
            breaker: false,
        }
    }

    /// Full read-path machinery but no admission control and no
    /// deadline finalizer — what the fleet looks like when the front
    /// door is propped open. Used to demonstrate that admission is the
    /// mechanism upholding the deadline bound under overload.
    pub fn no_admission() -> Self {
        OverloadPolicy {
            admission: false,
            deadline_enforce: false,
            ..OverloadPolicy::full()
        }
    }
}

/// A deterministic fault injected into the serving fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFault {
    /// Both replicas of `shard` stop answering during `[from_s, until_s)`;
    /// reads started in the window park until recovery.
    ShardLoss {
        /// Which shard is lost.
        shard: ShardId,
        /// Sim-time the loss begins.
        from_s: f64,
        /// Sim-time the shard recovers.
        until_s: f64,
    },
    /// One replica of `shard` slows down by `factor` during the window.
    ShardStall {
        /// Which shard stalls.
        shard: ShardId,
        /// Which replica of it.
        replica: u32,
        /// Sim-time the stall begins.
        from_s: f64,
        /// Sim-time the stall ends.
        until_s: f64,
        /// Service-time multiplier while stalled.
        factor: f64,
    },
}

impl ServeFault {
    fn describe(&self) -> String {
        match self {
            ServeFault::ShardLoss {
                shard,
                from_s,
                until_s,
            } => format!("shard {shard} lost during [{from_s:.3}s, {until_s:.3}s)"),
            ServeFault::ShardStall {
                shard,
                replica,
                from_s,
                until_s,
                factor,
            } => format!(
                "shard {shard} replica {replica} stalled x{factor} during [{from_s:.3}s, {until_s:.3}s)"
            ),
        }
    }
}

/// How a degraded response was composed, from best to worst quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeKind {
    /// Fresh factors, but only the item ranges whose Q-shards answered.
    PartialItems,
    /// A cached result computed against an older model version.
    StaleCache,
    /// Ranked by the training-set popularity prior alone.
    PopularityPrior,
}

impl std::fmt::Display for DegradeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeKind::PartialItems => write!(f, "partial-items"),
            DegradeKind::StaleCache => write!(f, "stale-cache"),
            DegradeKind::PopularityPrior => write!(f, "popularity-prior"),
        }
    }
}

/// Configuration of a closed-loop serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Closed-loop clients (each waits for its response before thinking).
    pub clients: u32,
    /// Total requests to issue before the loop drains.
    pub requests: u32,
    /// Zipf exponent of the user popularity distribution.
    pub zipf_s: f64,
    /// Results per response.
    pub top_n: usize,
    /// LRU result-cache capacity.
    pub cache_capacity: usize,
    /// Per-request deadline (simulated seconds).
    pub deadline_s: f64,
    /// Per-read timeout (simulated seconds).
    pub read_timeout_s: f64,
    /// Mean client think time between requests (exponential).
    pub think_s: f64,
    /// Latency of a result-cache hit.
    pub cache_hit_s: f64,
    /// Mean shard-read service time.
    pub read_base_s: f64,
    /// Uniform jitter fraction on the read service time.
    pub read_jitter: f64,
    /// Parallel service slots per shard replica.
    pub slots_per_replica: u32,
    /// Replicas per shard (hedges and retries target the alternate one).
    pub replicas: u32,
    /// Backoff envelope for read retries.
    pub retry: RetryPolicy,
    /// Global retry budget: tokens/s.
    pub retry_rate: f64,
    /// Global retry budget: burst.
    pub retry_burst: f64,
    /// Admission controller: tokens/s.
    pub admission_rate: f64,
    /// Admission controller: burst.
    pub admission_burst: f64,
    /// Hedge at this quantile of observed read latency.
    pub hedge_quantile: f64,
    /// Hedge delay before the tracker warms up.
    pub hedge_initial_s: f64,
    /// Hedge delay floor.
    pub hedge_floor_s: f64,
    /// Consecutive read failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// Breaker cooldown before the half-open probe.
    pub breaker_cooldown_s: f64,
    /// Which overload controls are active.
    pub policy: OverloadPolicy,
    /// Optional injected fault.
    pub fault: Option<ServeFault>,
    /// Master seed; every stream is derived from it by tag.
    pub seed: u64,
    /// Maximum transcript lines retained in the report.
    pub transcript_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            clients: 16,
            requests: 2000,
            zipf_s: 1.1,
            top_n: 10,
            cache_capacity: 512,
            deadline_s: 0.050,
            read_timeout_s: 0.010,
            think_s: 0.002,
            cache_hit_s: 5.0e-5,
            read_base_s: 8.0e-4,
            read_jitter: 0.25,
            slots_per_replica: 4,
            replicas: 2,
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay_s: 0.002,
                multiplier: 2.0,
                max_delay_s: 0.020,
                jitter: 0.25,
                seed: 0xC0FFEE,
            },
            retry_rate: 500.0,
            retry_burst: 32.0,
            admission_rate: 8000.0,
            admission_burst: 64.0,
            hedge_quantile: 0.95,
            hedge_initial_s: 0.005,
            hedge_floor_s: 2.0e-4,
            breaker_threshold: 5,
            breaker_cooldown_s: 0.050,
            policy: OverloadPolicy::full(),
            fault: None,
            seed: 42,
            transcript_limit: 24,
        }
    }
}

/// The liveness annotation the deadlock certifier consumes: the serve
/// deadline must strictly dominate the worst-case shard wait chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeLivenessAnno {
    /// Total service slots per shard (`slots_per_replica × replicas`).
    pub slots: u32,
    /// Worst-case single-read hold time (`read_base_s × (1 + jitter)`).
    pub hold_s: f64,
    /// Worst-case queue depth ahead of a read (every other client's
    /// primary plus hedge: `clients × 2 − 1`).
    pub max_waiters: u32,
    /// The watchdog: the per-request deadline.
    pub deadline_s: f64,
    /// Retry attempts in the envelope (documentation for the cert).
    pub retry_attempts: u32,
    /// Total retry backoff if every attempt fails.
    pub retry_total_backoff_s: f64,
    /// Source anchor for the certificate.
    pub anchor: &'static str,
}

impl ServeConfig {
    /// The liveness numbers the shipped configuration promises.
    pub fn liveness_anno(&self) -> ServeLivenessAnno {
        ServeLivenessAnno {
            slots: self.slots_per_replica * self.replicas,
            hold_s: self.read_base_s * (1.0 + self.read_jitter),
            max_waiters: self.clients * 2 - 1,
            deadline_s: self.deadline_s,
            retry_attempts: self.retry.max_attempts,
            retry_total_backoff_s: self.retry.total_backoff_s(),
            anchor: "crates/serve/src/service.rs",
        }
    }
}

/// Everything a closed-loop run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests issued (admitted or shed).
    pub issued: u64,
    /// Requests that produced a response (shed excluded).
    pub completed: u64,
    /// Full-quality successes (fresh factors, full item coverage).
    pub ok: u64,
    /// Successes answered from the result cache.
    pub cache_hits: u64,
    /// Requests shed by the admission controller.
    pub shed: u64,
    /// Degraded responses with partial item coverage.
    pub degraded_partial: u64,
    /// Degraded responses from the stale cache.
    pub degraded_stale: u64,
    /// Degraded responses from the popularity prior.
    pub degraded_popularity: u64,
    /// Full-quality responses delivered after the deadline (only
    /// possible when deadline enforcement is off).
    pub late_success: u64,
    /// Requests finalized by their deadline event.
    pub deadline_finalized: u64,
    /// Hedge reads issued / hedge reads that won their race.
    pub hedges: u64,
    /// Hedge reads that resolved their shard first.
    pub hedge_wins: u64,
    /// Read retries issued.
    pub retries: u64,
    /// Read timeouts observed.
    pub timeouts: u64,
    /// Reads fast-failed by an open breaker.
    pub breaker_fastfail: u64,
    /// Breaker open transitions across all shards.
    pub breaker_opens: u64,
    /// End-to-end response latency distribution (seconds).
    pub latency: LatencyHistogram,
    /// Individual shard-read latency distribution (seconds).
    pub read_latency: LatencyHistogram,
    /// Fault/degradation event log (digested for determinism checks).
    pub recovery: RecoveryLog,
    /// Sim-time at which the loop drained.
    pub sim_end_s: f64,
    /// Configured deadline (echoed for rendering).
    pub deadline_s: f64,
    /// First few notable events, human-readable.
    pub transcript: Vec<String>,
}

impl ServeReport {
    /// Fraction of completed requests that got a non-empty answer
    /// (degraded allowed; shed requests are not in the denominator).
    pub fn availability(&self) -> f64 {
        if self.completed == 0 {
            return 1.0;
        }
        let answered = self.ok
            + self.cache_hits
            + self.degraded_partial
            + self.degraded_stale
            + self.degraded_popularity;
        answered as f64 / self.completed as f64
    }

    /// Total degraded responses.
    pub fn degraded(&self) -> u64 {
        self.degraded_partial + self.degraded_stale + self.degraded_popularity
    }

    /// Latency quantile in seconds.
    pub fn p(&self, q: f64) -> f64 {
        self.latency.quantile(q).unwrap_or(0.0)
    }

    /// Completed requests per simulated second.
    pub fn qps(&self) -> f64 {
        if self.sim_end_s > 0.0 {
            self.completed as f64 / self.sim_end_s
        } else {
            0.0
        }
    }

    /// Bit-exact fingerprint of the run: latency + read-latency
    /// histograms, the recovery log, and every counter.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::new();
        for v in [
            self.latency.digest(),
            self.read_latency.digest(),
            self.recovery.digest(),
            self.issued,
            self.completed,
            self.ok,
            self.cache_hits,
            self.shed,
            self.degraded_partial,
            self.degraded_stale,
            self.degraded_popularity,
            self.late_success,
            self.deadline_finalized,
            self.hedges,
            self.hedge_wins,
            self.retries,
            self.timeouts,
            self.breaker_fastfail,
            self.breaker_opens,
        ] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&self.sim_end_s.to_bits().to_le_bytes());
        fnv1a64(&bytes)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let ms = |s: f64| s * 1e3;
        let mut out = String::new();
        out.push_str("metric                      value\n");
        out.push_str("--------------------------  ----------\n");
        out.push_str(&format!("requests issued             {}\n", self.issued));
        out.push_str(&format!("completed                   {}\n", self.completed));
        out.push_str(&format!(
            "ok (full quality)           {}\n",
            self.ok + self.cache_hits
        ));
        out.push_str(&format!(
            "  of which cache hits       {}\n",
            self.cache_hits
        ));
        out.push_str(&format!("shed (admission)            {}\n", self.shed));
        out.push_str(&format!(
            "degraded                    {} (partial {}, stale {}, popularity {})\n",
            self.degraded(),
            self.degraded_partial,
            self.degraded_stale,
            self.degraded_popularity
        ));
        out.push_str(&format!(
            "availability                {:.4}\n",
            self.availability()
        ));
        out.push_str(&format!(
            "late successes              {} (deadline {:.1} ms)\n",
            self.late_success,
            ms(self.deadline_s)
        ));
        out.push_str(&format!(
            "p50 / p99 / p999            {:.2} / {:.2} / {:.2} ms\n",
            ms(self.p(0.50)),
            ms(self.p(0.99)),
            ms(self.p(0.999))
        ));
        out.push_str(&format!(
            "throughput                  {:.0} req/s (sim)\n",
            self.qps()
        ));
        out.push_str(&format!(
            "hedges / wins               {} / {}\n",
            self.hedges, self.hedge_wins
        ));
        out.push_str(&format!(
            "timeouts / retries          {} / {}\n",
            self.timeouts, self.retries
        ));
        out.push_str(&format!(
            "breaker opens / fastfails   {} / {}\n",
            self.breaker_opens, self.breaker_fastfail
        ));
        out.push_str(&format!(
            "digest                      {:016x}\n",
            self.digest()
        ));
        out
    }
}

// ------------------------------------------------------------------ engine

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A client is ready to issue its next request.
    ClientNext { client: u32 },
    /// A shard read finished service at its replica.
    ReadDone { read: usize },
    /// A shard read's timeout expired.
    ReadTimeout { read: usize },
    /// Issue the hedge read for a request's fetch.
    Hedge { req: usize, fetch: usize },
    /// Issue a retry read for a request's fetch.
    Retry { req: usize, fetch: usize },
    /// Finalize the request with whatever has resolved.
    Deadline { req: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchStatus {
    Pending,
    Ok,
    Failed,
}

#[derive(Debug)]
struct Fetch {
    shard: ShardId,
    status: FetchStatus,
    /// Attempts used so far (0 = primary only).
    attempt: u32,
    hedged: bool,
}

#[derive(Debug)]
struct Request {
    client: u32,
    user: u32,
    issue_s: f64,
    fetches: Vec<Fetch>,
    outstanding: u32,
    finalized: bool,
}

#[derive(Debug)]
struct Read {
    req: usize,
    fetch: usize,
    shard: ShardId,
    replica: u32,
    issue_s: f64,
    is_hedge: bool,
    /// Service completed (slot freed, result delivered or ignored).
    done: bool,
    /// The request gave up on this read (timeout); service may still
    /// be grinding and will free its slot when it completes.
    abandoned: bool,
    started: bool,
}

#[derive(Debug, Default)]
struct Server {
    busy: u32,
    queue: VecDeque<usize>,
}

fn sub_rng(seed: u64, tag: &str, a: u64, b: u64) -> ChaCha8Rng {
    let mut bytes = Vec::with_capacity(24 + tag.len());
    bytes.extend_from_slice(&seed.to_le_bytes());
    bytes.extend_from_slice(tag.as_bytes());
    bytes.extend_from_slice(&a.to_le_bytes());
    bytes.extend_from_slice(&b.to_le_bytes());
    ChaCha8Rng::seed_from_u64(fnv1a64(&bytes))
}

struct Sim<'m, E: Element> {
    model: &'m ShardedModel<E>,
    cfg: ServeConfig,
    users: AliasTable,
    queue: EventQueue<Ev>,
    now: f64,
    requests: Vec<Request>,
    reads: Vec<Read>,
    servers: Vec<Server>,
    breakers: Vec<CircuitBreaker>,
    breaker_was_open: Vec<bool>,
    admission: TokenBucket,
    retry_budget: TokenBucket,
    hedge: HedgeTracker,
    cache: ResultCache,
    think_seq: Vec<u64>,
    issued: u64,
    report: ServeReport,
    /// Lockset-sanitizer instance id for the shard/slot state (feature
    /// `sanitize`): every `Server::busy`/`Server::queue` mutation is
    /// reported as a write to `("serve-slot", (san_id, server idx))`.
    /// The DES event loop is single-threaded, so each slot must stay in
    /// the sanitizer's thread-exclusive state — any report is a bug.
    #[cfg(feature = "sanitize")]
    san_id: u64,
}

impl<'m, E: Element> Sim<'m, E> {
    fn new(model: &'m ShardedModel<E>, cfg: ServeConfig) -> Self {
        assert!(cfg.replicas >= 1 && cfg.slots_per_replica >= 1);
        assert!(cfg.clients >= 1);
        let users = AliasTable::new(&zipf_weights(model.users() as usize, cfg.zipf_s));
        let shard_count = model.shard_count();
        let servers = (0..shard_count * cfg.replicas as usize)
            .map(|_| Server::default())
            .collect();
        let breakers = (0..shard_count)
            .map(|_| CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_s))
            .collect();
        let report = ServeReport {
            issued: 0,
            completed: 0,
            ok: 0,
            cache_hits: 0,
            shed: 0,
            degraded_partial: 0,
            degraded_stale: 0,
            degraded_popularity: 0,
            late_success: 0,
            deadline_finalized: 0,
            hedges: 0,
            hedge_wins: 0,
            retries: 0,
            timeouts: 0,
            breaker_fastfail: 0,
            breaker_opens: 0,
            latency: LatencyHistogram::new(),
            read_latency: LatencyHistogram::new(),
            recovery: RecoveryLog::default(),
            sim_end_s: 0.0,
            deadline_s: cfg.deadline_s,
            transcript: Vec::new(),
        };
        Sim {
            model,
            users,
            queue: EventQueue::new(),
            now: 0.0,
            requests: Vec::new(),
            reads: Vec::new(),
            servers,
            breakers,
            breaker_was_open: vec![false; shard_count],
            admission: TokenBucket::new(cfg.admission_rate, cfg.admission_burst),
            retry_budget: TokenBucket::new(cfg.retry_rate, cfg.retry_burst),
            hedge: HedgeTracker::new(cfg.hedge_quantile, cfg.hedge_initial_s, cfg.hedge_floor_s),
            cache: ResultCache::new(cfg.cache_capacity),
            think_seq: vec![0; cfg.clients as usize],
            issued: 0,
            cfg,
            report,
            #[cfg(feature = "sanitize")]
            san_id: cumf_core::sanitize::new_instance(),
        }
    }

    /// Reports a slot-state mutation to the lockset sanitizer (no-op
    /// without the `sanitize` feature).
    #[cfg(feature = "sanitize")]
    fn san_slot_write(&self, idx: usize) {
        cumf_core::sanitize::on_access(
            "serve-slot",
            (self.san_id, idx as u32),
            cumf_core::sanitize::AccessKind::Write,
        );
    }

    #[cfg(not(feature = "sanitize"))]
    fn san_slot_write(&self, _idx: usize) {}

    fn note(&mut self, line: String) {
        if self.report.transcript.len() < self.cfg.transcript_limit {
            self.report
                .transcript
                .push(format!("[{:8.4}s] {line}", self.now));
        }
    }

    fn at(&mut self, delay_s: f64, ev: Ev) {
        self.queue
            .schedule(SimTime::from_secs(self.now + delay_s.max(0.0)), ev);
    }

    fn think_delay(&mut self, client: u32) -> f64 {
        let seq = self.think_seq[client as usize];
        self.think_seq[client as usize] += 1;
        let u: f64 = sub_rng(self.cfg.seed, "think", client as u64, seq).gen();
        (-self.cfg.think_s * (1.0 - u).ln()).max(1.0e-6)
    }

    /// Loss window end, if `shard` is lost at `t`.
    fn loss_until(&self, shard: ShardId, t: f64) -> Option<f64> {
        match self.cfg.fault {
            Some(ServeFault::ShardLoss {
                shard: s,
                from_s,
                until_s,
            }) if s == shard && t >= from_s && t < until_s => Some(until_s),
            _ => None,
        }
    }

    fn stall_factor(&self, shard: ShardId, replica: u32, t: f64) -> f64 {
        match self.cfg.fault {
            Some(ServeFault::ShardStall {
                shard: s,
                replica: r,
                from_s,
                until_s,
                factor,
            }) if s == shard && r == replica && t >= from_s && t < until_s => factor,
            _ => 1.0,
        }
    }

    // -------------------------------------------------------- read path

    fn server_idx(&self, shard: ShardId, replica: u32) -> usize {
        shard * self.cfg.replicas as usize + replica as usize
    }

    fn start_service(&mut self, read_id: usize) {
        let (shard, replica) = (self.reads[read_id].shard, self.reads[read_id].replica);
        self.reads[read_id].started = true;
        let u: f64 = sub_rng(self.cfg.seed, "svc", read_id as u64, 0).gen();
        let mut svc = self.cfg.read_base_s * (1.0 + self.cfg.read_jitter * (2.0 * u - 1.0));
        svc *= self.stall_factor(shard, replica, self.now);
        if let Some(until) = self.loss_until(shard, self.now) {
            // The read parks until the shard recovers, then services.
            svc += until - self.now;
        }
        self.at(svc, Ev::ReadDone { read: read_id });
    }

    fn enqueue_read(&mut self, read_id: usize) {
        let idx = self.server_idx(self.reads[read_id].shard, self.reads[read_id].replica);
        self.san_slot_write(idx);
        if self.servers[idx].busy < self.cfg.slots_per_replica {
            self.servers[idx].busy += 1;
            self.start_service(read_id);
        } else {
            self.servers[idx].queue.push_back(read_id);
        }
    }

    /// Issues one read attempt for `(req, fetch)`. Returns `false` when
    /// the breaker fast-failed it (caller walks the retry path).
    fn issue_read(&mut self, req: usize, fetch: usize, replica: u32, is_hedge: bool) -> bool {
        let shard = self.requests[req].fetches[fetch].shard;
        if self.cfg.policy.breaker && !self.breakers[shard].allow(self.now) {
            self.report.breaker_fastfail += 1;
            return false;
        }
        let read_id = self.reads.len();
        self.reads.push(Read {
            req,
            fetch,
            shard,
            replica,
            issue_s: self.now,
            is_hedge,
            done: false,
            abandoned: false,
            started: false,
        });
        self.enqueue_read(read_id);
        if self.cfg.policy.timeouts {
            self.at(self.cfg.read_timeout_s, Ev::ReadTimeout { read: read_id });
        }
        true
    }

    /// A read attempt for `(req, fetch)` failed (timeout or breaker
    /// fast-fail): retry under the budget, or resolve the fetch Failed.
    fn fail_fetch(&mut self, req: usize, fetch: usize) {
        if self.requests[req].finalized
            || self.requests[req].fetches[fetch].status != FetchStatus::Pending
        {
            return;
        }
        let attempt = self.requests[req].fetches[fetch].attempt;
        let can_retry = self.cfg.policy.retry_on_timeout
            && attempt + 1 < self.cfg.retry.max_attempts
            && self.retry_budget.try_take(self.now);
        if can_retry {
            self.requests[req].fetches[fetch].attempt = attempt + 1;
            self.report.retries += 1;
            let backoff = self.cfg.retry.delay(attempt);
            self.at(backoff, Ev::Retry { req, fetch });
        } else {
            self.requests[req].fetches[fetch].status = FetchStatus::Failed;
            self.requests[req].outstanding -= 1;
            if self.requests[req].outstanding == 0 {
                self.finalize(req, false);
            }
        }
    }

    fn breaker_transitions(&mut self, shard: ShardId, req: usize) {
        let open = self.breakers[shard].state() == BreakerState::Open;
        if open && !self.breaker_was_open[shard] {
            self.report.breaker_opens += 1;
            let name = self.model.shard_name(shard);
            self.report.recovery.push(
                req as u32,
                RecoveryKind::Detected,
                format!("breaker open: shard {name}"),
            );
            self.note(format!("breaker OPEN on shard {name}"));
        }
        if !open && self.breaker_was_open[shard] {
            let name = self.model.shard_name(shard);
            self.report.recovery.push(
                req as u32,
                RecoveryKind::Recovered,
                format!("breaker closed: shard {name}"),
            );
            self.note(format!("breaker closed on shard {name}"));
        }
        self.breaker_was_open[shard] = open;
    }

    // ---------------------------------------------------- request path

    fn issue_request(&mut self, client: u32) {
        let req_seq = self.issued;
        self.issued += 1;
        self.report.issued += 1;
        let user = self
            .users
            .sample(&mut sub_rng(self.cfg.seed, "user", req_seq, 0));

        if self.cfg.policy.admission && !self.admission.try_take(self.now) {
            self.report.shed += 1;
            let think = self.think_delay(client);
            self.at(think, Ev::ClientNext { client });
            return;
        }

        if self.cache.get(user, self.model.version()).is_some() {
            self.report.cache_hits += 1;
            self.report.completed += 1;
            self.report.latency.record(self.cfg.cache_hit_s);
            let think = self.cfg.cache_hit_s + self.think_delay(client);
            self.at(think, Ev::ClientNext { client });
            return;
        }

        let req = self.requests.len();
        let mut fetches = Vec::with_capacity(1 + self.model.q_shards() as usize);
        fetches.push(Fetch {
            shard: self.model.p_shard_of(user),
            status: FetchStatus::Pending,
            attempt: 0,
            hedged: false,
        });
        for bj in 0..self.model.q_shards() {
            fetches.push(Fetch {
                shard: self.model.q_shard_id(bj),
                status: FetchStatus::Pending,
                attempt: 0,
                hedged: false,
            });
        }
        let outstanding = fetches.len() as u32;
        self.requests.push(Request {
            client,
            user,
            issue_s: self.now,
            fetches,
            outstanding,
            finalized: false,
        });

        // Deadline first: at an equal instant the FIFO tie-break pops it
        // before any completion scheduled later, so an enforcing run can
        // never finalize a success at t > issue + deadline.
        if self.cfg.policy.deadline_enforce {
            self.at(self.cfg.deadline_s, Ev::Deadline { req });
        }
        let hedge_delay = self.hedge.delay_s();
        for fetch in 0..self.requests[req].fetches.len() {
            if !self.issue_read(req, fetch, 0, false) {
                self.fail_fetch(req, fetch);
            }
            if self.cfg.policy.hedging && self.cfg.replicas > 1 {
                self.at(hedge_delay, Ev::Hedge { req, fetch });
            }
        }
    }

    /// Top-N over the item ranges whose Q-shards answered.
    fn scan_ranges(&self, user: u32, ranges: &[Range<u32>]) -> Vec<Scored> {
        let mut acc = TopAcc::new(self.cfg.top_n);
        for r in ranges {
            for s in top_n_blocked(
                self.model.user_row(user),
                self.model.q_matrix(),
                r.clone(),
                self.cfg.top_n,
                SCAN_BLOCK,
            ) {
                acc.offer(s.item, s.score);
            }
        }
        acc.into_sorted()
    }

    fn finalize(&mut self, req: usize, by_deadline: bool) {
        if self.requests[req].finalized {
            return;
        }
        self.requests[req].finalized = true;
        let user = self.requests[req].user;
        let client = self.requests[req].client;
        let latency = self.now - self.requests[req].issue_s;
        if by_deadline {
            self.report.deadline_finalized += 1;
        }

        let p_ok = self.requests[req].fetches[0].status == FetchStatus::Ok;
        let ok_ranges: Vec<Range<u32>> = self.requests[req].fetches[1..]
            .iter()
            .enumerate()
            .filter(|(_, f)| f.status == FetchStatus::Ok)
            .map(|(bj, _)| self.model.item_range(bj as u32))
            .collect();
        let full = p_ok && ok_ranges.len() == self.model.q_shards() as usize;

        let degrade: Option<DegradeKind>;
        let result: Vec<Scored>;
        if full {
            degrade = None;
            result = self.scan_ranges(user, &ok_ranges);
            self.cache.put(user, self.model.version(), result.clone());
        } else if p_ok && !ok_ranges.is_empty() {
            degrade = Some(DegradeKind::PartialItems);
            result = self.scan_ranges(user, &ok_ranges);
        } else if let Some((_, stale)) = self.cache.get_stale(user) {
            degrade = Some(DegradeKind::StaleCache);
            result = stale.to_vec();
        } else {
            degrade = Some(DegradeKind::PopularityPrior);
            result = top_n_popular(
                self.model.popularity(),
                0..self.model.items(),
                self.cfg.top_n,
            );
        }

        self.report.completed += 1;
        self.report.latency.record(latency);
        cumf_obs::histogram("cumf_serve_latency_seconds", "End-to-end serve latency")
            .record(latency);
        match degrade {
            None => {
                self.report.ok += 1;
                if latency > self.cfg.deadline_s * (1.0 + 1.0e-9) {
                    self.report.late_success += 1;
                }
            }
            Some(kind) => {
                match kind {
                    DegradeKind::PartialItems => self.report.degraded_partial += 1,
                    DegradeKind::StaleCache => self.report.degraded_stale += 1,
                    DegradeKind::PopularityPrior => self.report.degraded_popularity += 1,
                }
                self.report.recovery.push(
                    req as u32,
                    RecoveryKind::Degraded,
                    format!("user {user}: {kind} ({} items)", result.len()),
                );
                self.note(format!(
                    "degraded response for user {user}: {kind} ({} items, {:.1} ms)",
                    result.len(),
                    latency * 1e3
                ));
            }
        }
        let think = self.think_delay(client);
        self.at(think, Ev::ClientNext { client });
    }

    // ------------------------------------------------------- event loop

    fn on_read_done(&mut self, read_id: usize) {
        // Free the slot and pull the next queued read whose request is
        // still interested; stale queue entries are dropped unserved.
        let sidx = self.server_idx(self.reads[read_id].shard, self.reads[read_id].replica);
        self.reads[read_id].done = true;
        self.san_slot_write(sidx);
        self.servers[sidx].busy -= 1;
        while let Some(next) = self.servers[sidx].queue.pop_front() {
            let r = &self.reads[next];
            let live = !r.abandoned
                && !self.requests[r.req].finalized
                && self.requests[r.req].fetches[r.fetch].status == FetchStatus::Pending;
            if live {
                self.servers[sidx].busy += 1;
                self.start_service(next);
                break;
            }
            self.reads[next].done = true;
        }

        let (req, fetch, shard, is_hedge, issue_s) = {
            let r = &self.reads[read_id];
            (r.req, r.fetch, r.shard, r.is_hedge, r.issue_s)
        };
        if self.reads[read_id].abandoned {
            return;
        }
        let read_latency = self.now - issue_s;
        self.report.read_latency.record(read_latency);
        self.hedge.observe(read_latency);
        if self.cfg.policy.breaker {
            self.breakers[shard].on_success();
            self.breaker_transitions(shard, req);
        }
        if self.requests[req].finalized
            || self.requests[req].fetches[fetch].status != FetchStatus::Pending
        {
            return;
        }
        if is_hedge {
            self.report.hedge_wins += 1;
        }
        self.requests[req].fetches[fetch].status = FetchStatus::Ok;
        self.requests[req].outstanding -= 1;
        if self.requests[req].outstanding == 0 {
            self.finalize(req, false);
        }
    }

    fn on_read_timeout(&mut self, read_id: usize) {
        if self.reads[read_id].done || self.reads[read_id].abandoned {
            return;
        }
        self.reads[read_id].abandoned = true;
        self.report.timeouts += 1;
        let (req, fetch, shard, is_hedge) = {
            let r = &self.reads[read_id];
            (r.req, r.fetch, r.shard, r.is_hedge)
        };
        if self.cfg.policy.breaker {
            self.breakers[shard].on_failure(self.now);
            self.breaker_transitions(shard, req);
        }
        if is_hedge {
            // The primary attempt owns the retry budget.
            return;
        }
        self.fail_fetch(req, fetch);
    }

    fn on_hedge(&mut self, req: usize, fetch: usize) {
        if self.requests[req].finalized
            || self.requests[req].fetches[fetch].status != FetchStatus::Pending
            || self.requests[req].fetches[fetch].hedged
        {
            return;
        }
        self.requests[req].fetches[fetch].hedged = true;
        self.report.hedges += 1;
        // A breaker fast-fail of a hedge is silent: the primary path
        // owns failure handling.
        let _ = self.issue_read(req, fetch, 1 % self.cfg.replicas, true);
    }

    fn on_retry(&mut self, req: usize, fetch: usize) {
        if self.requests[req].finalized
            || self.requests[req].fetches[fetch].status != FetchStatus::Pending
        {
            return;
        }
        let attempt = self.requests[req].fetches[fetch].attempt;
        let replica = attempt % self.cfg.replicas;
        if !self.issue_read(req, fetch, replica, false) {
            self.fail_fetch(req, fetch);
        }
    }

    fn run(mut self) -> ServeReport {
        if let Some(fault) = self.cfg.fault {
            self.report
                .recovery
                .push(0, RecoveryKind::Injected, fault.describe());
            let line = format!("fault injected: {}", fault.describe());
            self.note(line);
        }
        for client in 0..self.cfg.clients {
            let t = client as f64 * 1.0e-4;
            self.queue
                .schedule(SimTime::from_secs(t), Ev::ClientNext { client });
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t.as_secs();
            match ev {
                Ev::ClientNext { client } => {
                    if self.issued < self.cfg.requests as u64 {
                        self.issue_request(client);
                    }
                }
                Ev::ReadDone { read } => self.on_read_done(read),
                Ev::ReadTimeout { read } => self.on_read_timeout(read),
                Ev::Hedge { req, fetch } => self.on_hedge(req, fetch),
                Ev::Retry { req, fetch } => self.on_retry(req, fetch),
                Ev::Deadline { req } => self.finalize(req, true),
            }
        }
        self.report.sim_end_s = self.now;
        let c = |name: &str, help: &str, v: u64| {
            cumf_obs::counter(name, help).add(v);
        };
        c(
            "cumf_serve_requests_total",
            "Serve requests issued",
            self.report.issued,
        );
        c(
            "cumf_serve_shed_total",
            "Requests shed by admission control",
            self.report.shed,
        );
        c(
            "cumf_serve_degraded_total",
            "Degraded serve responses",
            self.report.degraded(),
        );
        c(
            "cumf_serve_hedges_total",
            "Hedge reads issued",
            self.report.hedges,
        );
        self.report
    }
}

/// Runs one closed-loop serving experiment over `model` and returns the
/// full report. Bit-deterministic: equal `(model, cfg)` gives an equal
/// [`ServeReport::digest`].
pub fn run_closed_loop<E: Element>(model: &ShardedModel<E>, cfg: &ServeConfig) -> ServeReport {
    Sim::new(model, cfg.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_core::FactorMatrix;
    use cumf_rng::{ChaCha8Rng, SeedableRng};

    fn model() -> ShardedModel<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let p = FactorMatrix::<f32>::random_init(120, 8, &mut rng);
        let q = FactorMatrix::<f32>::random_init(90, 8, &mut rng);
        ShardedModel::new(p, q, 2, 2, None)
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            requests: 300,
            clients: 8,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthy_run_is_all_successes() {
        let m = model();
        let r = run_closed_loop(&m, &quick_cfg());
        assert_eq!(r.issued, 300);
        assert_eq!(r.completed + r.shed, 300);
        assert_eq!(r.degraded(), 0);
        assert_eq!(r.late_success, 0);
        assert!(r.cache_hits > 0, "Zipf users must repeat");
        assert!((r.availability() - 1.0).abs() < 1e-12);
        assert!(r.p(0.99) <= r.deadline_s);
    }

    #[test]
    fn identical_configs_produce_identical_digests() {
        let m = model();
        let a = run_closed_loop(&m, &quick_cfg());
        let b = run_closed_loop(&m, &quick_cfg());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.recovery.digest(), b.recovery.digest());
        let mut other = quick_cfg();
        other.seed ^= 1;
        let c = run_closed_loop(&m, &other);
        assert_ne!(a.digest(), c.digest(), "seed must matter");
    }

    #[test]
    fn shard_loss_degrades_but_never_errors() {
        let m = model();
        let mut cfg = quick_cfg();
        cfg.fault = Some(ServeFault::ShardLoss {
            shard: m.q_shard_id(1),
            from_s: 0.05,
            until_s: 0.30,
        });
        let r = run_closed_loop(&m, &cfg);
        assert!(r.degraded() > 0, "loss must force degraded answers");
        assert_eq!(r.late_success, 0);
        assert!(r.availability() >= 0.99);
        assert!(r.breaker_opens >= 1, "breaker must trip during the loss");
        assert!(r.recovery.count(RecoveryKind::Injected) == 1);
    }

    #[test]
    fn raw_policy_returns_late_under_loss() {
        let m = model();
        let mut cfg = quick_cfg();
        cfg.policy = OverloadPolicy::raw();
        cfg.fault = Some(ServeFault::ShardLoss {
            shard: m.q_shard_id(0),
            from_s: 0.05,
            until_s: 0.40,
        });
        let r = run_closed_loop(&m, &cfg);
        assert!(r.late_success > 0, "raw mode must violate the deadline");
        assert!(r.latency.max() > cfg.deadline_s);
    }

    #[test]
    fn liveness_anno_matches_the_configuration() {
        let cfg = ServeConfig::default();
        let a = cfg.liveness_anno();
        assert_eq!(a.slots, 8);
        assert_eq!(a.max_waiters, 31);
        assert!((a.hold_s - 1.0e-3).abs() < 1e-12);
        // The deadline strictly dominates the worst-case wait chain:
        // ceil(31/8) * hold + hold = 5 ms << 50 ms.
        let chain = (a.max_waiters as f64 / a.slots as f64).ceil() * a.hold_s + a.hold_s;
        assert!(a.deadline_s > chain);
    }
}
