//! Chaos scenarios for the serving path.
//!
//! Each scenario builds a model from planted synth factors, runs the
//! closed loop **twice** with an identical config, and passes only if
//! (a) the two digests are bit-equal (determinism) and (b) the
//! scenario's robustness assertions hold — availability under shard
//! loss, zero deadline-violating successes, breaker engagement, hedging
//! beating the stall, admission shedding upholding the deadline bound
//! and its absence demonstrably breaking it.

use cumf_core::FactorMatrix;
use cumf_data::synth::{generate, SynthConfig};

use crate::service::{run_closed_loop, OverloadPolicy, ServeConfig, ServeFault, ServeReport};
use crate::shard::ShardedModel;

/// Options for the serving chaos suite.
#[derive(Debug, Clone, Copy)]
pub struct ServeChaosOptions {
    /// Master seed for every scenario.
    pub seed: u64,
    /// Quick mode: fewer requests per scenario (CI-sized).
    pub quick: bool,
}

impl Default for ServeChaosOptions {
    fn default() -> Self {
        ServeChaosOptions {
            seed: 42,
            quick: false,
        }
    }
}

/// Outcome of one scenario.
#[derive(Debug, Clone)]
pub struct ServeScenarioResult {
    /// Scenario name (`serve/...`).
    pub name: String,
    /// All assertions held.
    pub passed: bool,
    /// Two identical runs produced bit-equal digests.
    pub deterministic: bool,
    /// Digest of the (first) run.
    pub digest: u64,
    /// Human-readable summary of what was checked.
    pub detail: String,
}

/// The whole suite's outcome.
#[derive(Debug, Clone)]
pub struct ServeChaosReport {
    /// Per-scenario results.
    pub scenarios: Vec<ServeScenarioResult>,
}

impl ServeChaosReport {
    /// True when every scenario passed (including determinism).
    pub fn all_passed(&self) -> bool {
        self.scenarios.iter().all(|s| s.passed && s.deterministic)
    }

    /// Human-readable results table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("scenario                  result  deterministic  digest            detail\n");
        out.push_str("------------------------  ------  -------------  ----------------  ------\n");
        for s in &self.scenarios {
            out.push_str(&format!(
                "{:<24}  {:<6}  {:<13}  {:016x}  {}\n",
                s.name,
                if s.passed { "PASS" } else { "FAIL" },
                if s.deterministic { "yes" } else { "NO" },
                s.digest,
                s.detail
            ));
        }
        out
    }
}

/// Builds the serving model used by chaos, the CLI fallback, and the
/// benches: planted synth factors (the "trained" model) sharded on a
/// `p_shards × q_shards` grid, with training-set item degrees as the
/// popularity prior.
pub fn synth_model(seed: u64, p_shards: u32, q_shards: u32) -> ShardedModel<f32> {
    let data = generate(&SynthConfig {
        m: 240,
        n: 180,
        k_true: 8,
        train_samples: 12_000,
        test_samples: 1_000,
        seed,
        ..SynthConfig::default()
    });
    let p = FactorMatrix::<f32>::from_f32_slice(240, 8, &data.p_true);
    let q = FactorMatrix::<f32>::from_f32_slice(180, 8, &data.q_true);
    let pop: Vec<f32> = data.train.col_degrees().iter().map(|&d| d as f32).collect();
    ShardedModel::new(p, q, p_shards, q_shards, Some(pop))
}

fn run_twice(model: &ShardedModel<f32>, cfg: &ServeConfig) -> (ServeReport, bool) {
    let a = run_closed_loop(model, cfg);
    let b = run_closed_loop(model, cfg);
    let deterministic = a.digest() == b.digest()
        && a.recovery.digest() == b.recovery.digest()
        && a.shed == b.shed
        && a.degraded() == b.degraded();
    (a, deterministic)
}

struct Check {
    passed: bool,
    detail: String,
}

fn check(conds: &[(&str, bool)], extra: String) -> Check {
    let failed: Vec<&str> = conds
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(name, _)| *name)
        .collect();
    Check {
        passed: failed.is_empty(),
        detail: if failed.is_empty() {
            extra
        } else {
            format!("FAILED: {} | {extra}", failed.join(", "))
        },
    }
}

/// Runs all serving chaos scenarios.
pub fn run_serve_chaos(opts: &ServeChaosOptions) -> ServeChaosReport {
    let model = synth_model(opts.seed, 2, 2);
    let requests: u32 = if opts.quick { 500 } else { 1500 };
    // The loss window must outlast the deadline, or a raw-policy run
    // could wait out the fault and still answer "in time".
    let loss_until = if opts.quick { 0.100 } else { 0.150 };
    let base = ServeConfig {
        requests,
        seed: opts.seed,
        ..ServeConfig::default()
    };
    let mut scenarios = Vec::new();

    // --- serve/baseline: healthy fleet, full policy. -------------------
    {
        let (r, det) = run_twice(&model, &base);
        let c = check(
            &[
                ("availability==1", (r.availability() - 1.0).abs() < 1e-12),
                ("no-shed", r.shed == 0),
                ("no-late", r.late_success == 0),
                ("no-degraded", r.degraded() == 0),
                ("p99<=deadline", r.p(0.99) <= r.deadline_s),
                ("cache-hits", r.cache_hits > 0),
            ],
            format!(
                "p99 {:.1}ms, {} cache hits, {:.0} req/s",
                r.p(0.99) * 1e3,
                r.cache_hits,
                r.qps()
            ),
        );
        scenarios.push(ServeScenarioResult {
            name: "serve/baseline".into(),
            passed: c.passed,
            deterministic: det,
            digest: r.digest(),
            detail: c.detail,
        });
    }

    // --- serve/q-shard-loss: the headline acceptance scenario. ---------
    // Losing one item shard under Zipf s=1.1 closed-loop load must keep
    // availability >= 99% (degraded allowed), produce zero
    // deadline-violating successes, trip the breaker, and stay
    // bit-deterministic.
    {
        let mut cfg = base.clone();
        cfg.fault = Some(ServeFault::ShardLoss {
            shard: model.q_shard_id(1),
            from_s: 0.020,
            until_s: loss_until,
        });
        let (r, det) = run_twice(&model, &cfg);
        let c = check(
            &[
                ("availability>=0.99", r.availability() >= 0.99),
                ("zero-late-successes", r.late_success == 0),
                ("degraded>0", r.degraded() > 0),
                ("breaker-opened", r.breaker_opens >= 1),
            ],
            format!(
                "availability {:.4}, {} degraded, {} breaker opens, p99 {:.1}ms",
                r.availability(),
                r.degraded(),
                r.breaker_opens,
                r.p(0.99) * 1e3
            ),
        );
        scenarios.push(ServeScenarioResult {
            name: "serve/q-shard-loss".into(),
            passed: c.passed,
            deterministic: det,
            digest: r.digest(),
            detail: c.detail,
        });
    }

    // --- serve/q-shard-loss-raw: the control group. --------------------
    // Same fault with every control off: requests wait out the loss and
    // return successfully but *late* — proving the deadline machinery
    // (not luck) produces the zero-late property above.
    {
        let mut cfg = base.clone();
        cfg.policy = OverloadPolicy::raw();
        cfg.fault = Some(ServeFault::ShardLoss {
            shard: model.q_shard_id(1),
            from_s: 0.020,
            until_s: loss_until,
        });
        let (r, det) = run_twice(&model, &cfg);
        let c = check(
            &[
                ("late-successes>0", r.late_success > 0),
                ("max>deadline", r.latency.max() > r.deadline_s),
            ],
            format!(
                "{} late successes, max latency {:.0}ms",
                r.late_success,
                r.latency.max() * 1e3
            ),
        );
        scenarios.push(ServeScenarioResult {
            name: "serve/q-shard-loss-raw".into(),
            passed: c.passed,
            deterministic: det,
            digest: r.digest(),
            detail: c.detail,
        });
    }

    // --- serve/p-shard-loss: user-factor loss. -------------------------
    // Losing a P-shard removes the user embedding itself; answers come
    // from the stale cache (hot users) or the popularity prior.
    {
        let mut cfg = base.clone();
        cfg.fault = Some(ServeFault::ShardLoss {
            shard: 0,
            from_s: 0.020,
            until_s: loss_until,
        });
        let (r, det) = run_twice(&model, &cfg);
        let c = check(
            &[
                ("availability>=0.99", r.availability() >= 0.99),
                ("zero-late-successes", r.late_success == 0),
                (
                    "stale-or-popularity",
                    r.degraded_stale + r.degraded_popularity > 0,
                ),
            ],
            format!(
                "{} stale, {} popularity, availability {:.4}",
                r.degraded_stale,
                r.degraded_popularity,
                r.availability()
            ),
        );
        scenarios.push(ServeScenarioResult {
            name: "serve/p-shard-loss".into(),
            passed: c.passed,
            deterministic: det,
            digest: r.digest(),
            detail: c.detail,
        });
    }

    // --- serve/stall-hedge: hedging beats a slow replica. --------------
    // One replica of a Q-shard slows 20x (service > read timeout). With
    // hedging the duplicate read on the healthy replica wins the race;
    // without it every affected read eats the timeout + retry path.
    {
        let stall = ServeFault::ShardStall {
            shard: model.q_shard_id(0),
            replica: 0,
            from_s: 0.010,
            until_s: 1.0e6,
            factor: 20.0,
        };
        let mut hedged = base.clone();
        hedged.fault = Some(stall);
        let mut unhedged = hedged.clone();
        unhedged.policy.hedging = false;
        let (rh, det) = run_twice(&model, &hedged);
        let ru = run_closed_loop(&model, &unhedged);
        let c = check(
            &[
                ("hedges>0", rh.hedges > 0),
                ("hedge-wins>0", rh.hedge_wins > 0),
                ("hedged-p99<unhedged-p99", rh.p(0.99) < ru.p(0.99)),
                ("zero-late-successes", rh.late_success == 0),
            ],
            format!(
                "p99 hedged {:.1}ms vs unhedged {:.1}ms, {} wins",
                rh.p(0.99) * 1e3,
                ru.p(0.99) * 1e3,
                rh.hedge_wins
            ),
        );
        scenarios.push(ServeScenarioResult {
            name: "serve/stall-hedge".into(),
            passed: c.passed,
            deterministic: det,
            digest: rh.digest(),
            detail: c.detail,
        });
    }

    // --- serve/overload-shed: admission control upholds the deadline. --
    // A client fleet big enough that the raw wait chain alone exceeds
    // the deadline (ceil(2·400/8) slots × ~1 ms ≫ 50 ms): with the
    // admission controller on, the bucket sheds the excess and the tail
    // stays inside the deadline; with the overload controls disabled,
    // the identical load queues up and completes demonstrably past the
    // deadline bound.
    {
        let mut cfg = base.clone();
        cfg.clients = 400;
        cfg.think_s = 1.0e-4;
        cfg.admission_rate = 2500.0;
        cfg.admission_burst = 16.0;
        // Cold cache and halved slots: every admitted request really
        // reads its shards, so the overload lands on the servers.
        cfg.cache_capacity = 0;
        cfg.slots_per_replica = 2;
        let (r, det) = run_twice(&model, &cfg);
        let mut open = cfg.clone();
        open.policy = OverloadPolicy::raw();
        let ro = run_closed_loop(&model, &open);
        let c = check(
            &[
                ("shed>0", r.shed > 0),
                ("p99<=deadline", r.p(0.99) <= r.deadline_s),
                ("zero-late-successes", r.late_success == 0),
                (
                    "unprotected-violates-deadline",
                    ro.latency.max() > cfg.deadline_s && ro.late_success > 0,
                ),
            ],
            format!(
                "{} shed, p99 {:.1}ms; unprotected max {:.1}ms, {} late (deadline {:.0}ms)",
                r.shed,
                r.p(0.99) * 1e3,
                ro.latency.max() * 1e3,
                ro.late_success,
                cfg.deadline_s * 1e3
            ),
        );
        scenarios.push(ServeScenarioResult {
            name: "serve/overload-shed".into(),
            passed: c.passed,
            deterministic: det,
            digest: r.digest(),
            detail: c.detail,
        });
    }

    ServeChaosReport { scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_passes_end_to_end() {
        let report = run_serve_chaos(&ServeChaosOptions {
            seed: 42,
            quick: true,
        });
        assert_eq!(report.scenarios.len(), 6);
        for s in &report.scenarios {
            assert!(s.passed, "{} failed: {}", s.name, s.detail);
            assert!(s.deterministic, "{} was not deterministic", s.name);
        }
        assert!(report.all_passed());
        let table = report.render();
        assert!(table.contains("serve/q-shard-loss"));
        assert!(table.contains("PASS"));
    }
}
