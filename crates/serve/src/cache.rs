//! LRU result cache keyed by `(user, model_version)`.
//!
//! A fixed-capacity slab holds the entries; recency is an intrusive
//! doubly-linked list over slab slots (head = most recent) and the key
//! index is a `BTreeMap` — deliberately not a `HashMap`, so iteration
//! anywhere in the serve path stays deterministic and the crate passes
//! the workspace determinism lint. Keying on the model version gives
//! invalidate-on-reload for free: after `bump_version` every old entry
//! simply stops being reachable by `get` and ages out via LRU, while
//! [`ResultCache::get_stale`] can still surface the newest stale entry
//! for degraded (cache-only) answers.

use std::collections::BTreeMap;

use crate::topn::Scored;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry {
    user: u32,
    version: u64,
    value: Vec<Scored>,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU cache of top-N results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    capacity: usize,
    slab: Vec<Entry>,
    free: Vec<usize>,
    index: BTreeMap<(u32, u64), usize>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            slab: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            index: BTreeMap::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Cache hits observed via [`ResultCache::get`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed via [`ResultCache::get`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Looks up `(user, version)`, promoting the entry to most-recent
    /// on a hit.
    pub fn get(&mut self, user: u32, version: u64) -> Option<&[Scored]> {
        match self.index.get(&(user, version)).copied() {
            Some(slot) => {
                self.hits += 1;
                self.unlink(slot);
                self.push_front(slot);
                Some(&self.slab[slot].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The freshest cached entry for `user` at *any* version, without
    /// promoting it (degraded cache-only answers must not look like
    /// live traffic to the eviction policy). Returns the version it was
    /// computed against alongside the results.
    pub fn get_stale(&self, user: u32) -> Option<(u64, &[Scored])> {
        self.index
            .range((user, 0)..=(user, u64::MAX))
            .next_back()
            .map(|(&(_, version), &slot)| (version, self.slab[slot].value.as_slice()))
    }

    /// Inserts (or replaces) the entry for `(user, version)`, evicting
    /// the least-recently-used entry when at capacity.
    pub fn put(&mut self, user: u32, version: u64, value: Vec<Scored>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.index.get(&(user, version)) {
            self.slab[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.index.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.index
                .remove(&(self.slab[victim].user, self.slab[victim].version));
            self.free.push(victim);
            self.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Entry {
                    user,
                    version,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slab.push(Entry {
                    user,
                    version,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.index.insert((user, version), slot);
        self.push_front(slot);
    }

    /// Keys currently cached, in index (not recency) order — test hook.
    pub fn keys(&self) -> Vec<(u32, u64)> {
        self.index.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(tag: u32) -> Vec<Scored> {
        vec![Scored {
            item: tag,
            score: tag as f32,
        }]
    }

    #[test]
    fn lru_evicts_the_least_recent() {
        let mut c = ResultCache::new(2);
        c.put(1, 1, val(1));
        c.put(2, 1, val(2));
        assert!(c.get(1, 1).is_some()); // 1 is now most recent
        c.put(3, 1, val(3)); // evicts 2
        assert!(c.get(2, 1).is_none());
        assert!(c.get(1, 1).is_some());
        assert!(c.get(3, 1).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn version_bump_invalidates_get_but_not_get_stale() {
        let mut c = ResultCache::new(4);
        c.put(7, 1, val(10));
        assert!(c.get(7, 2).is_none(), "new version must miss");
        let (v, stale) = c.get_stale(7).expect("stale entry survives");
        assert_eq!(v, 1);
        assert_eq!(stale[0].item, 10);
        c.put(7, 2, val(20));
        let (v, stale) = c.get_stale(7).expect("freshest version wins");
        assert_eq!(v, 2);
        assert_eq!(stale[0].item, 20);
    }

    #[test]
    fn replace_updates_in_place() {
        let mut c = ResultCache::new(2);
        c.put(1, 1, val(1));
        c.put(1, 1, val(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, 1).unwrap()[0].item, 9);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = ResultCache::new(0);
        c.put(1, 1, val(1));
        assert!(c.is_empty());
        assert!(c.get(1, 1).is_none());
    }
}
