//! Overload-control primitives: token-bucket admission, per-shard
//! circuit breakers, and the quantile-derived hedging delay.
//!
//! All three are pure functions of simulated time — no wall clocks, no
//! background threads. Refill is lazy (computed from the elapsed
//! sim-time delta at each decision), which is both allocation-free and
//! trivially deterministic.

use crate::hist::LatencyHistogram;

/// Token-bucket rate limiter over sim-time.
///
/// Used twice in the serve path: as the front-door admission controller
/// (shedding requests the fleet cannot finish before their deadline)
/// and as the global retry budget (a retry storm during an outage must
/// not amplify the outage).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
    admitted: u64,
    denied: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/s with capacity `burst`,
    /// starting full.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0, "rate and burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_s: 0.0,
            admitted: 0,
            denied: 0,
        }
    }

    /// Tries to take one token at sim-time `now_s`; `false` means shed.
    pub fn try_take(&mut self, now_s: f64) -> bool {
        if now_s > self.last_s {
            self.tokens = (self.tokens + (now_s - self.last_s) * self.rate).min(self.burst);
            self.last_s = now_s;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.admitted += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Tokens granted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

/// Circuit-breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests fast-fail until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is let through.
    HalfOpen,
}

/// Per-shard circuit breaker driven by consecutive read failures.
///
/// `threshold` consecutive failures open the circuit for `cooldown_s`
/// of sim-time; after the cooldown one probe is admitted (half-open) —
/// its success closes the circuit, its failure re-opens it for another
/// cooldown. While open, the serve path skips the read entirely and
/// degrades immediately, so a dead shard costs microseconds instead of
/// a full read-timeout per request.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_s: f64,
    state: BreakerState,
    consecutive: u32,
    open_until_s: f64,
    probe_inflight: bool,
    opens: u64,
    fast_fails: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures.
    pub fn new(threshold: u32, cooldown_s: f64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        CircuitBreaker {
            threshold,
            cooldown_s,
            state: BreakerState::Closed,
            consecutive: 0,
            open_until_s: 0.0,
            probe_inflight: false,
            opens: 0,
            fast_fails: 0,
        }
    }

    /// Current state (transitions happen inside [`CircuitBreaker::allow`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Requests fast-failed while open.
    pub fn fast_fails(&self) -> u64 {
        self.fast_fails
    }

    /// Asks whether a read may be attempted at sim-time `now_s`.
    /// `false` means fast-fail (degrade without touching the shard).
    pub fn allow(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_s >= self.open_until_s {
                    self.state = BreakerState::HalfOpen;
                    self.probe_inflight = true;
                    true
                } else {
                    self.fast_fails += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    // One probe at a time.
                    self.fast_fails += 1;
                    false
                } else {
                    self.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Reports a successful read: closes the circuit.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive = 0;
        self.probe_inflight = false;
    }

    /// Reports a failed (timed-out) read at sim-time `now_s`.
    pub fn on_failure(&mut self, now_s: f64) {
        self.probe_inflight = false;
        self.consecutive += 1;
        let trip = self.state == BreakerState::HalfOpen || self.consecutive >= self.threshold;
        if trip && self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.open_until_s = now_s + self.cooldown_s;
            self.opens += 1;
        }
    }
}

/// Tracks the read-latency distribution and derives the hedging delay
/// from its tail.
///
/// Hedging after a fixed delay is either too eager (duplicates healthy
/// traffic) or too lazy (waits out the whole timeout); hedging after
/// the observed `q`-quantile duplicates only the slowest `1−q` of reads
/// — the standard "tail at scale" construction. Until `min_samples`
/// observations arrive the tracker returns a conservative initial
/// delay.
#[derive(Debug, Clone)]
pub struct HedgeTracker {
    hist: LatencyHistogram,
    quantile: f64,
    initial_s: f64,
    floor_s: f64,
    min_samples: u64,
}

impl HedgeTracker {
    /// A tracker hedging at the `quantile` of observed read latencies,
    /// starting from `initial_s` and never below `floor_s`.
    pub fn new(quantile: f64, initial_s: f64, floor_s: f64) -> Self {
        assert!((0.0..1.0).contains(&quantile), "quantile must be in [0,1)");
        HedgeTracker {
            hist: LatencyHistogram::new(),
            quantile,
            initial_s,
            floor_s,
            min_samples: 32,
        }
    }

    /// Records one completed primary-read latency.
    pub fn observe(&mut self, seconds: f64) {
        self.hist.record(seconds);
    }

    /// The delay after which a hedge read should be issued.
    pub fn delay_s(&self) -> f64 {
        if self.hist.count() < self.min_samples {
            return self.initial_s;
        }
        self.hist
            .quantile(self.quantile)
            .map_or(self.initial_s, |q| q.max(self.floor_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_sheds_past_burst_and_refills() {
        let mut b = TokenBucket::new(10.0, 2.0);
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0), "burst exhausted");
        assert!(b.try_take(0.1), "one token refilled after 100ms @ 10/s");
        assert_eq!(b.admitted(), 3);
        assert_eq!(b.denied(), 1);
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(1000.0, 3.0);
        assert!(b.try_take(100.0));
        assert!(b.try_take(100.0));
        assert!(b.try_take(100.0));
        assert!(!b.try_take(100.0), "burst caps the backlog");
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let mut cb = CircuitBreaker::new(3, 1.0);
        for t in 0..3 {
            assert!(cb.allow(t as f64));
            cb.on_failure(t as f64);
        }
        assert_eq!(cb.state(), BreakerState::Open);
        assert!(!cb.allow(2.5), "open: fast-fail inside cooldown");
        assert!(cb.allow(3.1), "cooldown over: probe admitted");
        assert!(!cb.allow(3.1), "only one probe at a time");
        cb.on_success();
        assert_eq!(cb.state(), BreakerState::Closed);
        assert!(cb.allow(3.2));
        assert_eq!(cb.opens(), 1);
        assert!(cb.fast_fails() >= 2);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut cb = CircuitBreaker::new(2, 1.0);
        cb.on_failure(0.0);
        cb.on_failure(0.0);
        assert_eq!(cb.state(), BreakerState::Open);
        assert!(cb.allow(1.5)); // probe
        cb.on_failure(1.5);
        assert_eq!(cb.state(), BreakerState::Open);
        assert_eq!(cb.opens(), 2);
        assert!(
            !cb.allow(2.0),
            "second cooldown runs from the probe failure"
        );
    }

    #[test]
    fn hedge_delay_follows_the_observed_tail() {
        let mut h = HedgeTracker::new(0.95, 0.005, 0.0001);
        assert_eq!(h.delay_s(), 0.005, "initial until warm");
        for _ in 0..100 {
            h.observe(0.001);
        }
        let d = h.delay_s();
        assert!(d < 0.005, "warm delay tracks the observed p95, got {d}");
        assert!(d >= 0.0001);
    }
}
