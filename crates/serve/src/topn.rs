//! Top-N dot-product scoring: a naive scan, an exact cache-blocked
//! scan, and the popularity-prior fallback.
//!
//! The blocked scorer walks the item range in fixed-size blocks so the
//! user row stays hot in L1 and the Q rows stream through cache lines
//! sequentially — but it is *exact*: per item the k-loop runs in the
//! identical order as the naive scan, so every f32 partial sum is
//! bit-identical (this matters for the odd-k FP16 path, where the
//! widen-to-f32 accumulation order is the whole numeric contract).
//! Selection uses a total order (score descending, item id ascending on
//! ties), so the two scans return identical lists, not merely
//! equivalent ones.

use cumf_core::{Element, FactorMatrix};

/// One scored item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Item id.
    pub item: u32,
    /// Predicted score (f32 dot product of the factor rows).
    pub score: f32,
}

/// Total order for selection: higher score first, lower item id on
/// ties (and NaN scores sort last, so a poisoned row cannot win).
fn beats(a: &Scored, b: &Scored) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or_else(|| b.score.is_nan().cmp(&a.score.is_nan()))
        .then(a.item.cmp(&b.item))
}

/// A bounded top-N accumulator: keeps the best `n` offers seen so far
/// under the scorer's total order (score descending, item ascending,
/// NaN last).
#[derive(Debug, Clone)]
pub struct TopAcc {
    n: usize,
    best: Vec<Scored>,
}

impl TopAcc {
    /// An empty accumulator holding at most `n` items.
    pub fn new(n: usize) -> Self {
        TopAcc {
            n,
            best: Vec::with_capacity(n + 1),
        }
    }

    /// Offers one scored item.
    pub fn offer(&mut self, item: u32, score: f32) {
        if self.n == 0 {
            return;
        }
        let s = Scored { item, score };
        if self.best.len() == self.n {
            // Full: reject anything that does not beat the current worst.
            if beats(self.best.last().unwrap(), &s) != std::cmp::Ordering::Greater {
                return;
            }
            self.best.pop();
        }
        let at = self
            .best
            .partition_point(|b| beats(b, &s) != std::cmp::Ordering::Greater);
        self.best.insert(at, s);
    }

    /// The accumulated items, best first.
    pub fn into_sorted(self) -> Vec<Scored> {
        self.best
    }
}

/// f32 dot product of two factor rows, accumulated in k-order (each
/// element widened via [`Element::to_f32`] before the multiply-add).
pub fn dot<E: Element>(a: &[E], b: &[E]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x.to_f32() * y.to_f32();
    }
    acc
}

/// Naive reference scan: scores every item of `items` against `user`
/// and returns the top `n`.
pub fn top_n_naive<E: Element>(
    user: &[E],
    q: &FactorMatrix<E>,
    items: std::ops::Range<u32>,
    n: usize,
) -> Vec<Scored> {
    let mut acc = TopAcc::new(n);
    for v in items {
        acc.offer(v, dot(user, q.row(v)));
    }
    acc.into_sorted()
}

/// Item ids per block of the blocked scan: sized so a block of k≤128
/// f32 rows fits comfortably in L1 alongside the user row.
pub const SCAN_BLOCK: usize = 64;

/// Exact cache-blocked scan: identical scores and identical selection
/// as [`top_n_naive`], visiting items block by block.
pub fn top_n_blocked<E: Element>(
    user: &[E],
    q: &FactorMatrix<E>,
    items: std::ops::Range<u32>,
    n: usize,
    block: usize,
) -> Vec<Scored> {
    assert!(block > 0, "block size must be positive");
    let mut acc = TopAcc::new(n);
    let mut lo = items.start;
    while lo < items.end {
        let hi = (lo + block as u32).min(items.end);
        for v in lo..hi {
            acc.offer(v, dot(user, q.row(v)));
        }
        lo = hi;
    }
    acc.into_sorted()
}

/// Popularity-prior fallback: top `n` of `items` by the prior weight
/// alone (the answer of last resort when no factor shard is readable).
pub fn top_n_popular(popularity: &[f32], items: std::ops::Range<u32>, n: usize) -> Vec<Scored> {
    let mut acc = TopAcc::new(n);
    for v in items {
        acc.offer(v, popularity[v as usize]);
    }
    acc.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_core::F16;
    use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

    fn matrices<E: Element>(n: u32, k: u32, seed: u64) -> (Vec<E>, FactorMatrix<E>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let user: Vec<E> = (0..k)
            .map(|_| E::from_f32(rng.gen::<f32>() - 0.5))
            .collect();
        let q = FactorMatrix::<E>::random_init(n, k, &mut rng);
        (user, q)
    }

    #[test]
    fn blocked_equals_naive_bitwise_f32() {
        for k in [8u32, 31, 64, 128] {
            let (user, q) = matrices::<f32>(501, k, k as u64);
            let a = top_n_naive(&user, &q, 0..501, 10);
            let b = top_n_blocked(&user, &q, 0..501, 10, SCAN_BLOCK);
            assert_eq!(a, b, "k={k}");
            assert!(a[0].score.to_bits() == b[0].score.to_bits());
        }
    }

    #[test]
    fn blocked_equals_naive_bitwise_f16() {
        for k in [8u32, 31, 64, 128] {
            let (user, q) = matrices::<F16>(333, k, 1000 + k as u64);
            let a = top_n_naive(&user, &q, 0..333, 7);
            let b = top_n_blocked(&user, &q, 0..333, 7, 17);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn selection_is_ordered_and_tie_broken_by_item() {
        let q = FactorMatrix::<f32>::from_f32_slice(4, 1, &[1.0, 2.0, 2.0, 0.5]);
        let user = [1.0f32];
        let top = top_n_naive(&user, &q, 0..4, 3);
        assert_eq!(
            top.iter().map(|s| s.item).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn partial_ranges_score_only_their_shard() {
        let (user, q) = matrices::<f32>(100, 16, 5);
        let top = top_n_blocked(&user, &q, 40..60, 5, 8);
        assert!(top.iter().all(|s| (40..60).contains(&s.item)));
        assert_eq!(top.len(), 5);
    }

    #[test]
    fn popularity_prior_ranks_by_weight() {
        let pop = vec![0.1, 5.0, 3.0, 5.0];
        let top = top_n_popular(&pop, 0..4, 2);
        assert_eq!(
            top.iter().map(|s| s.item).collect::<Vec<_>>(),
            vec![1, 3],
            "equal weights tie-break by item id"
        );
    }

    #[test]
    fn top_zero_is_empty_and_n_larger_than_range_is_all() {
        let (user, q) = matrices::<f32>(5, 4, 9);
        assert!(top_n_naive(&user, &q, 0..5, 0).is_empty());
        assert_eq!(top_n_naive(&user, &q, 0..5, 10).len(), 5);
    }
}
