//! Deterministic latency histogram with bit-stable digests.
//!
//! Log2 buckets (same layout philosophy as `cumf-obs`' registry
//! histograms) plus a first-N reservoir, so small series report exact
//! quantiles and large ones interpolate inside the containing bucket.
//! Everything the histogram stores is integral or bit-patterned, so
//! [`LatencyHistogram::digest`] is a bit-exact fingerprint of the whole
//! latency distribution: two runs agree iff every observation agreed.

use cumf_core::faults::fnv1a64;

/// Exponent of the smallest finite bucket bound (`2^-30` s ≈ 1 ns).
const MIN_EXP: i32 = -30;
/// Number of finite buckets: bounds `2^-30 ..= 2^13` (~8192 s).
const BUCKETS: usize = 44;
/// First-N reservoir size (exact quantiles up to this many samples).
const RESERVOIR: usize = 256;

/// A log2-bucketed histogram of simulated latencies, in seconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `counts[i]` counts observations in `(2^(MIN_EXP+i-1), 2^(MIN_EXP+i)]`
    /// (index 0 also absorbs anything at or below the smallest bound);
    /// the final slot is the +Inf overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
    reservoir: Vec<f64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS + 1],
            total: 0,
            sum: 0.0,
            max: 0.0,
            reservoir: Vec::new(),
        }
    }

    /// Records one latency (seconds). Negative or NaN inputs clamp to
    /// zero — a defensive measure only; sim-time deltas are never
    /// negative.
    pub fn record(&mut self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let idx = if s <= 0.0 {
            0
        } else {
            let e = s.log2().ceil() as i32;
            ((e - MIN_EXP).max(0) as usize).min(BUCKETS)
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += s;
        if s > self.max {
            self.max = s;
        }
        if self.reservoir.len() < RESERVOIR {
            self.reservoir.push(s);
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (seconds).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation (seconds), `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observation (seconds), `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Quantile estimate (seconds): exact while all observations fit
    /// the reservoir, bucket-interpolated afterwards (within 2× of the
    /// true value, the standard log2-bucket contract).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut cum = 0u64;
        let mut buckets = Vec::with_capacity(BUCKETS + 1);
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            let le = if i < BUCKETS {
                (2.0f64).powi(MIN_EXP + i as i32)
            } else {
                f64::INFINITY
            };
            buckets.push((le, cum));
        }
        cumf_obs::quantile::estimate(&buckets, self.total, &self.reservoir, q)
    }

    /// Bit-exact fingerprint of the distribution: FNV-1a over every
    /// bucket count, the total, and the IEEE bit patterns of sum/max.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(8 * (self.counts.len() + 3));
        for &c in &self.counts {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        bytes.extend_from_slice(&self.total.to_le_bytes());
        bytes.extend_from_slice(&self.sum.to_bits().to_le_bytes());
        bytes.extend_from_slice(&self.max.to_bits().to_le_bytes());
        fnv1a64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_series_quantiles_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0.001, 0.002, 0.003, 0.004] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.quantile(0.5).unwrap() - 0.0025).abs() < 1e-12);
        assert!((h.quantile(1.0).unwrap() - 0.004).abs() < 1e-12);
        assert!((h.mean().unwrap() - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn overflowed_series_interpolates_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for i in 0..1000 {
            // 1ms..2ms: all land in the (2^-10, 2^-9] region.
            h.record(0.001 + 0.000001 * i as f64);
        }
        let p99 = h.quantile(0.99).unwrap();
        let true_p99 = 0.001 + 0.000001 * 990.0;
        assert!(p99 <= 2.0 * true_p99 && p99 >= true_p99 / 2.0, "p99={p99}");
    }

    #[test]
    fn digest_is_sensitive_and_reproducible() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [0.01, 0.02, 0.5] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.digest(), b.digest());
        b.record(0.03);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        h.record(f64::NAN);
        h.record(-1.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0.0);
        // Huge values land in the overflow bucket without panicking.
        h.record(1.0e9);
        assert_eq!(h.count(), 3);
    }
}
