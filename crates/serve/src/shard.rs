//! Sharded factor storage mirroring the training partition grid.
//!
//! A trained model (`P: m×k`, `Q: n×k`) is split exactly as
//! `cumf_core::partition::Grid` splits the rating matrix: `i` P-shards
//! over contiguous user ranges and `j` Q-shards over contiguous item
//! ranges (the boundary rule is shared via
//! [`cumf_core::partition::segment_range`], so shard `Q2` of the server
//! holds precisely the rows block column 2 trained). A request for user
//! `u` reads one P-shard (the one owning `u`) and *all* `j` Q-shards —
//! top-N needs the full item space — which makes the failure domains
//! obvious: losing a Q-shard costs item coverage, losing a P-shard
//! costs the user embedding itself.

use cumf_core::partition::{segment_of, segment_range};
use cumf_core::{Element, FactorMatrix};

/// Opaque shard identifier: `0..p_shards` are P-shards (user factors),
/// `p_shards..p_shards + q_shards` are Q-shards (item factors).
pub type ShardId = usize;

/// A trained model laid out in partition-grid shards, with the item
/// popularity prior used for degraded answers and a version counter for
/// cache invalidation.
#[derive(Debug, Clone)]
pub struct ShardedModel<E: Element> {
    p: FactorMatrix<E>,
    q: FactorMatrix<E>,
    p_shards: u32,
    q_shards: u32,
    version: u64,
    popularity: Vec<f32>,
}

impl<E: Element> ShardedModel<E> {
    /// Shards `p`/`q` into an `p_shards × q_shards` grid layout.
    ///
    /// `popularity` is the per-item prior used for degraded responses
    /// (typically training-set item degrees); `None` falls back to a
    /// uniform prior. Panics when the grid exceeds the matrix or the
    /// prior length disagrees with the item count.
    pub fn new(
        p: FactorMatrix<E>,
        q: FactorMatrix<E>,
        p_shards: u32,
        q_shards: u32,
        popularity: Option<Vec<f32>>,
    ) -> Self {
        assert!(p_shards > 0 && q_shards > 0, "grid must be at least 1x1");
        assert!(
            p_shards <= p.rows() && q_shards <= q.rows(),
            "grid {p_shards}x{q_shards} exceeds model {}x{}",
            p.rows(),
            q.rows()
        );
        assert_eq!(p.k(), q.k(), "P and Q must share k");
        let popularity = match popularity {
            Some(pop) => {
                assert_eq!(pop.len(), q.rows() as usize, "prior length != item count");
                pop
            }
            None => vec![1.0; q.rows() as usize],
        };
        ShardedModel {
            p,
            q,
            p_shards,
            q_shards,
            version: 1,
            popularity,
        }
    }

    /// Number of users (rows of P).
    pub fn users(&self) -> u32 {
        self.p.rows()
    }

    /// Number of items (rows of Q).
    pub fn items(&self) -> u32 {
        self.q.rows()
    }

    /// Factor rank.
    pub fn k(&self) -> u32 {
        self.p.k()
    }

    /// Number of P-shards (grid rows).
    pub fn p_shards(&self) -> u32 {
        self.p_shards
    }

    /// Number of Q-shards (grid columns).
    pub fn q_shards(&self) -> u32 {
        self.q_shards
    }

    /// Total shard count (`p_shards + q_shards`).
    pub fn shard_count(&self) -> usize {
        (self.p_shards + self.q_shards) as usize
    }

    /// The P-shard owning `user` (same assignment rule as the grid).
    pub fn p_shard_of(&self, user: u32) -> ShardId {
        segment_of(self.p.rows(), self.p_shards, user) as ShardId
    }

    /// The shard id of Q-shard `bj` (`0..q_shards`).
    pub fn q_shard_id(&self, bj: u32) -> ShardId {
        (self.p_shards + bj) as ShardId
    }

    /// True when `shard` is a Q-shard.
    pub fn is_q_shard(&self, shard: ShardId) -> bool {
        shard >= self.p_shards as usize && shard < self.shard_count()
    }

    /// Item range held by Q-shard `bj` (`0..q_shards`).
    pub fn item_range(&self, bj: u32) -> std::ops::Range<u32> {
        segment_range(self.q.rows(), self.q_shards, bj)
    }

    /// User range held by P-shard `bi` (`0..p_shards`).
    pub fn user_range(&self, bi: u32) -> std::ops::Range<u32> {
        segment_range(self.p.rows(), self.p_shards, bi)
    }

    /// Human-readable shard name (`P0`, `Q2`, ...).
    pub fn shard_name(&self, shard: ShardId) -> String {
        if shard < self.p_shards as usize {
            format!("P{shard}")
        } else {
            format!("Q{}", shard - self.p_shards as usize)
        }
    }

    /// The user's factor row.
    pub fn user_row(&self, user: u32) -> &[E] {
        self.p.row(user)
    }

    /// The full item factor matrix (scoring reads Q-shard ranges of it).
    pub fn q_matrix(&self) -> &FactorMatrix<E> {
        &self.q
    }

    /// The per-item popularity prior.
    pub fn popularity(&self) -> &[f32] {
        &self.popularity
    }

    /// Current model version (result-cache key component).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Bumps the model version, invalidating every cached result keyed
    /// to the old version (a model reload in production).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::{ChaCha8Rng, SeedableRng};

    fn model(m: u32, n: u32, k: u32, i: u32, j: u32) -> ShardedModel<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let p = FactorMatrix::<f32>::random_init(m, k, &mut rng);
        let q = FactorMatrix::<f32>::random_init(n, k, &mut rng);
        ShardedModel::new(p, q, i, j, None)
    }

    #[test]
    fn shard_ranges_tile_users_and_items() {
        let sm = model(103, 77, 8, 4, 3);
        let users: usize = (0..4).map(|bi| sm.user_range(bi).len()).sum();
        let items: usize = (0..3).map(|bj| sm.item_range(bj).len()).sum();
        assert_eq!(users, 103);
        assert_eq!(items, 77);
        assert_eq!(sm.shard_count(), 7);
    }

    #[test]
    fn every_user_lands_in_its_p_shard_range() {
        let sm = model(103, 77, 8, 4, 3);
        for u in 0..103 {
            let s = sm.p_shard_of(u);
            assert!(s < 4);
            assert!(sm.user_range(s as u32).contains(&u));
        }
    }

    #[test]
    fn shard_names_and_kinds() {
        let sm = model(40, 30, 4, 2, 3);
        assert_eq!(sm.shard_name(0), "P0");
        assert_eq!(sm.shard_name(1), "P1");
        assert_eq!(sm.shard_name(2), "Q0");
        assert_eq!(sm.shard_name(4), "Q2");
        assert!(!sm.is_q_shard(1));
        assert!(sm.is_q_shard(2));
        assert_eq!(sm.q_shard_id(2), 4);
    }

    #[test]
    fn version_bumps_monotonically() {
        let mut sm = model(10, 10, 2, 1, 1);
        let v0 = sm.version();
        sm.bump_version();
        assert_eq!(sm.version(), v0 + 1);
    }

    #[test]
    #[should_panic(expected = "prior length")]
    fn wrong_prior_length_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let p = FactorMatrix::<f32>::random_init(10, 2, &mut rng);
        let q = FactorMatrix::<f32>::random_init(10, 2, &mut rng);
        let _ = ShardedModel::new(p, q, 2, 2, Some(vec![1.0; 3]));
    }
}
