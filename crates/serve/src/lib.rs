//! `cumf-serve` — the serving layer of the cuMF_SGD reproduction.
//!
//! Training produces factor matrices; this crate answers the question
//! they exist for: *"top-N items for user u, now, under load, while
//! things break"*. The model is stored in shards that reproduce the
//! training partition grid (`cumf_core::partition` — `i` P-segments of
//! user factors, `j` Q-segments of item factors), because the
//! block-partitioned layout cuMF_SGD uses for Hugewiki-scale data is
//! also the layout a serving fleet would keep resident per node — and
//! it dictates the failure domains the request path must survive.
//!
//! The request path is a deterministic scatter-gather over simulated
//! shard reads, driven entirely on `cumf-des` sim time so every latency
//! percentile is bit-reproducible:
//!
//! * **admission** — a token bucket sheds load at the front door
//!   instead of letting queues collapse the tail ([`policy::TokenBucket`]);
//! * **deadlines** — every request carries a deadline; at the deadline
//!   it is *finalized* with the best degraded answer available rather
//!   than allowed to return late ([`service`]);
//! * **budgeted retries** — shard-read timeouts retry on the other
//!   replica under the seeded-jitter backoff envelope of
//!   [`cumf_core::faults::RetryPolicy`], gated by a global retry token
//!   bucket so retry storms cannot amplify an outage;
//! * **hedging** — a duplicate read is issued to the second replica
//!   after a quantile-derived delay ([`policy::HedgeTracker`]);
//! * **circuit breaking** — per-shard breakers fast-fail reads to a
//!   shard that keeps timing out, degrading immediately instead of
//!   queueing doomed work ([`policy::CircuitBreaker`]);
//! * **graceful degradation** — responses compose from what survived:
//!   partial item coverage, stale cache entries, or the popularity
//!   prior, every one marked with a [`DegradeKind`] so tests can count
//!   exactly what quality was served.
//!
//! The closed-loop load generator draws Zipf-skewed users from
//! `cumf-data`'s alias table; the chaos scenarios ([`chaos`]) inject
//! shard loss and stalls and assert availability, deadline compliance,
//! and bit-determinism (every scenario runs twice and the latency and
//! recovery-log digests must match).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod hist;
pub mod policy;
pub mod service;
pub mod shard;
pub mod topn;

pub use cache::ResultCache;
pub use chaos::{run_serve_chaos, ServeChaosOptions, ServeChaosReport, ServeScenarioResult};
pub use hist::LatencyHistogram;
pub use policy::{BreakerState, CircuitBreaker, HedgeTracker, TokenBucket};
pub use service::{
    run_closed_loop, DegradeKind, OverloadPolicy, ServeConfig, ServeFault, ServeLivenessAnno,
    ServeReport,
};
pub use shard::{ShardId, ShardedModel};
pub use topn::{top_n_blocked, top_n_naive, top_n_popular, Scored};
