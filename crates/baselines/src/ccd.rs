//! CCD++ — cyclic coordinate descent for matrix factorization (Yu et al.,
//! ICDM'12; the paper's refs [60, 61]).
//!
//! The third algorithm family the paper positions against (§1): *"CGD
//! [coordinate gradient descent] has lower overhead and runs faster at the
//! first few epochs of training. However, due to the algorithmic
//! limitation, coordinate descent is prone to reach local optima in the
//! later epochs"* (§8). CCD++ updates one rank-one component `u_t v_tᵀ` at
//! a time, each by exact one-dimensional least squares over the residual.
//!
//! The implementation maintains the residual vector `res_i = r_i − p·q`
//! across samples, so every coordinate update is O(nnz of its row/column).
//! The per-epoch component sweep is an
//! [`EpochBackend`], sharing the engine's
//! epoch loop with every SGD path.

use cumf_data::CooMatrix;

use cumf_core::concurrent::EpochStats;
use cumf_core::engine::{EngineModel, EpochBackend, EpochOutcome, EpochPipeline, FixedPerEpoch};
use cumf_core::feature::FactorMatrix;
use cumf_core::lrate::Schedule;
use cumf_core::metrics::Trace;

/// CCD++ configuration.
#[derive(Debug, Clone)]
pub struct CcdConfig {
    /// Feature dimension (number of rank-one components).
    pub k: u32,
    /// Regularisation λ.
    pub lambda: f32,
    /// Outer epochs (one epoch sweeps all k components once).
    pub epochs: u32,
    /// Inner iterations per component per epoch (CCD++ default: 1–5).
    pub inner: u32,
    /// RNG seed for initialisation.
    pub seed: u64,
}

impl CcdConfig {
    /// Defaults matching the SGD solver conventions.
    pub fn new(k: u32) -> Self {
        CcdConfig {
            k,
            lambda: 0.02,
            epochs: 10,
            inner: 2,
            seed: 42,
        }
    }
}

/// Result of a CCD++ run.
#[derive(Debug, Clone)]
pub struct CcdResult {
    /// Learned row factors.
    pub p: FactorMatrix<f32>,
    /// Learned column factors.
    pub q: FactorMatrix<f32>,
    /// Convergence trace.
    pub trace: Trace,
}

/// Per-epoch cost model: CCD++ epochs are memory-light — `O(N·k)` like
/// SGD but with *sequential* rank-one sweeps whose per-sample work is a
/// couple of fused multiply-adds (the "lower overhead... faster at the
/// first few epochs" §8 observation).
pub fn ccd_epoch_seconds(nnz: u64, k: u32, bandwidth: f64) -> f64 {
    // Per component: read residual + one factor column per side ~ 16 B per
    // sample per component + column vectors.
    nnz as f64 * k as f64 * 16.0 / bandwidth
}

/// The CCD++ sweep as an engine backend: one `run_epoch` refreshes every
/// rank-one component, then materialises P/Q into the engine model for the
/// pipeline's RMSE evaluation.
struct CcdBackend<'a> {
    data: &'a CooMatrix,
    lambda: f32,
    inner: u32,
    // Column-major component storage: u[t][row], v[t][col].
    u: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    // Residual per sample: r - Σ_t u_t[row] v_t[col].
    res: Vec<f32>,
    by_row: CsrMatrixIndex,
    by_col: CsrMatrixIndex,
}

impl EpochBackend<f32> for CcdBackend<'_> {
    fn run_epoch(
        &mut self,
        _epoch: u32,
        _gamma: f32,
        _lambda: f32,
        model: &mut EngineModel<f32>,
    ) -> EpochOutcome {
        let k = self.u.len();
        let nnz = self.data.nnz();
        let mut updates = 0u64;
        for t in 0..k {
            // Fold component t back into the residual: res += u_t v_t.
            for (i, r) in self.res.iter_mut().enumerate() {
                let e = self.data.get(i);
                *r += self.u[t][e.u as usize] * self.v[t][e.v as usize];
            }
            for _ in 0..self.inner {
                // CCD++ order (Yu et al.): refresh v_t against the
                // (nonzero) u_t first — v starts at zero, so solving the
                // u side first would collapse the component — then refresh
                // u_t. Each step is the exact 1-D least squares, e.g.
                // v_t[col] = Σ res_i u_t[row_i] / (λ + Σ u_t[row_i]²).
                solve_side(
                    &self.by_col,
                    &self.res,
                    &self.u[t],
                    &mut self.v[t],
                    self.lambda,
                    self.data,
                    false,
                );
                solve_side(
                    &self.by_row,
                    &self.res,
                    &self.v[t],
                    &mut self.u[t],
                    self.lambda,
                    self.data,
                    true,
                );
            }
            // Remove the refreshed component from the residual.
            for (i, r) in self.res.iter_mut().enumerate() {
                let e = self.data.get(i);
                *r -= self.u[t][e.u as usize] * self.v[t][e.v as usize];
            }
            updates += 2 * nnz as u64 * self.inner as u64;
        }
        // Materialise P/Q for the pipeline's evaluation.
        let (p, q) = materialise(
            &self.u,
            &self.v,
            self.data.rows() as usize,
            self.data.cols() as usize,
            k,
        );
        model.p = p;
        model.q = q;
        EpochOutcome::from_stats(EpochStats {
            updates,
            rounds: k as u64,
            ..EpochStats::default()
        })
    }

    fn workers(&self) -> u32 {
        1
    }

    fn name(&self) -> &'static str {
        "ccd"
    }
}

/// Trains with CCD++.
pub fn train_ccd(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &CcdConfig,
    epoch_secs: Option<f64>,
) -> CcdResult {
    assert!(!train.is_empty(), "training set is empty");
    assert!(config.k > 0 && config.inner > 0);
    use cumf_rng::Rng;
    use cumf_rng::SeedableRng;
    let mut rng = cumf_rng::ChaCha8Rng::seed_from_u64(config.seed);

    let m = train.rows() as usize;
    let n = train.cols() as usize;
    let k = config.k as usize;

    // CCD++ convention: start v at zero so the first sweep is exact; with
    // v = 0 the residual starts as the raw ratings.
    let scale = (1.0 / config.k as f32).sqrt();
    let mut backend = CcdBackend {
        data: train,
        lambda: config.lambda,
        inner: config.inner,
        u: (0..k)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..scale)).collect())
            .collect(),
        v: (0..k).map(|_| vec![0.0f32; n]).collect(),
        res: train.rs().to_vec(),
        by_row: CsrMatrixIndex::build(train, true),
        by_col: CsrMatrixIndex::build(train, false),
    };

    // The backend overwrites P/Q every epoch, so the model starts empty.
    let mut model = EngineModel::unbiased(
        FactorMatrix::from_f32_slice(train.rows(), config.k, &vec![0.0; m * k]),
        FactorMatrix::from_f32_slice(train.cols(), config.k, &vec![0.0; n * k]),
    );
    let mut time = FixedPerEpoch(epoch_secs.unwrap_or(0.0));

    let pipeline = EpochPipeline {
        label: "ccd",
        epochs: config.epochs,
        lambda: config.lambda,
        schedule: Schedule::Fixed(0.0),
    };
    // CCD++ is a block-coordinate *minimisation*: it cannot diverge, so no
    // observers are attached and every epoch runs.
    let run = pipeline.run(&mut model, &mut backend, &mut time, &mut [], test, None);

    CcdResult {
        p: model.p,
        q: model.q,
        trace: run.trace,
    }
}

/// Index of sample ids grouped by row (or by column).
struct CsrMatrixIndex {
    ptr: Vec<usize>,
    sample: Vec<usize>,
}

impl CsrMatrixIndex {
    fn build(coo: &CooMatrix, by_row: bool) -> Self {
        let buckets = if by_row { coo.rows() } else { coo.cols() } as usize;
        let mut ptr = vec![0usize; buckets + 1];
        for i in 0..coo.nnz() {
            let e = coo.get(i);
            let b = if by_row { e.u } else { e.v } as usize;
            ptr[b + 1] += 1;
        }
        for i in 1..ptr.len() {
            ptr[i] += ptr[i - 1];
        }
        let mut sample = vec![0usize; coo.nnz()];
        let mut next = ptr.clone();
        for i in 0..coo.nnz() {
            let e = coo.get(i);
            let b = if by_row { e.u } else { e.v } as usize;
            sample[next[b]] = i;
            next[b] += 1;
        }
        CsrMatrixIndex { ptr, sample }
    }

    fn bucket(&self, b: usize) -> &[usize] {
        &self.sample[self.ptr[b]..self.ptr[b + 1]]
    }

    fn buckets(&self) -> usize {
        self.ptr.len() - 1
    }
}

/// One exact coordinate sweep of a side. For each bucket (row or column),
/// solves the 1-D regularised least squares against the *other* side's
/// current component values, updating the residual incrementally.
#[allow(clippy::too_many_arguments)]
fn solve_side(
    index: &CsrMatrixIndex,
    res: &[f32],
    other: &[f32],
    mine: &mut [f32],
    lambda: f32,
    coo: &CooMatrix,
    by_row: bool,
) {
    // NOTE: `res` here stores the residual *including* the current
    // component (it was folded back before the inner loop), so the 1-D
    // solve is: argmin_x Σ (res_i − x·other_i)² + λx².
    debug_assert_eq!(mine.len(), index.buckets());
    for (b, x) in mine.iter_mut().enumerate() {
        let mut num = 0.0f64;
        let mut den = lambda as f64;
        for &i in index.bucket(b) {
            let e = coo.get(i);
            let o = other[if by_row { e.v } else { e.u } as usize] as f64;
            num += res[i] as f64 * o;
            den += o * o;
        }
        *x = (num / den) as f32;
    }
}

fn materialise(
    u: &[Vec<f32>],
    v: &[Vec<f32>],
    m: usize,
    n: usize,
    k: usize,
) -> (FactorMatrix<f32>, FactorMatrix<f32>) {
    let mut pv = vec![0.0f32; m * k];
    let mut qv = vec![0.0f32; n * k];
    for t in 0..k {
        for (row, &x) in u[t].iter().enumerate() {
            pv[row * k + t] = x;
        }
        for (col, &x) in v[t].iter().enumerate() {
            qv[col * k + t] = x;
        }
    }
    (
        FactorMatrix::from_f32_slice(m as u32, k as u32, &pv),
        FactorMatrix::from_f32_slice(n as u32, k as u32, &qv),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::{generate, SynthConfig};

    fn dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 300,
            n: 200,
            k_true: 4,
            train_samples: 15_000,
            test_samples: 1_500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 81,
        })
    }

    #[test]
    fn ccd_converges() {
        let d = dataset();
        let r = train_ccd(
            &d.train,
            &d.test,
            &CcdConfig {
                lambda: 0.01,
                ..CcdConfig::new(6)
            },
            None,
        );
        let final_rmse = r.trace.final_rmse().unwrap();
        assert!(final_rmse < 0.2, "CCD++ should converge, got {final_rmse}");
    }

    #[test]
    fn ccd_is_strong_in_the_first_epochs() {
        // §8: coordinate descent "runs faster at the first few epochs".
        use cumf_core::lrate::Schedule;
        use cumf_core::solver::{train, Scheme, SolverConfig};
        let d = dataset();
        let ccd = train_ccd(
            &d.train,
            &d.test,
            &CcdConfig {
                epochs: 2,
                lambda: 0.01,
                ..CcdConfig::new(6)
            },
            None,
        );
        let mut sgd_cfg = SolverConfig::new(6, Scheme::Serial);
        sgd_cfg.epochs = 2;
        sgd_cfg.lambda = 0.02;
        sgd_cfg.schedule = Schedule::paper_default(0.1, 0.1);
        let sgd = train::<f32>(&d.train, &d.test, &sgd_cfg, None);
        assert!(
            ccd.trace.final_rmse().unwrap() < sgd.trace.final_rmse().unwrap(),
            "CCD++ epoch-2 {} should beat SGD epoch-2 {}",
            ccd.trace.final_rmse().unwrap(),
            sgd.trace.final_rmse().unwrap()
        );
    }

    #[test]
    fn rmse_monotonically_improves_per_epoch() {
        // Each full CCD++ sweep is a block-coordinate minimisation of the
        // training objective; test RMSE may wiggle slightly but must not
        // blow up.
        let d = dataset();
        let r = train_ccd(
            &d.train,
            &d.test,
            &CcdConfig {
                lambda: 0.01,
                epochs: 8,
                ..CcdConfig::new(6)
            },
            None,
        );
        for w in r.trace.points.windows(2) {
            assert!(
                w[1].rmse <= w[0].rmse * 1.05 + 1e-3,
                "epoch {}: {} -> {}",
                w[1].epoch,
                w[0].rmse,
                w[1].rmse
            );
        }
    }

    #[test]
    fn epoch_cost_model_is_cheap() {
        // CCD++'s epoch at k=128 on Netflix-scale N should be in the same
        // decade as SGD's (both O(N·k) memory-bound).
        let t = ccd_epoch_seconds(99_072_112, 128, 194e9);
        assert!(t > 0.1 && t < 5.0, "ccd epoch {t}");
    }

    #[test]
    fn single_component_is_rank_one_fit() {
        // k=1 CCD++ on a rank-1 matrix nails it almost exactly.
        let mut coo = CooMatrix::new(20, 15);
        for ui in 0..20u32 {
            for vi in 0..15u32 {
                if (ui + vi) % 3 == 0 {
                    let val = (ui as f32 + 1.0) * 0.3 * (vi as f32 + 1.0) * 0.2;
                    coo.push(ui, vi, val);
                }
            }
        }
        let r = train_ccd(
            &coo,
            &coo,
            &CcdConfig {
                k: 1,
                lambda: 1e-6,
                epochs: 6,
                inner: 3,
                seed: 1,
            },
            None,
        );
        assert!(
            r.trace.final_rmse().unwrap() < 1e-3,
            "rank-1 exact fit, got {}",
            r.trace.final_rmse().unwrap()
        );
    }
}
