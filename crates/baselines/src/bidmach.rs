//! BIDMach-style mini-batch SGD with ADAGRAD — the GPU comparator (§7.2).
//!
//! BIDMach processes large mini-batches: it accumulates gradients for all
//! samples of a batch against a fixed model snapshot, then applies them
//! with ADAGRAD per-coordinate step sizes. Two consequences the paper
//! observes:
//!
//! * convergence per *update* is worse than pure SGD's (mini-batching
//!   trades staleness for throughput, and the paper shows cuMF_SGD reaches
//!   target RMSE first), and
//! * the dense intermediate buffers cost ~5X the memory traffic of
//!   cuMF_SGD's register-resident updates, capping BIDMach at 25–32 M
//!   updates/s (Table 5) on the same silicon.
//!
//! The mini-batch sweep is packaged as an
//! [`EpochBackend`] so the comparator
//! runs through the exact same epoch loop as cuMF_SGD itself.

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;
use cumf_gpu_sim::{GpuSpec, SgdUpdateCost};

use cumf_core::concurrent::EpochStats;
use cumf_core::engine::{
    DivergenceGuard, EngineModel, EpochBackend, EpochObserver, EpochOutcome, EpochPipeline,
    FixedPerEpoch,
};
use cumf_core::feature::FactorMatrix;
use cumf_core::kernel::AdaGrad;
use cumf_core::lrate::Schedule;
use cumf_core::metrics::Trace;

/// BIDMach solver configuration.
#[derive(Debug, Clone)]
pub struct BidmachConfig {
    /// Feature dimension.
    pub k: u32,
    /// Regularisation λ.
    pub lambda: f32,
    /// ADAGRAD base learning rate η.
    pub eta: f32,
    /// Mini-batch size.
    pub minibatch: usize,
    /// Epochs.
    pub epochs: u32,
    /// RNG seed.
    pub seed: u64,
}

impl BidmachConfig {
    /// Defaults used in the benches.
    pub fn new(k: u32) -> Self {
        BidmachConfig {
            k,
            lambda: 0.02,
            eta: 0.3,
            minibatch: 2048,
            epochs: 20,
            seed: 42,
        }
    }
}

/// Result of a BIDMach-style run.
#[derive(Debug, Clone)]
pub struct BidmachResult {
    /// Learned row factors.
    pub p: FactorMatrix<f32>,
    /// Learned column factors.
    pub q: FactorMatrix<f32>,
    /// Convergence trace.
    pub trace: Trace,
}

/// Throughput model of BIDMach on a GPU: the mini-batch pipeline
/// materialises dense gradient/work buffers, multiplying per-update
/// traffic; and its kernels port poorly across GPU generations (the paper
/// measures only 1.2–1.5X Maxwell→Pascal where cuMF_SGD gets 2.3X).
#[derive(Debug, Clone)]
pub struct BidmachPerfModel {
    /// Memory-traffic multiplier versus a register-resident SGD update.
    /// 5.1 calibrates Table 5's 25.2 M updates/s on Maxwell/Netflix.
    pub traffic_multiplier: f64,
    /// Cross-architecture scaling cap relative to Maxwell (1.35 reproduces
    /// the measured BIDMach-P/BIDMach-M ratios of 1.17–1.5).
    pub arch_scaling_cap: f64,
}

impl Default for BidmachPerfModel {
    fn default() -> Self {
        BidmachPerfModel {
            traffic_multiplier: 5.1,
            arch_scaling_cap: 1.35,
        }
    }
}

impl BidmachPerfModel {
    /// Updates per second on `gpu` (single precision storage — BIDMach
    /// does not use half-precision feature matrices).
    pub fn updates_per_sec(&self, gpu: &GpuSpec, k: u32) -> f64 {
        let cost = SgdUpdateCost::cpu_f32(k);
        let maxwell_bw = cumf_gpu_sim::TITAN_X_MAXWELL.effective_bw(768);
        let bw = gpu
            .effective_bw(gpu.max_workers())
            .min(maxwell_bw * self.arch_scaling_cap);
        bw / (cost.bytes() as f64 * self.traffic_multiplier)
    }

    /// Seconds per epoch over `nnz` samples.
    pub fn epoch_seconds(&self, gpu: &GpuSpec, k: u32, nnz: u64) -> f64 {
        nnz as f64 / self.updates_per_sec(gpu, k)
    }
}

/// The mini-batch ADAGRAD sweep as an engine backend: one `run_epoch` is
/// one full pass of snapshot-gradient accumulation + ADAGRAD application.
struct BidmachBackend<'a> {
    data: &'a CooMatrix,
    lambda: f32,
    minibatch: usize,
    ada_p: AdaGrad,
    ada_q: AdaGrad,
    // Dense per-batch gradient accumulators, reused across epochs.
    grad_p: Vec<f32>,
    grad_q: Vec<f32>,
    touched_p: Vec<u32>,
    touched_q: Vec<u32>,
}

impl EpochBackend<f32> for BidmachBackend<'_> {
    fn run_epoch(
        &mut self,
        _epoch: u32,
        _gamma: f32,
        _lambda: f32,
        model: &mut EngineModel<f32>,
    ) -> EpochOutcome {
        let k = model.p.k() as usize;
        let n = self.data.nnz();
        let mut start = 0;
        let mut rounds = 0u64;
        while start < n {
            let end = (start + self.minibatch).min(n);
            self.touched_p.clear();
            self.touched_q.clear();
            // Accumulate gradients against the batch-start snapshot.
            for i in start..end {
                let e = self.data.get(i);
                let pu = model.p.row(e.u);
                let qv = model.q.row(e.v);
                let err = e.r - pu.iter().zip(qv).map(|(a, b)| a * b).sum::<f32>();
                let pu_base = e.u as usize * k;
                let qv_base = e.v as usize * k;
                if self.grad_p[pu_base..pu_base + k].iter().all(|&g| g == 0.0) {
                    self.touched_p.push(e.u);
                }
                if self.grad_q[qv_base..qv_base + k].iter().all(|&g| g == 0.0) {
                    self.touched_q.push(e.v);
                }
                for j in 0..k {
                    self.grad_p[pu_base + j] += err * qv[j] - self.lambda * pu[j];
                    self.grad_q[qv_base + j] += err * pu[j] - self.lambda * qv[j];
                }
            }
            // Apply with per-coordinate ADAGRAD steps.
            let mut row = vec![0.0f32; k];
            for &u in &self.touched_p {
                let base = u as usize * k;
                model.p.load_row(u, &mut row);
                for (j, x) in row.iter_mut().enumerate() {
                    let g = self.grad_p[base + j];
                    if g != 0.0 {
                        *x += self.ada_p.step(base + j, g) * g;
                        self.grad_p[base + j] = 0.0;
                    }
                }
                model.p.store_row(u, &row);
            }
            for &v in &self.touched_q {
                let base = v as usize * k;
                model.q.load_row(v, &mut row);
                for (j, x) in row.iter_mut().enumerate() {
                    let g = self.grad_q[base + j];
                    if g != 0.0 {
                        *x += self.ada_q.step(base + j, g) * g;
                        self.grad_q[base + j] = 0.0;
                    }
                }
                model.q.store_row(v, &row);
            }
            start = end;
            rounds += 1;
        }
        EpochOutcome::from_stats(EpochStats {
            updates: n as u64,
            rounds,
            ..EpochStats::default()
        })
    }

    fn workers(&self) -> u32 {
        1
    }

    fn name(&self) -> &'static str {
        "bidmach"
    }
}

/// Trains with mini-batch ADAGRAD, BIDMach-style.
pub fn train_bidmach(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &BidmachConfig,
    epoch_secs: Option<f64>,
) -> BidmachResult {
    assert!(!train.is_empty(), "training set is empty");
    assert!(config.minibatch > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let k = config.k as usize;
    let p: FactorMatrix<f32> = FactorMatrix::random_init(train.rows(), config.k, &mut rng);
    let q: FactorMatrix<f32> = FactorMatrix::random_init(train.cols(), config.k, &mut rng);
    let mut model = EngineModel::unbiased(p, q);

    let mut backend = BidmachBackend {
        data: train,
        lambda: config.lambda,
        minibatch: config.minibatch,
        ada_p: AdaGrad::new(train.rows() as usize * k, config.eta),
        ada_q: AdaGrad::new(train.cols() as usize * k, config.eta),
        grad_p: vec![0.0f32; train.rows() as usize * k],
        grad_q: vec![0.0f32; train.cols() as usize * k],
        touched_p: Vec::new(),
        touched_q: Vec::new(),
    };
    let mut time = FixedPerEpoch(epoch_secs.unwrap_or(0.0));
    let mut guard = DivergenceGuard::non_finite_only();
    let mut observers: Vec<&mut dyn EpochObserver<f32>> = vec![&mut guard];

    let pipeline = EpochPipeline {
        label: "bidmach",
        epochs: config.epochs,
        lambda: config.lambda,
        schedule: Schedule::Fixed(config.eta),
    };
    let run = pipeline.run(
        &mut model,
        &mut backend,
        &mut time,
        &mut observers,
        test,
        None,
    );

    BidmachResult {
        p: model.p,
        q: model.q,
        trace: run.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::{generate, SynthConfig};
    use cumf_gpu_sim::{P100_PASCAL, TITAN_X_MAXWELL};

    fn dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 300,
            n: 200,
            k_true: 4,
            train_samples: 15_000,
            test_samples: 1_500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 51,
        })
    }

    #[test]
    fn bidmach_converges() {
        let d = dataset();
        let mut cfg = BidmachConfig::new(6);
        cfg.epochs = 30;
        let r = train_bidmach(&d.train, &d.test, &cfg, None);
        let final_rmse = r.trace.final_rmse().unwrap();
        assert!(
            final_rmse < 0.35,
            "BIDMach should converge, got {final_rmse}"
        );
    }

    #[test]
    fn larger_minibatches_converge_slower_per_epoch() {
        // The staleness cost of mini-batching: with the same ADAGRAD rate,
        // bigger batches make less progress per epoch.
        let d = dataset();
        let mut small = BidmachConfig::new(6);
        small.minibatch = 64;
        small.epochs = 3;
        let mut large = small.clone();
        large.minibatch = 8192;
        let r_small = train_bidmach(&d.train, &d.test, &small, None);
        let r_large = train_bidmach(&d.train, &d.test, &large, None);
        assert!(
            r_large.trace.final_rmse().unwrap() > r_small.trace.final_rmse().unwrap(),
            "batch 8192 {} should trail batch 64 {}",
            r_large.trace.final_rmse().unwrap(),
            r_small.trace.final_rmse().unwrap()
        );
    }

    #[test]
    fn time_to_target_loses_to_cumf_despite_adagrad() {
        // The paper's actual claim (Fig 9, Table 4): BIDMach's per-epoch
        // convergence is fine — its *throughput* is ~10X short, so cuMF_SGD
        // reaches the target RMSE first in (simulated) time.
        use cumf_core::lrate::Schedule;
        use cumf_core::solver::{train, Scheme, SolverConfig, TimeModel};
        let d = dataset();
        let target = 0.3;
        let pm = BidmachPerfModel::default();
        let bid_epoch = pm.epoch_seconds(&TITAN_X_MAXWELL, 6, d.train.nnz() as u64);
        let mut cfg = BidmachConfig::new(6);
        cfg.epochs = 30;
        let bid = train_bidmach(&d.train, &d.test, &cfg, Some(bid_epoch));

        let mut sgd_cfg = SolverConfig::new(
            6,
            Scheme::BatchHogwild {
                workers: 8,
                batch: 64,
            },
        );
        sgd_cfg.epochs = 30;
        sgd_cfg.lambda = 0.02;
        sgd_cfg.schedule = Schedule::paper_default(0.1, 0.1);
        let tm = TimeModel {
            cost: SgdUpdateCost::cumf(6),
            total_bandwidth: TITAN_X_MAXWELL.effective_bw(768),
            epoch_overhead: TITAN_X_MAXWELL.launch_overhead_s,
        };
        let sgd = train::<f32>(&d.train, &d.test, &sgd_cfg, Some(&tm));
        let t_bid = bid.trace.time_to_rmse(target);
        let t_sgd = sgd.trace.time_to_rmse(target).expect("cuMF reaches target");
        // t_bid == None means bidmach never reached the target — also a loss.
        if let Some(t) = t_bid {
            assert!(t > 3.0 * t_sgd, "bidmach {t}s vs cumf {t_sgd}s");
        }
    }

    #[test]
    fn perf_model_matches_table5() {
        let pm = BidmachPerfModel::default();
        let maxwell = pm.updates_per_sec(&TITAN_X_MAXWELL, 128);
        assert!(
            (maxwell - 25.2e6).abs() / 25.2e6 < 0.10,
            "BIDMach-M {:.1} M vs Table 5's 25.2 M",
            maxwell / 1e6
        );
        let pascal = pm.updates_per_sec(&P100_PASCAL, 128);
        assert!(
            pascal / maxwell < 1.5,
            "BIDMach's cross-arch scaling is capped: {}",
            pascal / maxwell
        );
        assert!(pascal > maxwell);
        // An order of magnitude below cuMF_SGD on the same GPU (Table 5).
        let cumf = SgdUpdateCost::cumf(128).updates_per_sec(TITAN_X_MAXWELL.effective_bw(768));
        assert!(cumf / maxwell > 8.0);
    }

    #[test]
    fn tiny_minibatch_equals_many_small_steps() {
        // minibatch = 1 is plain ADAGRAD SGD; it must also converge.
        let d = dataset();
        let mut cfg = BidmachConfig::new(6);
        cfg.minibatch = 1;
        cfg.epochs = 5;
        let r = train_bidmach(&d.train, &d.test, &cfg, None);
        assert!(r.trace.final_rmse().unwrap() < 1.0);
    }
}
