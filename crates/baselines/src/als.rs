//! Alternating Least Squares — the cuMF_ALS comparator (§7.4).
//!
//! ALS alternately fixes one factor matrix and solves the other exactly:
//! for each user `u`, `p_u = (Σ_{v∈R_u} q_v q_vᵀ + λ N_u I)⁻¹ Σ r_{u,v} q_v`
//! (and symmetrically for items). Each epoch costs
//! `O(N·k² + (m+n)·k³)` compute versus SGD's `O(N·k)` — the reason the
//! paper finds SGD's epochs ~4X faster in wall clock even though ALS needs
//! fewer of them.

use cumf_data::{CooMatrix, CsrMatrix};
use cumf_gpu_sim::GpuSpec;

use cumf_core::feature::FactorMatrix;
use cumf_core::metrics::{rmse, Trace, TracePoint};

use crate::linalg::{spd_solve, syrk_accumulate};

/// ALS solver configuration.
#[derive(Debug, Clone)]
pub struct AlsConfig {
    /// Feature dimension.
    pub k: u32,
    /// Regularisation λ (weighted by each row/column's sample count, the
    /// "weighted-λ" convention both cuMF_ALS and LIBMF use).
    pub lambda: f32,
    /// Epochs (one epoch = one P sweep + one Q sweep).
    pub epochs: u32,
    /// RNG seed for initialisation.
    pub seed: u64,
}

impl AlsConfig {
    /// Defaults matching the SGD solver's conventions.
    pub fn new(k: u32) -> Self {
        AlsConfig {
            k,
            lambda: 0.05,
            epochs: 10,
            seed: 42,
        }
    }
}

/// Result of an ALS run.
#[derive(Debug, Clone)]
pub struct AlsResult {
    /// Learned row factors.
    pub p: FactorMatrix<f32>,
    /// Learned column factors.
    pub q: FactorMatrix<f32>,
    /// Convergence trace.
    pub trace: Trace,
}

/// Performance model of one ALS epoch on a (simulated) GPU: memory
/// `O(N·k)` like SGD, compute `O(2N·k² + (m+n)·k³/3)` — on modern GPUs
/// ALS is compute-bound, which is exactly why its epochs run slower (§7.4).
#[derive(Debug, Clone)]
pub struct AlsTimeModel {
    /// Achieved FLOP rate of the batched solves, flops/s. cuMF_ALS reports
    /// a few TFLOPS on TITAN X; 2.0e12 reproduces the paper's ~4X
    /// epoch-time gap against cuMF_SGD at k=128.
    pub flops_per_sec: f64,
    /// Effective memory bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl AlsTimeModel {
    /// Model for a GPU spec at full occupancy.
    pub fn for_gpu(gpu: &GpuSpec) -> Self {
        AlsTimeModel {
            flops_per_sec: 2.0e12 * (gpu.peak_bw / 360.0e9),
            bandwidth: gpu.effective_bw(gpu.max_workers()),
        }
    }

    /// Seconds for one epoch on an m×n problem with N samples at rank k.
    pub fn epoch_seconds(&self, m: u64, n: u64, nnz: u64, k: u32) -> f64 {
        let k = k as f64;
        let flops = 2.0 * nnz as f64 * k * k + (m + n) as f64 * k * k * k / 3.0;
        let bytes = nnz as f64 * (12.0 + 2.0 * k * 4.0);
        (flops / self.flops_per_sec).max(bytes / self.bandwidth)
    }
}

/// Trains ALS, evaluating test RMSE each epoch. `time` attaches simulated
/// seconds per epoch (pass `None` for epoch-indexed traces only).
pub fn train_als(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &AlsConfig,
    time: Option<&AlsTimeModel>,
) -> AlsResult {
    assert!(!train.is_empty(), "training set is empty");
    use cumf_rng::SeedableRng;
    let mut rng = cumf_rng::ChaCha8Rng::seed_from_u64(config.seed);
    let mut p: FactorMatrix<f32> = FactorMatrix::random_init(train.rows(), config.k, &mut rng);
    let mut q: FactorMatrix<f32> = FactorMatrix::random_init(train.cols(), config.k, &mut rng);

    let by_row = CsrMatrix::from_coo(train);
    let by_col = CsrMatrix::from_coo_transposed(train);

    let epoch_secs = time
        .map(|t| {
            t.epoch_seconds(
                train.rows() as u64,
                train.cols() as u64,
                train.nnz() as u64,
                config.k,
            )
        })
        .unwrap_or(0.0);

    let mut trace = Trace::default();
    let mut updates = 0u64;
    for epoch in 0..config.epochs {
        solve_side(&by_row, &q, &mut p, config.lambda);
        solve_side(&by_col, &p, &mut q, config.lambda);
        updates += 2 * train.nnz() as u64;
        let test_rmse = rmse(test, &p, &q);
        trace.push(TracePoint {
            epoch: epoch + 1,
            updates,
            rmse: test_rmse,
            seconds: epoch_secs * (epoch + 1) as f64,
        });
    }
    AlsResult { p, q, trace }
}

/// One half-sweep: for every row `u` of `ratings` (CSR over the fixed
/// side), solve the k×k normal equations against `fixed` and write the
/// result into `solved`.
fn solve_side(
    ratings: &CsrMatrix,
    fixed: &FactorMatrix<f32>,
    solved: &mut FactorMatrix<f32>,
    lambda: f32,
) {
    let k = fixed.k() as usize;
    let mut a = vec![0.0f64; k * k];
    let mut b = vec![0.0f64; k];
    let mut x = vec![0.0f64; k];
    for (u, cols, vals) in ratings.iter_rows() {
        a.iter_mut().for_each(|v| *v = 0.0);
        b.iter_mut().for_each(|v| *v = 0.0);
        for (&v, &r) in cols.iter().zip(vals) {
            let qv = fixed.row(v);
            x.iter_mut().zip(qv).for_each(|(xe, qe)| *xe = *qe as f64);
            syrk_accumulate(&mut a, k, &x);
            for (be, &qe) in b.iter_mut().zip(qv) {
                *be += r as f64 * qe as f64;
            }
        }
        // Weighted regularisation: λ · N_u on the diagonal.
        let reg = lambda as f64 * cols.len() as f64;
        for i in 0..k {
            a[i * k + i] += reg;
        }
        spd_solve(&mut a, k, &mut b).expect("ALS normal equations are SPD");
        let row: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        solved.store_row(u, &row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::{generate, SynthConfig};
    use cumf_gpu_sim::{P100_PASCAL, TITAN_X_MAXWELL};

    fn dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 300,
            n: 200,
            k_true: 4,
            train_samples: 15_000,
            test_samples: 1_500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 31,
        })
    }

    #[test]
    fn als_converges_fast_in_epochs() {
        let d = dataset();
        // Weighted-λ regularisation: 0.05·N_u is strong shrinkage on this
        // small planted set; 0.01 matches the noise level.
        let cfg = AlsConfig {
            lambda: 0.01,
            ..AlsConfig::new(6)
        };
        let r = train_als(&d.train, &d.test, &cfg, None);
        // ALS should be near the floor within a handful of epochs
        // ("ALS converges faster [per epoch] than SGD", §1).
        let rmse5 = r.trace.points[4].rmse;
        assert!(rmse5 < 0.15, "ALS epoch-5 RMSE {rmse5}");
        // And monotone non-increasing (exact block minimisation).
        for w in r.trace.points.windows(2) {
            assert!(
                w[1].rmse <= w[0].rmse + 1e-3,
                "ALS got worse: {} -> {}",
                w[0].rmse,
                w[1].rmse
            );
        }
    }

    #[test]
    fn als_beats_one_epoch_of_sgd() {
        use cumf_core::solver::{train, Scheme, SolverConfig};
        let d = dataset();
        let als = train_als(
            &d.train,
            &d.test,
            &AlsConfig {
                epochs: 1,
                ..AlsConfig::new(6)
            },
            None,
        );
        let mut sgd_cfg = SolverConfig::new(6, Scheme::Serial);
        sgd_cfg.epochs = 1;
        let sgd = train::<f32>(&d.train, &d.test, &sgd_cfg, None);
        assert!(
            als.trace.final_rmse().unwrap() < sgd.trace.final_rmse().unwrap(),
            "one ALS epoch must beat one SGD epoch"
        );
    }

    #[test]
    fn time_model_epochs_slower_than_sgd() {
        // §7.4: ALS epochs run slower due to O(N k² + (m+n) k³) compute.
        let tm = AlsTimeModel::for_gpu(&TITAN_X_MAXWELL);
        let als_epoch = tm.epoch_seconds(480_190, 17_771, 99_072_112, 128);
        let sgd_epoch = 99_072_112.0 * 1036.0 / TITAN_X_MAXWELL.effective_bw(768);
        let ratio = als_epoch / sgd_epoch;
        assert!(
            ratio > 3.0 && ratio < 15.0,
            "ALS epoch should be several times slower: ratio {ratio}"
        );
    }

    #[test]
    fn pascal_time_model_is_faster() {
        let m = AlsTimeModel::for_gpu(&TITAN_X_MAXWELL);
        let p = AlsTimeModel::for_gpu(&P100_PASCAL);
        assert!(
            p.epoch_seconds(1000, 1000, 100_000, 64) < m.epoch_seconds(1000, 1000, 100_000, 64)
        );
    }

    #[test]
    fn handles_empty_rows_and_cols() {
        // Users/items with no ratings keep their init values; solver must
        // not crash on them.
        let mut train = CooMatrix::new(10, 10);
        train.push(0, 0, 1.0);
        train.push(5, 5, 2.0);
        let mut test = CooMatrix::new(10, 10);
        test.push(0, 0, 1.0);
        let r = train_als(&train, &test, &AlsConfig::new(3), None);
        assert!(r.trace.final_rmse().unwrap().is_finite());
    }
}
