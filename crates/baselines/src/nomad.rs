//! NOMAD — the distributed SGD comparator (Yun et al., VLDB'14; §7.2).
//!
//! NOMAD partitions P's rows across nodes and circulates item columns
//! (`q_v` vectors) between them: the node holding item `v` performs SGD
//! updates on its local samples of column `v`, then hands the item to
//! another node. Ownership is exclusive, so updates are conflict-free and
//! convergence matches serial SGD up to update order.
//!
//! Two components:
//!
//! * [`train_nomad`] — a faithful sequential emulation of the decentralised
//!   update order, for convergence traces;
//! * [`NomadPerfModel`] — a per-epoch cost model: local compute is
//!   memory-bound on each node's (cache-assisted) bandwidth while item
//!   circulation pays a per-message software/network cost. Communication
//!   does not shrink with node count — each node still handles ~n item
//!   hops per epoch — which is precisely why the paper observes only
//!   ~5.6X speedup on 32 nodes and the collapsing memory efficiency of
//!   Fig 2(b).

use cumf_rng::seq::SliceRandom;
use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::{CooMatrix, CsrMatrix};
use cumf_gpu_sim::{CpuCacheModel, LinkSpec, SgdUpdateCost};

use cumf_core::feature::FactorMatrix;
use cumf_core::kernel::sgd_update;
use cumf_core::lrate::{LearningRate, Schedule};
use cumf_core::metrics::{rmse, Trace, TracePoint};

/// NOMAD solver configuration.
#[derive(Debug, Clone)]
pub struct NomadConfig {
    /// Feature dimension.
    pub k: u32,
    /// Regularisation λ.
    pub lambda: f32,
    /// Learning-rate schedule (the paper's Eq. 9, which NOMAD originated).
    pub schedule: Schedule,
    /// Epochs.
    pub epochs: u32,
    /// Number of cluster nodes.
    pub nodes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl NomadConfig {
    /// Defaults for a `nodes`-node cluster.
    pub fn new(k: u32, nodes: u32) -> Self {
        NomadConfig {
            k,
            lambda: 0.05,
            schedule: Schedule::paper_default(0.08, 0.3),
            epochs: 20,
            nodes,
            seed: 42,
        }
    }
}

/// Result of a NOMAD run.
#[derive(Debug, Clone)]
pub struct NomadResult {
    /// Learned row factors.
    pub p: FactorMatrix<f32>,
    /// Learned column factors.
    pub q: FactorMatrix<f32>,
    /// Convergence trace.
    pub trace: Trace,
}

/// Per-epoch performance model of the NOMAD cluster.
#[derive(Debug, Clone)]
pub struct NomadPerfModel {
    /// Per-node cache model (working set per node shrinks with nodes —
    /// the cache-efficiency benefit the paper credits NOMAD with).
    pub cache: CpuCacheModel,
    /// Inter-node link.
    pub link: LinkSpec,
    /// Per-message software overhead, seconds (serialisation, MPI stack,
    /// queueing). ~108 µs (with the 12.5 GB/s node) reproduces NOMAD's
    /// measured 5.6X speedup on 32 nodes for Netflix; the
    /// physically-motivated components (syscall + copy + NIC doorbell)
    /// are a fraction of it, the rest is queueing and item-availability
    /// imbalance folded into a single knob.
    pub per_message_overhead: f64,
}

impl NomadPerfModel {
    /// The calibrated cluster model used throughout the benches.
    pub fn hpc_cluster() -> Self {
        NomadPerfModel {
            cache: CpuCacheModel::calibrated(cumf_gpu_sim::NOMAD_HPC_NODE),
            link: cumf_gpu_sim::HPC_NETWORK,
            per_message_overhead: 108e-6,
        }
    }

    /// Seconds for one epoch on `nodes` nodes of an m×n, N-sample problem
    /// at rank k.
    pub fn epoch_seconds(&self, m: u64, n: u64, nnz: u64, k: u32, nodes: u32) -> f64 {
        assert!(nodes >= 1);
        let cost = SgdUpdateCost::cpu_f32(k);
        // Each node holds m/nodes rows; its feature working set is the full
        // Q (circulating) plus its P stripe.
        let ws = (m as f64 / nodes as f64 + n as f64) * k as f64 * 4.0;
        let eff_bw = self.cache.effective_bw(&cost, ws);
        let compute = (nnz as f64 / nodes as f64) * cost.bytes() as f64 / eff_bw;
        if nodes == 1 {
            return compute;
        }
        // Circulation: each item visits every node once per epoch; each
        // node therefore sends/receives ~n messages of one q-vector.
        let hop_bytes = k as f64 * 4.0 + 16.0;
        let comm = n as f64 * (self.per_message_overhead + hop_bytes / self.link.achieved_bw);
        // Compute and communication overlap; imbalance keeps the epoch
        // from hiding the longer one completely.
        compute.max(comm) + 0.1 * compute.min(comm)
    }

    /// Speedup of `nodes` nodes over one node.
    pub fn speedup(&self, m: u64, n: u64, nnz: u64, k: u32, nodes: u32) -> f64 {
        self.epoch_seconds(m, n, nnz, k, 1) / self.epoch_seconds(m, n, nnz, k, nodes)
    }

    /// Parallel memory efficiency (Fig 2b): achieved aggregate update
    /// throughput relative to perfect per-node scaling.
    pub fn memory_efficiency(&self, m: u64, n: u64, nnz: u64, k: u32, nodes: u32) -> f64 {
        self.speedup(m, n, nnz, k, nodes) / nodes as f64
    }
}

/// Trains with NOMAD's decentralised ownership order (sequential
/// emulation: exclusive item ownership makes the parallel execution
/// conflict-free, so program order is faithful).
pub fn train_nomad(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &NomadConfig,
    perf: Option<&NomadPerfModel>,
) -> NomadResult {
    assert!(!train.is_empty(), "training set is empty");
    assert!(config.nodes >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut p: FactorMatrix<f32> = FactorMatrix::random_init(train.rows(), config.k, &mut rng);
    let mut q: FactorMatrix<f32> = FactorMatrix::random_init(train.cols(), config.k, &mut rng);

    // Per-node CSC slices: node -> (item -> local sample list). We realise
    // this as a CSC over each node's row stripe.
    let m = train.rows();
    let nodes = config.nodes;
    let stripes: Vec<CooMatrix> = (0..nodes)
        .map(|node| {
            let lo = (node as u64 * m as u64 / nodes as u64) as u32;
            let hi = ((node as u64 + 1) * m as u64 / nodes as u64) as u32;
            // Keep global coordinates: the window is only a filter here.
            let mut stripe = CooMatrix::new(m, train.cols());
            for e in train.iter() {
                if e.u >= lo && e.u < hi {
                    stripe.push(e.u, e.v, e.r);
                }
            }
            stripe
        })
        .collect();
    let by_col: Vec<CsrMatrix> = stripes.iter().map(CsrMatrix::from_coo_transposed).collect();

    let epoch_secs = perf.map(|pm| {
        pm.epoch_seconds(
            train.rows() as u64,
            train.cols() as u64,
            train.nnz() as u64,
            config.k,
            nodes,
        )
    });

    let mut lr = LearningRate::new(config.schedule.clone());
    let mut trace = Trace::default();
    let mut updates = 0u64;
    let n_items = train.cols();

    for epoch in 0..config.epochs {
        let gamma = lr.gamma(epoch);
        // Each item circulates through all nodes in a random node order,
        // items interleaved in random order — NOMAD's asynchronous sweep.
        let mut items: Vec<u32> = (0..n_items).collect();
        items.shuffle(&mut rng);
        for &v in &items {
            let mut order: Vec<usize> = (0..nodes as usize).collect();
            order.shuffle(&mut rng);
            for node in order {
                let (rows, vals) = by_col[node].row(v);
                for (&u, &r) in rows.iter().zip(vals) {
                    sgd_update(p.row_mut(u), q.row_mut(v), r, gamma, config.lambda);
                    updates += 1;
                }
            }
        }
        let test_rmse = rmse(test, &p, &q);
        lr.observe(test_rmse);
        trace.push(TracePoint {
            epoch: epoch + 1,
            updates,
            rmse: test_rmse,
            seconds: epoch_secs.map(|s| s * (epoch + 1) as f64).unwrap_or(0.0),
        });
    }
    NomadResult { p, q, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::{generate, SynthConfig};

    fn dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 300,
            n: 200,
            k_true: 4,
            train_samples: 15_000,
            test_samples: 1_500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 41,
        })
    }

    #[test]
    fn nomad_converges() {
        let d = dataset();
        let mut cfg = NomadConfig::new(6, 4);
        cfg.schedule = Schedule::paper_default(0.1, 0.1);
        cfg.lambda = 0.02;
        cfg.epochs = 15;
        let r = train_nomad(&d.train, &d.test, &cfg, None);
        let final_rmse = r.trace.final_rmse().unwrap();
        assert!(final_rmse < 0.2, "NOMAD should converge, got {final_rmse}");
    }

    #[test]
    fn node_count_does_not_change_coverage() {
        let d = dataset();
        let mut c1 = NomadConfig::new(4, 1);
        c1.epochs = 2;
        let mut c8 = NomadConfig::new(4, 8);
        c8.epochs = 2;
        let r1 = train_nomad(&d.train, &d.test, &c1, None);
        let r8 = train_nomad(&d.train, &d.test, &c8, None);
        // Same number of updates regardless of distribution.
        assert_eq!(
            r1.trace.points.last().unwrap().updates,
            r8.trace.points.last().unwrap().updates
        );
        // Similar convergence (order differs, quality comparable).
        let a = r1.trace.final_rmse().unwrap();
        let b = r8.trace.final_rmse().unwrap();
        assert!((a - b).abs() < 0.15, "1-node {a} vs 8-node {b}");
    }

    #[test]
    fn perf_model_matches_papers_netflix_scaling() {
        // §2.3: "On the Netflix data set, NOMAD only achieves ~5.6X speedup
        // when scaling from 1 node to 32".
        let pm = NomadPerfModel::hpc_cluster();
        let s32 = pm.speedup(480_190, 17_771, 99_072_112, 128, 32);
        assert!(
            (s32 - 5.6).abs() < 1.5,
            "32-node speedup {s32} should be near the paper's 5.6X"
        );
        // And memory efficiency collapses (Fig 2b).
        let e32 = pm.memory_efficiency(480_190, 17_771, 99_072_112, 128, 32);
        assert!(e32 < 0.25, "efficiency must be 'extremely low', got {e32}");
        let e4 = pm.memory_efficiency(480_190, 17_771, 99_072_112, 128, 4);
        assert!(e4 > e32, "efficiency decreases with node count");
    }

    #[test]
    fn perf_model_monotonic_epoch_time() {
        let pm = NomadPerfModel::hpc_cluster();
        // More nodes always shrinks compute but comm forms a floor.
        let t1 = pm.epoch_seconds(480_190, 17_771, 99_072_112, 128, 1);
        let t8 = pm.epoch_seconds(480_190, 17_771, 99_072_112, 128, 8);
        let t32 = pm.epoch_seconds(480_190, 17_771, 99_072_112, 128, 32);
        assert!(t8 < t1);
        assert!(t32 < t8 * 1.5, "t32 {t32} should not explode vs t8 {t8}");
        assert!(t32 > t1 / 32.0, "comm floor keeps scaling sub-linear");
    }

    #[test]
    fn big_yahoo_like_shape_scales_worse_than_netflix() {
        // Yahoo has 35X more items than Netflix -> far more circulation
        // traffic; the paper finds NOMAD on Yahoo *slower than LIBMF on
        // one node* (§7.2).
        let pm = NomadPerfModel::hpc_cluster();
        let s_netflix = pm.speedup(480_190, 17_771, 99_072_112, 128, 32);
        let s_yahoo = pm.speedup(1_000_990, 624_961, 252_800_275, 128, 32);
        assert!(
            s_yahoo < s_netflix / 2.0,
            "yahoo speedup {s_yahoo} must trail netflix {s_netflix}"
        );
    }
}
