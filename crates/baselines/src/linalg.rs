//! Small dense linear algebra for the ALS baseline: Cholesky factorisation
//! and SPD solves on k×k systems, implemented from scratch.
//!
//! ALS solves one `(QᵀQ + λI)·p = Qᵀr` system per user/item per epoch; `k`
//! is O(10)–O(100), so a straightforward O(k³) Cholesky is the right tool.

/// Errors from the dense solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Pivot index at which factorisation failed.
        pivot: usize,
    },
    /// Dimension mismatch between operands.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// In-place Cholesky factorisation of a row-major k×k SPD matrix:
/// `A = L·Lᵀ`, with `L` (lower triangular) left in the lower triangle of
/// `a`. The upper triangle is left untouched.
pub fn cholesky(a: &mut [f64], k: usize) -> Result<(), LinalgError> {
    if a.len() != k * k {
        return Err(LinalgError::DimensionMismatch);
    }
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for t in 0..j {
                sum -= a[i * k + t] * a[j * k + t];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                a[i * k + j] = sum.sqrt();
            } else {
                a[i * k + j] = sum / a[j * k + j];
            }
        }
    }
    Ok(())
}

/// Solves `L·Lᵀ·x = b` given the Cholesky factor from [`cholesky`];
/// `b` is overwritten with the solution.
pub fn cholesky_solve(l: &[f64], k: usize, b: &mut [f64]) -> Result<(), LinalgError> {
    if l.len() != k * k || b.len() != k {
        return Err(LinalgError::DimensionMismatch);
    }
    // Forward substitution: L y = b.
    for i in 0..k {
        let mut sum = b[i];
        for t in 0..i {
            sum -= l[i * k + t] * b[t];
        }
        b[i] = sum / l[i * k + i];
    }
    // Back substitution: Lᵀ x = y.
    for i in (0..k).rev() {
        let mut sum = b[i];
        for t in i + 1..k {
            sum -= l[t * k + i] * b[t];
        }
        b[i] = sum / l[i * k + i];
    }
    Ok(())
}

/// Solves the SPD system `A·x = b` (A row-major k×k, destroyed; `b`
/// overwritten with x).
pub fn spd_solve(a: &mut [f64], k: usize, b: &mut [f64]) -> Result<(), LinalgError> {
    cholesky(a, k)?;
    cholesky_solve(a, k, b)
}

/// Rank-one accumulation `A += x·xᵀ` on the full square matrix.
pub fn syrk_accumulate(a: &mut [f64], k: usize, x: &[f64]) {
    debug_assert_eq!(a.len(), k * k);
    debug_assert_eq!(x.len(), k);
    for i in 0..k {
        let xi = x[i];
        for j in 0..k {
            a[i * k + j] += xi * x[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::Rng;
    use cumf_rng::SeedableRng;

    fn random_spd(rng: &mut ChaCha8Rng, k: usize) -> Vec<f64> {
        // A = B Bᵀ + k·I is SPD with probability 1.
        let b: Vec<f64> = (0..k * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut a = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                let mut s = 0.0;
                for t in 0..k {
                    s += b[i * k + t] * b[j * k + t];
                }
                a[i * k + j] = s + if i == j { k as f64 } else { 0.0 };
            }
        }
        a
    }

    #[test]
    fn factorisation_reconstructs_matrix() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for k in [1usize, 2, 3, 8, 16] {
            let a = random_spd(&mut rng, k);
            let mut l = a.clone();
            cholesky(&mut l, k).unwrap();
            // Rebuild A from the lower triangle.
            for i in 0..k {
                for j in 0..k {
                    let mut s = 0.0;
                    for t in 0..=i.min(j) {
                        s += l[i * k + t] * l[j * k + t];
                    }
                    assert!(
                        (s - a[i * k + j]).abs() < 1e-9,
                        "k={k} ({i},{j}): {s} vs {}",
                        a[i * k + j]
                    );
                }
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for k in [1usize, 4, 12, 32] {
            let a = random_spd(&mut rng, k);
            let x_true: Vec<f64> = (0..k).map(|i| (i as f64) - 1.5).collect();
            let mut b = vec![0.0; k];
            for i in 0..k {
                b[i] = (0..k).map(|j| a[i * k + j] * x_true[j]).sum();
            }
            let mut a_work = a.clone();
            spd_solve(&mut a_work, k, &mut b).unwrap();
            for i in 0..k {
                assert!(
                    (b[i] - x_true[i]).abs() < 1e-8,
                    "k={k} x[{i}]: {} vs {}",
                    b[i],
                    x_true[i]
                );
            }
        }
    }

    #[test]
    fn identity_is_its_own_factor() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        cholesky(&mut a, 2).unwrap();
        assert_eq!(a, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        let err = cholesky(&mut a, 2).unwrap_err();
        assert_eq!(err, LinalgError::NotPositiveDefinite { pivot: 1 });
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut a = vec![1.0; 5];
        assert_eq!(cholesky(&mut a, 2), Err(LinalgError::DimensionMismatch));
        let mut b = vec![1.0; 3];
        let l = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(
            cholesky_solve(&l, 2, &mut b),
            Err(LinalgError::DimensionMismatch)
        );
    }

    #[test]
    fn syrk_accumulates_outer_product() {
        let mut a = vec![0.0; 4];
        syrk_accumulate(&mut a, 2, &[2.0, 3.0]);
        assert_eq!(a, vec![4.0, 6.0, 6.0, 9.0]);
        syrk_accumulate(&mut a, 2, &[1.0, 0.0]);
        assert_eq!(a, vec![5.0, 6.0, 6.0, 9.0]);
    }
}
