//! A real message-passing NOMAD: node threads, circulating item ownership
//! over channels — the decentralised architecture of Yun et al. (VLDB'14)
//! as an actual concurrent program rather than a sequential emulation.
//!
//! Topology: `nodes` worker threads in a ring. Each thread owns a row
//! stripe of P (exclusive — never shared) and a CSC slice of its local
//! samples. An *item* message carries `(v, q_v, hops)`; on receipt the node
//! applies one SGD update per local sample of column `v` against its own
//! P rows, increments `hops`, and forwards the item — to the next ring
//! node, or back to the coordinator once every node has seen it. Ownership
//! is exclusive end to end, so the computation is conflict-free without a
//! single lock; messages are the only synchronisation, exactly as in the
//! paper's description of NOMAD (§2.3, §7.2).

use std::sync::mpsc::{channel, Receiver, Sender};

use cumf_data::{CooMatrix, CsrMatrix};

use cumf_core::feature::FactorMatrix;
use cumf_core::lrate::LearningRate;
use cumf_core::metrics::{rmse, Trace, TracePoint};

use crate::nomad::NomadConfig;

/// An item circulating through the ring.
struct ItemMsg {
    v: u32,
    q: Vec<f32>,
    hops: u32,
}

/// Result of a threaded NOMAD run (same shape as the sequential one).
pub struct NomadThreadedResult {
    /// Learned row factors.
    pub p: FactorMatrix<f32>,
    /// Learned column factors.
    pub q: FactorMatrix<f32>,
    /// Convergence trace (epoch-indexed; wall-clock timing is not
    /// meaningful on the reproduction host and is left at zero).
    pub trace: Trace,
}

/// Trains with real node threads and channel-circulated item ownership.
pub fn train_nomad_threaded(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &NomadConfig,
) -> NomadThreadedResult {
    assert!(!train.is_empty(), "training set is empty");
    let nodes = config.nodes.max(1) as usize;
    let m = train.rows();
    let k = config.k;

    use cumf_rng::SeedableRng;
    let mut rng = cumf_rng::ChaCha8Rng::seed_from_u64(config.seed);
    let mut p: FactorMatrix<f32> = FactorMatrix::random_init(m, k, &mut rng);
    let mut q: FactorMatrix<f32> = FactorMatrix::random_init(train.cols(), k, &mut rng);

    // Row stripes and per-node CSC slices (global row coordinates kept;
    // each node only ever touches its own stripe's rows).
    let bounds: Vec<(u32, u32)> = (0..nodes)
        .map(|i| {
            (
                (i as u64 * m as u64 / nodes as u64) as u32,
                ((i as u64 + 1) * m as u64 / nodes as u64) as u32,
            )
        })
        .collect();
    let by_col: Vec<CsrMatrix> = bounds
        .iter()
        .map(|&(lo, hi)| {
            let mut t = CooMatrix::with_capacity(train.cols(), m, train.nnz() / nodes + 1);
            for e in train.iter() {
                if e.u >= lo && e.u < hi {
                    t.push(e.v, e.u, e.r);
                }
            }
            CsrMatrix::from_coo(&t)
        })
        .collect();

    let mut lr = LearningRate::new(config.schedule.clone());
    let mut trace = Trace::default();
    let mut updates = 0u64;

    for epoch in 0..config.epochs {
        let gamma = lr.gamma(epoch);
        let (done_updates, new_p_stripes, new_q) =
            run_ring_epoch(&by_col, &bounds, &p, q, nodes, gamma, config.lambda);
        q = new_q;
        for (stripe, &(lo, _)) in new_p_stripes.iter().zip(&bounds) {
            p.write_segment(lo, stripe);
        }
        updates += done_updates;
        let test_rmse = rmse(test, &p, &q);
        lr.observe(test_rmse);
        trace.push(TracePoint {
            epoch: epoch + 1,
            updates,
            rmse: test_rmse,
            seconds: 0.0,
        });
    }

    NomadThreadedResult { p, q, trace }
}

/// One full ring pass: every item visits every node exactly once.
#[allow(clippy::too_many_arguments)]
fn run_ring_epoch(
    by_col: &[CsrMatrix],
    bounds: &[(u32, u32)],
    p: &FactorMatrix<f32>,
    q: FactorMatrix<f32>,
    nodes: usize,
    gamma: f32,
    lambda: f32,
) -> (u64, Vec<FactorMatrix<f32>>, FactorMatrix<f32>) {
    let n_items = q.rows();
    // Channels: one inbox per node, plus the coordinator's completion
    // inbox. `std::sync::mpsc` receivers cannot be cloned, but each inbox
    // is consumed by exactly one node thread, so every receiver simply
    // moves into its thread.
    let (inboxes, receivers): (Vec<Sender<ItemMsg>>, Vec<Receiver<ItemMsg>>) =
        (0..nodes).map(|_| channel()).unzip();
    let (done_tx, done_rx) = channel::<ItemMsg>();

    // Seed items round-robin across the ring.
    for v in 0..n_items {
        let msg = ItemMsg {
            v,
            q: q.row(v).to_vec(),
            hops: 0,
        };
        inboxes[(v as usize) % nodes].send(msg).expect("seed send");
    }

    let stripes_and_counts: Vec<(FactorMatrix<f32>, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (node, rx) in receivers.into_iter().enumerate() {
            let next = inboxes[(node + 1) % nodes].clone();
            let done = done_tx.clone();
            let (lo, hi) = bounds[node];
            let mut stripe = p.segment(lo..hi);
            let csc = &by_col[node];
            handles.push(scope.spawn(move || {
                let mut count = 0u64;
                // Each node processes exactly n_items messages per epoch.
                for _ in 0..n_items {
                    let mut msg = rx.recv().expect("ring closed early");
                    let (rows, vals) = csc.row(msg.v);
                    for (&u, &r) in rows.iter().zip(vals) {
                        let pu = stripe.row_mut(u - lo);
                        cumf_core::kernel::sgd_update(pu, &mut msg.q, r, gamma, lambda);
                        count += 1;
                    }
                    msg.hops += 1;
                    if msg.hops as usize == nodes {
                        done.send(msg).expect("done send");
                    } else {
                        next.send(msg).expect("ring send");
                    }
                }
                (stripe, count)
            }));
        }
        // Drop the coordinator's clones so channel hygiene is clean.
        drop(done_tx);
        drop(inboxes);
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    });

    // Collect the final item vectors back into Q.
    let mut q_out = q;
    let mut collected = 0;
    while let Ok(msg) = done_rx.try_recv() {
        q_out.store_row(msg.v, &msg.q);
        collected += 1;
    }
    assert_eq!(collected, n_items, "every item must complete the ring");

    let mut stripes = Vec::with_capacity(nodes);
    let mut total = 0;
    for (stripe, count) in stripes_and_counts {
        stripes.push(stripe);
        total += count;
    }
    (total, stripes, q_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_core::lrate::Schedule;
    use cumf_data::synth::{generate, SynthConfig};

    fn dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 240,
            n: 180,
            k_true: 3,
            train_samples: 12_000,
            test_samples: 1_200,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 71,
        })
    }

    #[test]
    fn threaded_nomad_converges() {
        let d = dataset();
        let mut cfg = NomadConfig::new(5, 4);
        cfg.lambda = 0.02;
        cfg.schedule = Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        };
        cfg.epochs = 12;
        let r = train_nomad_threaded(&d.train, &d.test, &cfg);
        let final_rmse = r.trace.final_rmse().unwrap();
        assert!(final_rmse < 0.25, "threaded NOMAD rmse {final_rmse}");
        // Every epoch processed every sample exactly once.
        assert_eq!(
            r.trace.points.last().unwrap().updates,
            12 * d.train.nnz() as u64
        );
    }

    #[test]
    fn threaded_matches_sequential_emulation_quality() {
        let d = dataset();
        let mut cfg = NomadConfig::new(5, 3);
        cfg.lambda = 0.02;
        cfg.schedule = Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        };
        cfg.epochs = 10;
        let threaded = train_nomad_threaded(&d.train, &d.test, &cfg);
        let sequential = crate::nomad::train_nomad(&d.train, &d.test, &cfg, None);
        let a = threaded.trace.final_rmse().unwrap();
        let b = sequential.trace.final_rmse().unwrap();
        assert!(
            (a - b).abs() < 0.05,
            "threaded {a} and sequential {b} should agree in quality"
        );
    }

    #[test]
    fn single_node_is_exact_column_sweep() {
        let d = dataset();
        let mut cfg = NomadConfig::new(4, 1);
        cfg.epochs = 3;
        let r = train_nomad_threaded(&d.train, &d.test, &cfg);
        assert_eq!(
            r.trace.points.last().unwrap().updates,
            3 * d.train.nnz() as u64
        );
        assert!(r.trace.final_rmse().unwrap().is_finite());
    }
}
