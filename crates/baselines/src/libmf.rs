//! LIBMF — the shared-memory CPU comparator (Chin et al.; §7.2).
//!
//! LIBMF = a×a matrix blocking + a global scheduling table + bold-driver
//! style adaptive learning rate + SSE kernels, all on one multi-core CPU.
//! The scheduling *semantics* live in
//! `cumf_core::sched::LibmfTableStream`; this module packages them with
//! LIBMF's learning-rate rule and its cache-dependent performance model
//! (Fig 2a / Fig 10b: effective bandwidth collapses as data outgrows the
//! LLC).

use cumf_data::CooMatrix;
use cumf_gpu_sim::{CpuCacheModel, CpuSpec, SgdUpdateCost};

use cumf_core::feature::FactorMatrix;
use cumf_core::lrate::Schedule;
use cumf_core::metrics::Trace;
use cumf_core::solver::{train, Scheme, SolverConfig, TimeModel, TrainResult};

/// LIBMF configuration (paper settings: 40 threads, a = 100, initial
/// learning rate 0.1).
#[derive(Debug, Clone)]
pub struct LibmfConfig {
    /// Feature dimension.
    pub k: u32,
    /// Regularisation λ.
    pub lambda: f32,
    /// CPU threads (the paper sweeps 1–48 and settles on 40).
    pub threads: u32,
    /// Grid dimension: the matrix is blocked a×a (paper optimum: 100).
    pub a: u32,
    /// Initial learning rate (paper: 0.1, per the LIBMF authors).
    pub initial_lr: f32,
    /// Epochs.
    pub epochs: u32,
    /// RNG seed.
    pub seed: u64,
}

impl LibmfConfig {
    /// The paper's tuned LIBMF setup, scaled-down grid permitting.
    pub fn new(k: u32, threads: u32, a: u32) -> Self {
        LibmfConfig {
            k,
            lambda: 0.05,
            threads,
            a,
            initial_lr: 0.1,
            epochs: 20,
            seed: 42,
        }
    }
}

/// Result of a LIBMF run plus its modelled machine throughput.
#[derive(Debug, Clone)]
pub struct LibmfResult {
    /// The underlying training result.
    pub result: TrainResult<f32>,
    /// Modelled effective bandwidth on the host CPU, bytes/s.
    pub effective_bandwidth: f64,
}

impl LibmfResult {
    /// Convergence trace.
    pub fn trace(&self) -> &Trace {
        &self.result.trace
    }
}

/// Effective-bandwidth model for LIBMF on `cpu` over an m×n problem
/// blocked a×a at rank k (single precision).
pub fn libmf_effective_bw(cpu: CpuSpec, m: u64, n: u64, a: u64, k: u32) -> f64 {
    CpuCacheModel::calibrated(cpu).libmf_effective_bw(m, n, a, k)
}

/// Trains LIBMF: blocked scheduling, bold-driver learning rate, and a
/// time model using the cache-dependent effective bandwidth. Threads are
/// capped at `a` (a×a blocking admits at most `a` concurrent workers —
/// the §7.6 starvation effect is reproduced by passing `threads > a`).
pub fn train_libmf(
    train_data: &CooMatrix,
    test_data: &CooMatrix,
    config: &LibmfConfig,
    cpu: CpuSpec,
) -> LibmfResult {
    let effective_bandwidth = libmf_effective_bw(
        cpu,
        train_data.rows() as u64,
        train_data.cols() as u64,
        config.a as u64,
        config.k,
    );
    let solver_config = SolverConfig {
        k: config.k,
        lambda: config.lambda,
        schedule: Schedule::BoldDriver {
            initial: config.initial_lr,
            up: 1.05,
            down: 0.5,
        },
        epochs: config.epochs,
        scheme: Scheme::LibmfTable {
            workers: config.threads,
            a: config.a,
        },
        seed: config.seed,
        mode: None,
        divergence_ceiling: 1e3,
    };
    let time_model = TimeModel {
        cost: SgdUpdateCost::cpu_f32(config.k),
        total_bandwidth: effective_bandwidth,
        epoch_overhead: 1e-3,
    };
    let result = train::<f32>(train_data, test_data, &solver_config, Some(&time_model));
    LibmfResult {
        result,
        effective_bandwidth,
    }
}

/// Convenience: learned factors of a LIBMF result.
pub fn factors(result: &LibmfResult) -> (&FactorMatrix<f32>, &FactorMatrix<f32>) {
    (&result.result.p, &result.result.q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::{generate, SynthConfig};
    use cumf_gpu_sim::XEON_E5_2670X2;

    fn dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 400,
            n: 300,
            k_true: 4,
            train_samples: 20_000,
            test_samples: 2_000,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 61,
        })
    }

    #[test]
    fn libmf_converges() {
        let d = dataset();
        let mut cfg = LibmfConfig::new(6, 8, 20);
        cfg.lambda = 0.02;
        let r = train_libmf(&d.train, &d.test, &cfg, XEON_E5_2670X2);
        assert!(!r.result.diverged);
        let rmse = r.trace().final_rmse().unwrap();
        assert!(rmse < 0.25, "LIBMF should converge, got {rmse}");
        assert!(r.effective_bandwidth > XEON_E5_2670X2.dram_bw);
    }

    #[test]
    fn trace_records_time_from_cache_model() {
        let d = dataset();
        let mut cfg = LibmfConfig::new(6, 4, 16);
        cfg.epochs = 3;
        let r = train_libmf(&d.train, &d.test, &cfg, XEON_E5_2670X2);
        let pts = &r.trace().points;
        assert_eq!(pts.len(), 3);
        assert!(pts[0].seconds > 0.0);
        assert!(pts[2].seconds > pts[1].seconds);
    }

    #[test]
    fn starved_threads_inflate_rounds() {
        // threads > a: the stream stalls the excess workers; rounds (and
        // therefore modelled time) inflate versus a right-sized run.
        let d = dataset();
        let mut lean = LibmfConfig::new(6, 4, 16);
        lean.epochs = 2;
        let mut starved = LibmfConfig::new(6, 32, 16);
        starved.epochs = 2;
        let r_lean = train_libmf(&d.train, &d.test, &lean, XEON_E5_2670X2);
        let r_starved = train_libmf(&d.train, &d.test, &starved, XEON_E5_2670X2);
        let stalls_lean: u64 = r_lean.result.epoch_stats.iter().map(|s| s.stalls).sum();
        let stalls_starved: u64 = r_starved.result.epoch_stats.iter().map(|s| s.stalls).sum();
        assert!(
            stalls_starved > stalls_lean * 2,
            "starved {stalls_starved} vs lean {stalls_lean}"
        );
    }
}
