//! # cumf-baselines — the comparators of the cuMF_SGD evaluation
//!
//! Re-implementations of every system the paper compares against (§7.2,
//! §7.4), built on the same data substrate, kernels and machine models so
//! that comparisons isolate the *algorithms*:
//!
//! * [`libmf`] — LIBMF: blocked shared-memory CPU SGD with a global
//!   scheduling table and bold-driver learning rate;
//! * [`nomad`] — NOMAD: decentralised distributed SGD with circulating
//!   item ownership and a cluster network cost model;
//! * [`nomad_threaded`] — the same architecture as a real message-passing
//!   concurrent program (node threads + mpsc channels);
//! * [`bidmach`] — BIDMach-style mini-batch SGD with ADAGRAD on GPU;
//! * [`ccd`] — CCD++ cyclic coordinate descent (the paper's third
//!   algorithm family, refs [60, 61]);
//! * [`als`] — alternating least squares (the cuMF_ALS comparator), with
//!   a from-scratch Cholesky solver in [`linalg`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod als;
pub mod bidmach;
pub mod ccd;
pub mod libmf;
pub mod linalg;
pub mod nomad;
pub mod nomad_threaded;

pub use als::{train_als, AlsConfig, AlsResult, AlsTimeModel};
pub use bidmach::{train_bidmach, BidmachConfig, BidmachPerfModel, BidmachResult};
pub use ccd::{ccd_epoch_seconds, train_ccd, CcdConfig, CcdResult};
pub use libmf::{libmf_effective_bw, train_libmf, LibmfConfig, LibmfResult};
pub use nomad::{train_nomad, NomadConfig, NomadPerfModel, NomadResult};
pub use nomad_threaded::{train_nomad_threaded, NomadThreadedResult};
