//! Model persistence — Algorithm 1's post-processing step
//! (`model_save(P, Q)`), plus reload for incremental training (§9 names
//! incremental updates as one of SGD's advantages over ALS).
//!
//! Binary layout (little-endian): magic `CMFM`, version, element tag
//! (2 = f16, 4 = f32), m, n, k, then P (m×k) and Q (n×k) row-major raw
//! elements.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::feature::{Element, FactorMatrix};
use crate::half::F16;

const MAGIC: &[u8; 4] = b"CMFM";
const VERSION: u32 = 1;

/// Errors from model IO.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem with the file.
    Format(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "io error: {e}"),
            ModelIoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// A trained model: both factor matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Model<E: Element> {
    /// Row (user) factors, m×k.
    pub p: FactorMatrix<E>,
    /// Column (item) factors, n×k.
    pub q: FactorMatrix<E>,
}

impl<E: Element> Model<E> {
    /// Bundles the two factor matrices; their `k` must agree.
    pub fn new(p: FactorMatrix<E>, q: FactorMatrix<E>) -> Self {
        assert_eq!(p.k(), q.k(), "P and Q must share the feature dimension");
        Model { p, q }
    }

    /// Predicted rating for `(u, v)`.
    pub fn predict(&self, u: u32, v: u32) -> f32 {
        crate::kernel::dot(self.p.row(u), self.q.row(v))
    }
}

pub(crate) fn write_matrix<E: Element, W: Write>(w: &mut W, m: &FactorMatrix<E>) -> io::Result<()> {
    for e in m.as_slice() {
        let x = e.to_f32();
        match E::BYTES {
            2 => w.write_all(&F16::from_f32(x).to_bits().to_le_bytes())?,
            _ => w.write_all(&x.to_le_bytes())?,
        }
    }
    Ok(())
}

pub(crate) fn read_matrix<E: Element, R: Read>(
    r: &mut R,
    rows: u32,
    k: u32,
) -> Result<FactorMatrix<E>, ModelIoError> {
    let count = rows as usize * k as usize;
    let mut vals = Vec::with_capacity(count.min(1 << 20));
    match E::BYTES {
        2 => {
            let mut buf = [0u8; 2];
            for _ in 0..count {
                r.read_exact(&mut buf)?;
                vals.push(F16::from_bits(u16::from_le_bytes(buf)).to_f32());
            }
        }
        _ => {
            let mut buf = [0u8; 4];
            for _ in 0..count {
                r.read_exact(&mut buf)?;
                let x = f32::from_le_bytes(buf);
                if !x.is_finite() {
                    return Err(ModelIoError::Format("non-finite factor value".into()));
                }
                vals.push(x);
            }
        }
    }
    Ok(FactorMatrix::from_f32_slice(rows, k, &vals))
}

/// Saves a model (`model_save` of Algorithm 1).
pub fn save_model<E: Element, W: Write>(writer: W, model: &Model<E>) -> Result<(), ModelIoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(E::BYTES as u32).to_le_bytes())?;
    w.write_all(&model.p.rows().to_le_bytes())?;
    w.write_all(&model.q.rows().to_le_bytes())?;
    w.write_all(&model.p.k().to_le_bytes())?;
    write_matrix(&mut w, &model.p)?;
    write_matrix(&mut w, &model.q)?;
    w.flush()?;
    Ok(())
}

/// Saves to a file path.
pub fn save_model_file<E: Element>(
    path: impl AsRef<Path>,
    model: &Model<E>,
) -> Result<(), ModelIoError> {
    save_model(File::create(path)?, model)
}

/// Loads a model. The stored element width must match `E`.
pub fn load_model<E: Element, R: Read>(reader: R) -> Result<Model<E>, ModelIoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ModelIoError::Format("bad magic: not a cuMF model".into()));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != VERSION {
        return Err(ModelIoError::Format(format!(
            "unsupported version {version}"
        )));
    }
    r.read_exact(&mut b4)?;
    let elem = u32::from_le_bytes(b4);
    if elem as usize != E::BYTES {
        return Err(ModelIoError::Format(format!(
            "element width mismatch: file has {elem}-byte elements, requested {}-byte ({})",
            E::BYTES,
            E::NAME
        )));
    }
    r.read_exact(&mut b4)?;
    let m = u32::from_le_bytes(b4);
    r.read_exact(&mut b4)?;
    let n = u32::from_le_bytes(b4);
    r.read_exact(&mut b4)?;
    let k = u32::from_le_bytes(b4);
    if k == 0 {
        return Err(ModelIoError::Format("k must be positive".into()));
    }
    let p = read_matrix::<E, _>(&mut r, m, k)?;
    let q = read_matrix::<E, _>(&mut r, n, k)?;
    Ok(Model::new(p, q))
}

/// Loads from a file path.
pub fn load_model_file<E: Element>(path: impl AsRef<Path>) -> Result<Model<E>, ModelIoError> {
    load_model(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;
    use std::io::Cursor;

    fn model_f32() -> Model<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        Model::new(
            FactorMatrix::random_init(7, 4, &mut rng),
            FactorMatrix::random_init(5, 4, &mut rng),
        )
    }

    #[test]
    fn f32_round_trip() {
        let m = model_f32();
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        let loaded: Model<f32> = load_model(Cursor::new(buf)).unwrap();
        assert_eq!(loaded, m);
        assert_eq!(loaded.predict(0, 0), m.predict(0, 0));
    }

    #[test]
    fn f16_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m: Model<F16> = Model::new(
            FactorMatrix::random_init(6, 8, &mut rng),
            FactorMatrix::random_init(4, 8, &mut rng),
        );
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        // Header: 4+4+4+4+4+4 = 24 bytes; payload 2 bytes/element.
        assert_eq!(buf.len(), 24 + (6 + 4) * 8 * 2);
        let loaded: Model<F16> = load_model(Cursor::new(buf)).unwrap();
        assert_eq!(loaded, m);
    }

    #[test]
    fn element_width_mismatch_rejected() {
        let m = model_f32();
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        let err = load_model::<F16, _>(Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("element width mismatch"), "{err}");
    }

    #[test]
    fn corrupt_header_rejected() {
        let err = load_model::<f32, _>(Cursor::new(b"XXXX0000".to_vec())).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_payload_rejected() {
        let m = model_f32();
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        buf.truncate(buf.len() - 5);
        let err = load_model::<f32, _>(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, ModelIoError::Io(_)));
    }

    #[test]
    fn non_finite_factors_rejected() {
        let m = model_f32();
        let mut buf = Vec::new();
        save_model(&mut buf, &m).unwrap();
        // Overwrite the first payload float (offset 24) with NaN.
        buf[24..28].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = load_model::<f32, _>(Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cumf_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cmfm");
        let m = model_f32();
        save_model_file(&path, &m).unwrap();
        let loaded: Model<f32> = load_model_file(&path).unwrap();
        assert_eq!(loaded, m);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "share the feature dimension")]
    fn mismatched_k_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let _ = Model::new(
            FactorMatrix::<f32>::random_init(3, 4, &mut rng),
            FactorMatrix::<f32>::random_init(3, 5, &mut rng),
        );
    }
}
