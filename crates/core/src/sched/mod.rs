//! Workload scheduling policies (§5 of the paper).
//!
//! A scheduling policy decides which sample each of the `s` parallel
//! workers updates next. We express every policy — serial SGD, plain
//! Hogwild!, the paper's batch-Hogwild! (§5.1) and wavefront-update (§5.2),
//! and LIBMF's blocked global-table scheme — as an [`UpdateStream`]: a
//! deterministic generator that, once per *round*, hands every worker
//! either a sample index, a stall (worker blocked this round), or
//! exhaustion (epoch complete for that worker).
//!
//! The round-lockstep formulation makes parallel execution *reproducible*:
//! the conflict engine in [`crate::concurrent`] consumes these streams and
//! applies Hogwild-style stale-gradient semantics where the policy allows
//! races, so convergence behaviour (Figs 7b, 13, 14) is an emergent
//! property of the schedule rather than thread-timing noise.

mod batch_hogwild;
pub mod conflict;
mod hogwild;
mod libmf;
mod serial;
mod wavefront;

pub use batch_hogwild::BatchHogwildStream;
pub use conflict::{certify, resolve_exec_mode, Axis, ConflictCert, ConflictWitness, Verdict};
pub use hogwild::HogwildStream;
pub use libmf::LibmfTableStream;
pub use serial::SerialStream;
pub use wavefront::WavefrontStream;

/// What a worker receives in one scheduling round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamItem {
    /// Update the sample at this index of the (shuffled) COO matrix.
    Sample(usize),
    /// Blocked this round (waiting for a column lock / free block).
    Stall,
    /// This worker has no more work this epoch.
    Exhausted,
}

/// A deterministic per-round work generator. See the module docs.
pub trait UpdateStream {
    /// Number of parallel workers this stream schedules.
    fn workers(&self) -> usize;

    /// The next item for `worker`. Called once per worker per round, in
    /// ascending worker order.
    fn next(&mut self, worker: usize) -> StreamItem;

    /// Resets per-epoch state (cursors, processed flags, permutations).
    fn begin_epoch(&mut self, epoch: u32);

    /// Human-readable policy name for traces and reports.
    fn name(&self) -> &'static str;
}

/// Drains a full epoch of a stream, returning per-worker sample sequences.
/// Test helper used across policy tests; exposed for the analysis benches.
pub fn drain_epoch<S: UpdateStream>(stream: &mut S, max_rounds: usize) -> Vec<Vec<usize>> {
    let s = stream.workers();
    let mut out = vec![Vec::new(); s];
    let mut exhausted = vec![false; s];
    for _ in 0..max_rounds {
        if exhausted.iter().all(|&d| d) {
            break;
        }
        for w in 0..s {
            if exhausted[w] {
                continue;
            }
            match stream.next(w) {
                StreamItem::Sample(i) => out[w].push(i),
                StreamItem::Stall => {}
                StreamItem::Exhausted => exhausted[w] = true,
            }
        }
    }
    assert!(
        exhausted.iter().all(|&d| d),
        "stream did not exhaust within {max_rounds} rounds (deadlock?)"
    );
    out
}
