//! Batch-Hogwild! (§5.1) — the paper's default single-GPU policy.
//!
//! Each parallel worker grabs `f` *consecutive* samples from the shuffled
//! rating matrix with one atomic counter bump and updates them serially.
//! Because the matrix was shuffled, consecutive storage order is still
//! random in coordinates (Eq. 8's locality argument): the policy gets
//! Hogwild!'s scheduling freedom *and* streaming reads.

use super::{StreamItem, UpdateStream};

/// Batch-Hogwild! scheduling: `f`-sample batches off a shared counter.
#[derive(Debug, Clone)]
pub struct BatchHogwildStream {
    n: usize,
    workers: usize,
    batch: usize,
    /// The shared "atomic" counter: next unclaimed sample index.
    next_batch: usize,
    /// Per-worker [cursor, end) within the claimed batch.
    cursors: Vec<(usize, usize)>,
}

impl BatchHogwildStream {
    /// `workers` workers fetching batches of `f = batch` consecutive
    /// samples from `n` shuffled samples. The paper uses f = 256 (≫
    /// cache-line size / sample size = ⌈128/12⌉, per Eq. 8).
    pub fn new(n: usize, workers: usize, batch: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(batch > 0, "batch size must be positive");
        BatchHogwildStream {
            n,
            workers,
            batch,
            next_batch: 0,
            cursors: vec![(0, 0); workers],
        }
    }

    /// The paper's default batch size.
    pub const DEFAULT_F: usize = 256;
}

impl UpdateStream for BatchHogwildStream {
    fn workers(&self) -> usize {
        self.workers
    }

    fn next(&mut self, worker: usize) -> StreamItem {
        let (cur, end) = &mut self.cursors[worker];
        if cur == end {
            // Claim the next batch (the atomic fetch-add).
            if self.next_batch >= self.n {
                return StreamItem::Exhausted;
            }
            *cur = self.next_batch;
            *end = (self.next_batch + self.batch).min(self.n);
            self.next_batch = *end;
        }
        let i = *cur;
        *cur += 1;
        StreamItem::Sample(i)
    }

    fn begin_epoch(&mut self, _epoch: u32) {
        self.next_batch = 0;
        self.cursors.fill((0, 0));
    }

    fn name(&self) -> &'static str {
        "batch-hogwild"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::drain_epoch;

    #[test]
    fn covers_every_sample_exactly_once() {
        let mut s = BatchHogwildStream::new(1000, 7, 64);
        let seqs = drain_epoch(&mut s, 10_000);
        let mut all: Vec<usize> = seqs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn workers_get_consecutive_runs() {
        let mut s = BatchHogwildStream::new(512, 2, 128);
        let seqs = drain_epoch(&mut s, 10_000);
        for seq in &seqs {
            for pair in seq.chunks(128) {
                for w in pair.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "within a batch indices are consecutive");
                }
            }
        }
    }

    #[test]
    fn interleaving_alternates_batches() {
        // Two workers, batch 4, 16 samples: worker 0 takes [0..4), worker 1
        // takes [4..8), then 0 takes [8..12) etc. (round-robin lockstep).
        let mut s = BatchHogwildStream::new(16, 2, 4);
        assert_eq!(s.next(0), StreamItem::Sample(0));
        assert_eq!(s.next(1), StreamItem::Sample(4));
        assert_eq!(s.next(0), StreamItem::Sample(1));
        assert_eq!(s.next(1), StreamItem::Sample(5));
    }

    #[test]
    fn tail_batch_is_short() {
        let mut s = BatchHogwildStream::new(10, 1, 4);
        let seqs = drain_epoch(&mut s, 100);
        assert_eq!(seqs[0].len(), 10);
    }

    #[test]
    fn epoch_reset_replays() {
        let mut s = BatchHogwildStream::new(100, 3, 16);
        let a = drain_epoch(&mut s, 1000);
        s.begin_epoch(1);
        let b = drain_epoch(&mut s, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn default_f_satisfies_eq8() {
        // f >> ceil(cache_line / sample) = ceil(128/12) = 11.
        assert!(BatchHogwildStream::DEFAULT_F >= 10 * (128usize).div_ceil(12));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let _ = BatchHogwildStream::new(10, 1, 0);
    }
}
