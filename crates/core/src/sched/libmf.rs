//! LIBMF's blocked scheduling with a global table (§5, Fig 5a).
//!
//! The rating matrix is divided into an `a × a` grid. A central table
//! tracks which block-rows and block-columns are busy; an idle worker
//! searches the table for an unprocessed block whose row *and* column are
//! both free (Eq. 6 independence), claims it, and sweeps its samples
//! serially. Every claim is a global critical section — the scalability
//! bottleneck Fig 5(b) demonstrates and cuMF_SGD's policies avoid.
//!
//! This stream reproduces LIBMF's *semantics* (what gets updated when);
//! the *cost* of the critical section is modelled separately by
//! `cumf_gpu_sim::SchedulerModel::GlobalTable`.

use cumf_rng::seq::SliceRandom;
use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;

use super::{StreamItem, UpdateStream};

/// LIBMF-style global-table block scheduling over an a×a grid.
#[derive(Debug, Clone)]
pub struct LibmfTableStream {
    workers: usize,
    a: usize,
    /// blocks[bi * a + bj] = sample indices of block (bi, bj).
    blocks: Vec<Vec<usize>>,
    row_busy: Vec<bool>,
    col_busy: Vec<bool>,
    processed: Vec<bool>,
    remaining: usize,
    /// Per-worker: currently held block and cursor.
    state: Vec<Option<(usize, usize)>>,
    rng: ChaCha8Rng,
    seed: u64,
}

impl LibmfTableStream {
    /// Builds the a×a grid over `data` for `workers` workers.
    pub fn new(data: &CooMatrix, workers: usize, a: usize, seed: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(a > 0, "grid dimension must be positive");
        let m = data.rows() as usize;
        let n = data.cols() as usize;
        assert!(a <= m && a <= n, "grid {a} exceeds matrix {m}x{n}");
        let mut blocks = vec![Vec::new(); a * a];
        for (i, e) in data.iter().enumerate() {
            let bi = (e.u as usize * a / m).min(a - 1);
            let bj = (e.v as usize * a / n).min(a - 1);
            blocks[bi * a + bj].push(i);
        }
        let mut s = LibmfTableStream {
            workers,
            a,
            blocks,
            row_busy: vec![false; a],
            col_busy: vec![false; a],
            processed: vec![false; a * a],
            remaining: a * a,
            state: vec![None; workers],
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
        };
        s.begin_epoch(0);
        s
    }

    /// Attempts to claim a random free independent block for a worker.
    fn claim(&mut self) -> Option<usize> {
        // The table search: all unprocessed blocks whose row and column are
        // free. LIBMF scans the whole table under the lock (O(a²)).
        let mut candidates: Vec<usize> = (0..self.blocks.len())
            .filter(|&b| {
                !self.processed[b] && !self.row_busy[b / self.a] && !self.col_busy[b % self.a]
            })
            .collect();
        candidates.shuffle(&mut self.rng);
        let b = candidates.first().copied()?;
        self.row_busy[b / self.a] = true;
        self.col_busy[b % self.a] = true;
        Some(b)
    }

    fn release(&mut self, b: usize) {
        self.row_busy[b / self.a] = false;
        self.col_busy[b % self.a] = false;
        self.processed[b] = true;
        self.remaining -= 1;
    }

    /// Number of blocks not yet processed this epoch.
    pub fn remaining_blocks(&self) -> usize {
        self.remaining
    }
}

impl UpdateStream for LibmfTableStream {
    fn workers(&self) -> usize {
        self.workers
    }

    fn next(&mut self, w: usize) -> StreamItem {
        loop {
            match self.state[w] {
                Some((b, cursor)) => {
                    if cursor < self.blocks[b].len() {
                        self.state[w] = Some((b, cursor + 1));
                        return StreamItem::Sample(self.blocks[b][cursor]);
                    }
                    self.release(b);
                    self.state[w] = None;
                }
                None => {
                    if self.remaining == 0 {
                        return StreamItem::Exhausted;
                    }
                    match self.claim() {
                        Some(b) => {
                            self.state[w] = Some((b, 0));
                            // Loop to serve the first sample (empty blocks
                            // release immediately and try again).
                        }
                        None => return StreamItem::Stall,
                    }
                }
            }
        }
    }

    fn begin_epoch(&mut self, epoch: u32) {
        self.rng = ChaCha8Rng::seed_from_u64(self.seed ^ (u64::from(epoch) << 32));
        self.row_busy.fill(false);
        self.col_busy.fill(false);
        self.processed.fill(false);
        self.remaining = self.a * self.a;
        self.state.fill(None);
    }

    fn name(&self) -> &'static str {
        "libmf-table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::drain_epoch;

    fn matrix(m: u32, n: u32, nnz: usize) -> CooMatrix {
        let mut coo = CooMatrix::new(m, n);
        for i in 0..nnz {
            coo.push(
                (i as u32).wrapping_mul(2654435761) % m,
                (i as u32).wrapping_mul(40503) % n,
                1.0,
            );
        }
        coo
    }

    #[test]
    fn covers_every_sample_exactly_once() {
        let data = matrix(60, 60, 1500);
        let mut s = LibmfTableStream::new(&data, 4, 6, 1);
        let seqs = drain_epoch(&mut s, 100_000);
        let mut all: Vec<usize> = seqs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1500).collect::<Vec<_>>());
        assert_eq!(s.remaining_blocks(), 0);
    }

    /// Eq. 6: concurrently-updated blocks never share a row or a column.
    #[test]
    fn in_flight_blocks_are_independent() {
        let data = matrix(100, 100, 3000);
        let a = 10;
        let mut s = LibmfTableStream::new(&data, 5, a, 2);
        let m = data.rows() as usize;
        let n = data.cols() as usize;
        let mut done = [false; 5];
        let mut guard = 0;
        while !done.iter().all(|&d| d) {
            let mut rows = std::collections::HashSet::new();
            let mut cols = std::collections::HashSet::new();
            for (w, d) in done.iter_mut().enumerate() {
                if *d {
                    continue;
                }
                match s.next(w) {
                    StreamItem::Sample(i) => {
                        let e = data.get(i);
                        let bi = (e.u as usize * a / m).min(a - 1);
                        let bj = (e.v as usize * a / n).min(a - 1);
                        assert!(rows.insert(bi), "row conflict at block-row {bi}");
                        assert!(cols.insert(bj), "col conflict at block-col {bj}");
                    }
                    StreamItem::Stall => {}
                    StreamItem::Exhausted => *d = true,
                }
            }
            guard += 1;
            assert!(guard < 200_000, "livelock");
        }
    }

    /// With a ≤ workers, at most `a` workers can run; the rest starve —
    /// the §7.6 observation behind Fig 14.
    #[test]
    fn small_grid_starves_excess_workers() {
        let data = matrix(40, 40, 2000);
        let workers = 8;
        let a = 2; // only 2 independent blocks can ever be in flight
        let mut s = LibmfTableStream::new(&data, workers, a, 3);
        let mut active_counts = Vec::new();
        let mut done = vec![false; workers];
        let mut guard = 0;
        while !done.iter().all(|&d| d) {
            let mut active = 0;
            for (w, d) in done.iter_mut().enumerate() {
                if *d {
                    continue;
                }
                match s.next(w) {
                    StreamItem::Sample(_) => active += 1,
                    StreamItem::Stall => {}
                    StreamItem::Exhausted => *d = true,
                }
            }
            if active > 0 {
                active_counts.push(active);
            }
            guard += 1;
            assert!(guard < 100_000);
        }
        // At any instant at most `a` blocks are held; a round containing a
        // block handoff can briefly show one extra active worker.
        assert!(
            active_counts.iter().all(|&c| c <= a + 1),
            "at most a+1={} workers can be active in a round, saw {:?}",
            a + 1,
            active_counts.iter().max()
        );
        let over = active_counts.iter().filter(|&&c| c > a).count();
        assert!(
            over <= a * a,
            "handoff rounds ({over}) cannot exceed the block count"
        );
    }

    #[test]
    fn epochs_differ_in_block_order() {
        let data = matrix(30, 30, 400);
        let mut s = LibmfTableStream::new(&data, 3, 5, 7);
        let a = drain_epoch(&mut s, 100_000);
        s.begin_epoch(1);
        let b = drain_epoch(&mut s, 100_000);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds matrix")]
    fn oversized_grid_rejected() {
        let data = matrix(4, 4, 10);
        let _ = LibmfTableStream::new(&data, 2, 8, 0);
    }
}
